//! Property-based tests of the SoC substrate invariants.

use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::{PuConfig, PuKind};
use pccs_soc::soc::SocConfig;
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (0.0f64..200.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.01f64..=1.0)
        .prop_map(|(opb, loc, wr, eff)| KernelDesc::new("k", opb, loc, wr, eff))
}

proptest! {
    #[test]
    fn cycles_per_line_scales_linearly_with_intensity(
        kernel in arb_kernel(),
        flops in 1.0f64..2000.0,
        factor in 1.1f64..8.0,
    ) {
        prop_assume!(kernel.ops_per_byte > 0.0);
        let base = kernel.cycles_per_line(flops, 64);
        let heavier = KernelDesc::new(
            "k2",
            kernel.ops_per_byte * factor,
            kernel.row_locality,
            kernel.write_fraction,
            kernel.parallel_efficiency,
        );
        let scaled = heavier.cycles_per_line(flops, 64);
        prop_assert!((scaled / base - factor).abs() < 1e-9);
    }

    #[test]
    fn demand_solving_round_trips(
        flops in 1.0f64..2000.0,
        target_bpc in 0.1f64..200.0,
        eff in 0.1f64..=1.0,
    ) {
        let intensity = KernelDesc::intensity_for_demand(flops, target_bpc, eff);
        let kernel = KernelDesc::new("cal", intensity, 0.9, 0.0, eff);
        let demand = kernel.compute_limited_demand(flops, 64);
        prop_assert!((demand - target_bpc).abs() / target_bpc < 1e-9);
    }

    #[test]
    fn frequency_scaling_is_linear_in_compute_rate(
        freq in 100.0f64..3000.0,
        ratio in 0.1f64..4.0,
    ) {
        let pu = PuConfig::xavier_gpu().with_frequency(freq);
        let scaled = pu.with_frequency(freq * ratio);
        let base_rate = pu.flops_per_mem_cycle(2133.0);
        let scaled_rate = scaled.flops_per_mem_cycle(2133.0);
        prop_assert!((scaled_rate / base_rate - ratio).abs() < 1e-9);
    }

    #[test]
    fn cpu_core_scaling_keeps_per_core_window(cores in 1u32..8) {
        let cpu = PuConfig::xavier_cpu();
        let scaled = cpu.with_cores(cores);
        let per_core_before = cpu.mlp_window as f64 / cpu.cores as f64;
        let per_core_after = scaled.mlp_window as f64 / scaled.cores as f64;
        prop_assert!((per_core_before - per_core_after).abs() <= 1.0);
        prop_assert_eq!(scaled.streams, cores as usize);
    }

    #[test]
    fn source_ranges_partition_for_any_pu_order(swap in any::<bool>()) {
        let mut soc = SocConfig::xavier();
        if swap {
            soc.pus.swap(0, 2);
        }
        let mut covered = Vec::new();
        for i in 0..soc.pus.len() {
            let r = soc.source_range(i);
            prop_assert_eq!(r.len(), soc.pus[i].streams);
            covered.extend(r);
        }
        let total: usize = soc.pus.iter().map(|p| p.streams).sum();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn peak_gflops_monotone_in_cores_and_freq(
        c1 in 1u32..512,
        c2 in 1u32..512,
        f in 100.0f64..2000.0,
    ) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let a = PuConfig {
            kind: PuKind::Gpu,
            name: "a".into(),
            cores: lo,
            freq_mhz: f,
            flops_per_cycle_per_core: 2.0,
            mlp_window: 64,
            streams: 4,
        };
        let mut b = a.clone();
        b.cores = hi;
        prop_assert!(a.peak_gflops() <= b.peak_gflops());
    }
}
