//! Processing-unit (PU) models.
//!
//! A PU is characterized by the three properties that govern its behaviour
//! under memory contention (Section 2.2 of the paper):
//!
//! 1. its maximum standalone compute speed (cores × lanes × frequency),
//! 2. the bandwidth demand its kernels generate (emerges from intensity),
//! 3. its tolerance to memory latency — modelled as the number of
//!    outstanding memory requests it can sustain (MLP window). GPUs hide
//!    latency with massive thread-level parallelism; CPUs have moderate
//!    out-of-order windows; DLAs have little ("It is likely due to the lack
//!    of thread-level parallelism in DLA to hide memory latency", §4.1.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a processing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PuKind {
    /// General-purpose CPU complex.
    Cpu,
    /// Throughput-oriented GPU.
    Gpu,
    /// Deep-learning accelerator.
    Dla,
}

impl fmt::Display for PuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PuKind::Cpu => f.write_str("CPU"),
            PuKind::Gpu => f.write_str("GPU"),
            PuKind::Dla => f.write_str("DLA"),
        }
    }
}

/// Static configuration of one processing unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PuConfig {
    /// PU class.
    pub kind: PuKind,
    /// Display name, unique within an SoC (e.g. `"GPU"`).
    pub name: String,
    /// Number of cores (CPU cores, GPU SMs, DLA engines).
    pub cores: u32,
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Arithmetic throughput per core per core-clock cycle (flops).
    pub flops_per_cycle_per_core: f64,
    /// Maximum outstanding memory requests (memory-level parallelism).
    pub mlp_window: usize,
    /// Number of independent memory-traffic streams the PU presents to the
    /// controller (a CPU complex issues from each core; fairness policies
    /// see these as distinct sources).
    pub streams: usize,
}

impl PuConfig {
    /// Xavier's 8-core Carmel ARMv8.2 CPU at 2265 MHz (Table 6).
    pub fn xavier_cpu() -> Self {
        Self {
            kind: PuKind::Cpu,
            name: "CPU".to_owned(),
            cores: 8,
            freq_mhz: 2265.0,
            flops_per_cycle_per_core: 8.0, // 128-bit NEON FMA
            mlp_window: 384,               // 48 in-flight lines per core incl. prefetch streams
            streams: 8,
        }
    }

    /// Xavier's 512-core Volta GPU at 1377 MHz (Table 6).
    pub fn xavier_gpu() -> Self {
        Self {
            kind: PuKind::Gpu,
            name: "GPU".to_owned(),
            cores: 512,
            freq_mhz: 1377.0,
            flops_per_cycle_per_core: 2.0, // FMA per CUDA core
            mlp_window: 1024,              // massive TLP hides memory latency
            streams: 8,
        }
    }

    /// Xavier's NVIDIA DLA at 1395.2 MHz (Table 6).
    pub fn xavier_dla() -> Self {
        Self {
            kind: PuKind::Dla,
            name: "DLA".to_owned(),
            cores: 1,
            freq_mhz: 1395.2,
            flops_per_cycle_per_core: 2048.0, // MAC array
            mlp_window: 32,                   // DMA double-buffering; still far below CPU/GPU
            streams: 1,
        }
    }

    /// Snapdragon 855's 8-core Kryo 485 CPU at 1800 MHz (Table 6).
    pub fn snapdragon_cpu() -> Self {
        Self {
            kind: PuKind::Cpu,
            name: "CPU".to_owned(),
            cores: 8,
            freq_mhz: 1800.0,
            // Sustained NEON throughput of the mixed big/mid/LITTLE Kryo
            // cluster is well below its nominal peak; this lands the
            // paper's CPU benchmarks in the normal contention region of the
            // 34 GB/s memory system, as in Table 7.
            flops_per_cycle_per_core: 3.2,
            mlp_window: 128, // bounded so CPU+GPU windows fit the MC queues
            streams: 8,
        }
    }

    /// Snapdragon 855's Adreno 640 GPU (Table 6).
    pub fn snapdragon_gpu() -> Self {
        Self {
            kind: PuKind::Gpu,
            name: "GPU".to_owned(),
            cores: 384,
            freq_mhz: 585.0,
            flops_per_cycle_per_core: 2.0,
            mlp_window: 256, // bounded so CPU+GPU windows fit the MC queues
            streams: 4,
        }
    }

    /// Peak arithmetic throughput in Gflop/s at the configured frequency.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.flops_per_cycle_per_core * self.freq_mhz * 1.0e6 / 1.0e9
    }

    /// Aggregate flops the PU retires per *memory-controller* cycle; the
    /// executor works in the memory clock domain.
    pub fn flops_per_mem_cycle(&self, mem_clock_mhz: f64) -> f64 {
        assert!(mem_clock_mhz > 0.0, "memory clock must be positive");
        self.cores as f64 * self.flops_per_cycle_per_core * self.freq_mhz / mem_clock_mhz
    }

    /// Returns a copy clocked at `freq_mhz` (DVFS exploration, Section 4.3).
    pub fn with_frequency(&self, freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        let mut c = self.clone();
        c.freq_mhz = freq_mhz;
        c
    }

    /// Returns a copy with `cores` cores (area exploration, Section 3.4).
    pub fn with_cores(&self, cores: u32) -> Self {
        assert!(cores > 0, "at least one core required");
        let mut c = self.clone();
        c.cores = cores;
        // MLP and stream count scale with the core count for CPUs (each core
        // contributes an issue window); accelerators keep their fixed window.
        if self.kind == PuKind::Cpu {
            let per_core_window = self.mlp_window as f64 / self.cores as f64;
            c.mlp_window = ((per_core_window * cores as f64).round() as usize).max(1);
            c.streams = cores as usize;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_gpu_peak_flops() {
        let gpu = PuConfig::xavier_gpu();
        // 512 cores * 2 flops * 1.377 GHz ≈ 1410 Gflop/s (FP32 FMA).
        assert!((gpu.peak_gflops() - 1410.0).abs() < 10.0);
    }

    #[test]
    fn flops_per_mem_cycle_scales_with_frequency() {
        let cpu = PuConfig::xavier_cpu();
        let half = cpu.with_frequency(cpu.freq_mhz / 2.0);
        let full = cpu.flops_per_mem_cycle(2133.0);
        let halved = half.flops_per_mem_cycle(2133.0);
        assert!((halved - full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_has_larger_window_than_cpu_than_dla() {
        assert!(PuConfig::xavier_gpu().mlp_window > PuConfig::xavier_cpu().mlp_window);
        assert!(PuConfig::xavier_cpu().mlp_window > PuConfig::xavier_dla().mlp_window);
    }

    #[test]
    fn with_cores_scales_cpu_window_and_streams() {
        let cpu = PuConfig::xavier_cpu();
        let four = cpu.with_cores(4);
        assert_eq!(four.cores, 4);
        assert_eq!(four.streams, 4);
        assert_eq!(four.mlp_window, cpu.mlp_window / 2);
        assert!(four.mlp_window >= 1);
    }

    #[test]
    fn with_cores_keeps_accelerator_window() {
        let dla = PuConfig::xavier_dla();
        let two = dla.with_cores(2);
        assert_eq!(two.mlp_window, dla.mlp_window);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn with_frequency_rejects_zero() {
        PuConfig::xavier_cpu().with_frequency(0.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(PuKind::Dla.to_string(), "DLA");
    }
}
