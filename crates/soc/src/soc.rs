//! Whole-SoC configuration: a set of PUs sharing one memory subsystem.

use crate::pu::PuConfig;
use pccs_dram::config::DramConfig;
use serde::{Deserialize, Serialize};

/// A heterogeneous shared-memory SoC: several PUs behind one memory
/// controller (Figure 4 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Display name.
    pub name: String,
    /// Shared memory subsystem.
    pub dram: DramConfig,
    /// Processing units, in declaration order.
    pub pus: Vec<PuConfig>,
}

impl SocConfig {
    /// NVIDIA Jetson AGX Xavier: 8-core Carmel CPU + Volta GPU + DLA over
    /// 137 GB/s LPDDR4X (Table 6).
    pub fn xavier() -> Self {
        Self {
            name: "NVIDIA Jetson AGX Xavier".to_owned(),
            dram: DramConfig::xavier(),
            pus: vec![
                PuConfig::xavier_cpu(),
                PuConfig::xavier_gpu(),
                PuConfig::xavier_dla(),
            ],
        }
    }

    /// Qualcomm Snapdragon 855: 8-core Kryo CPU + Adreno 640 GPU over
    /// 34 GB/s LPDDR4X (Table 6).
    pub fn snapdragon855() -> Self {
        Self {
            name: "Qualcomm Snapdragon 855".to_owned(),
            dram: DramConfig::snapdragon855(),
            pus: vec![PuConfig::snapdragon_cpu(), PuConfig::snapdragon_gpu()],
        }
    }

    /// Short stable identifier for provenance records: `"xavier"` and
    /// `"snapdragon855"` for the bundled presets, a sanitized lower-case
    /// form of [`SocConfig::name`] otherwise.
    pub fn slug(&self) -> String {
        match self.name.as_str() {
            "NVIDIA Jetson AGX Xavier" => "xavier".to_owned(),
            "Qualcomm Snapdragon 855" => "snapdragon855".to_owned(),
            other => other
                .to_lowercase()
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect(),
        }
    }

    /// Index of the PU named `name`, if present.
    pub fn pu_index(&self, name: &str) -> Option<usize> {
        self.pus.iter().position(|p| p.name == name)
    }

    /// The PU named `name`, if present.
    pub fn pu(&self, name: &str) -> Option<&PuConfig> {
        self.pu_index(name).map(|idx| &self.pus[idx])
    }

    /// Theoretical peak memory bandwidth in GB/s.
    pub fn peak_bw_gbps(&self) -> f64 {
        self.dram.peak_bw_gbps()
    }

    /// The first source id assigned to PU `pu_idx`'s streams; PUs occupy
    /// contiguous, disjoint source-id ranges in declaration order.
    pub fn source_base(&self, pu_idx: usize) -> usize {
        assert!(pu_idx < self.pus.len(), "PU index out of range");
        self.pus[..pu_idx].iter().map(|p| p.streams.max(1)).sum()
    }

    /// The source-id range of PU `pu_idx`.
    pub fn source_range(&self, pu_idx: usize) -> std::ops::Range<usize> {
        let base = self.source_base(pu_idx);
        base..base + self.pus[pu_idx].streams.max(1)
    }

    /// Returns a copy with PU `pu_idx` replaced (e.g. re-clocked for DVFS
    /// exploration).
    pub fn with_pu(&self, pu_idx: usize, pu: PuConfig) -> Self {
        assert!(pu_idx < self.pus.len(), "PU index out of range");
        let mut s = self.clone();
        s.pus[pu_idx] = pu;
        s
    }

    /// Returns a copy with the memory subsystem replaced (memory design
    /// exploration, Section 3.4).
    pub fn with_dram(&self, dram: DramConfig) -> Self {
        let mut s = self.clone();
        s.dram = dram;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_has_three_pus() {
        let soc = SocConfig::xavier();
        assert_eq!(soc.pus.len(), 3);
        assert!(soc.pu_index("CPU").is_some());
        assert!(soc.pu_index("GPU").is_some());
        assert!(soc.pu_index("DLA").is_some());
        assert!((soc.peak_bw_gbps() - 136.5).abs() < 0.5);
    }

    #[test]
    fn snapdragon_has_two_pus() {
        let soc = SocConfig::snapdragon855();
        assert_eq!(soc.pus.len(), 2);
        assert!(soc.pu_index("DLA").is_none());
    }

    #[test]
    fn source_ranges_are_disjoint_and_contiguous() {
        let soc = SocConfig::xavier();
        let r_cpu = soc.source_range(0);
        let r_gpu = soc.source_range(1);
        let r_dla = soc.source_range(2);
        assert_eq!(r_cpu.start, 0);
        assert_eq!(r_cpu.end, r_gpu.start);
        assert_eq!(r_gpu.end, r_dla.start);
        assert_eq!(r_dla.len(), soc.pus[2].streams);
    }

    #[test]
    fn with_pu_swaps_configuration() {
        let soc = SocConfig::xavier();
        let gpu_idx = soc.pu_index("GPU").unwrap();
        let slow = soc.pus[gpu_idx].with_frequency(670.0);
        let modified = soc.with_pu(gpu_idx, slow);
        assert!((modified.pus[gpu_idx].freq_mhz - 670.0).abs() < 1e-9);
        assert!((soc.pus[gpu_idx].freq_mhz - 1377.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_pu_is_none() {
        let soc = SocConfig::snapdragon855();
        assert!(soc.pu("DLA").is_none());
        assert_eq!(soc.pu("GPU").map(|p| p.name.as_str()), Some("GPU"));
    }
}
