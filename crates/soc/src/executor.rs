//! The PU executor: a compute-coupled traffic source.
//!
//! One [`PuExecutor`] models a single memory stream of a PU running a
//! kernel. A PU with `streams > 1` (e.g. an 8-core CPU complex) is
//! instantiated as that many executors, each carrying `1/streams` of the
//! PU's compute throughput and outstanding-request window; the memory
//! controller's fairness policies see them as distinct sources, just as a
//! real MC sees per-core ports.
//!
//! The executor issues 64-byte line requests while its window allows, and a
//! modelled compute engine consumes returned lines at
//! [`KernelDesc::cycles_per_line`]. The kernel's standalone bandwidth
//! demand therefore *emerges* from operational intensity and the PU's
//! compute rate — low-intensity kernels are limited by the memory system,
//! high-intensity kernels by compute — which mirrors how the paper's
//! roofline calibrators behave on silicon.

use crate::kernel::KernelDesc;
use crate::pu::PuConfig;
use pccs_dram::config::DramConfig;
use pccs_dram::controller::Completion;
use pccs_dram::request::{MemoryRequest, ReqKind, SourceId};
use pccs_dram::traffic::{AddressWalker, TrafficSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// How many lines of fetched-but-unprocessed data an executor may buffer
/// beyond its request window.
const RUNAHEAD_LINES: u64 = 8;

/// One memory stream of a PU running a kernel. Implements
/// [`TrafficSource`]; its [`TrafficSource::progress`] reports fully
/// *processed* (fetched + computed) lines.
#[derive(Debug)]
pub struct PuExecutor {
    source: SourceId,
    kernel: KernelDesc,
    window: usize,
    flops_per_mem_cycle: f64,
    region_bytes: u64,

    cycles_per_line: f64,
    line_bytes: u64,
    outstanding: usize,
    issued: u64,
    completed: u64,
    consumed: u64,
    compute_free: f64,
    pending_data: VecDeque<u64>,
    last_cycle: Option<u64>,
    walker: Option<AddressWalker>,
    retry: Option<MemoryRequest>,
    rng: SmallRng,
}

impl PuExecutor {
    /// Creates the executors for every stream of `pu` running `kernel`,
    /// with source ids `base_source .. base_source + pu.streams`.
    pub fn streams_for(pu: &PuConfig, kernel: &KernelDesc, base_source: usize) -> Vec<PuExecutor> {
        Self::streams_for_seeded(pu, kernel, base_source, 0)
    }

    /// Like [`PuExecutor::streams_for`] with an extra seed perturbation, so
    /// repeated runs sample different address phases (measurement
    /// averaging).
    pub fn streams_for_seeded(
        pu: &PuConfig,
        kernel: &KernelDesc,
        base_source: usize,
        run_seed: u64,
    ) -> Vec<PuExecutor> {
        let streams = pu.streams.max(1);
        let window = (pu.mlp_window / streams).max(1);
        (0..streams)
            .map(|s| PuExecutor {
                source: SourceId(base_source + s),
                kernel: kernel.clone(),
                window,
                flops_per_mem_cycle: 0.0, // filled by bind via pu rate
                region_bytes: 128 << 20,
                cycles_per_line: 0.0,
                line_bytes: 64,
                outstanding: 0,
                issued: 0,
                completed: 0,
                consumed: 0,
                compute_free: 0.0,
                pending_data: VecDeque::new(),
                last_cycle: None,
                walker: None,
                retry: None,
                rng: SmallRng::seed_from_u64(
                    0xd1b5_4a32_d192_ed03
                        ^ run_seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
                        ^ ((base_source + s) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
            })
            .map(|mut e| {
                e.flops_per_mem_cycle = f64::NAN; // must be set before bind
                e
            })
            .collect()
    }

    /// Creates one executor explicitly (single-stream PU or tests).
    pub fn single(
        source: SourceId,
        pu: &PuConfig,
        kernel: &KernelDesc,
        mem_clock_mhz: f64,
    ) -> PuExecutor {
        let mut v = Self::streams_for(pu, kernel, source.0);
        let mut e = v.swap_remove(0);
        e.set_compute_rate(pu.flops_per_mem_cycle(mem_clock_mhz) / pu.streams.max(1) as f64);
        e
    }

    /// Sets the per-stream compute rate in flops per memory cycle. Must be
    /// called before the executor is bound/used.
    pub fn set_compute_rate(&mut self, flops_per_mem_cycle: f64) {
        assert!(
            flops_per_mem_cycle > 0.0 && flops_per_mem_cycle.is_finite(),
            "compute rate must be positive and finite"
        );
        self.flops_per_mem_cycle = flops_per_mem_cycle;
    }

    fn advance_compute(&mut self, cycle: u64) {
        let end = (cycle + 1) as f64;
        while self.compute_free < end {
            let Some(&ready) = self.pending_data.front() else {
                break;
            };
            let start = self.compute_free.max(ready as f64);
            if start >= end {
                break;
            }
            self.compute_free = start + self.cycles_per_line;
            self.pending_data.pop_front();
            self.consumed += 1;
        }
    }
}

impl TrafficSource for PuExecutor {
    fn source_id(&self) -> SourceId {
        self.source
    }

    fn bind(&mut self, config: &DramConfig) {
        assert!(
            self.flops_per_mem_cycle.is_finite(),
            "set_compute_rate must be called before binding a PuExecutor"
        );
        self.line_bytes = u64::from(config.line_bytes);
        self.cycles_per_line = self
            .kernel
            .cycles_per_line(self.flops_per_mem_cycle, config.line_bytes);
        let region_base = self.source.0 as u64 * self.region_bytes;
        self.walker = Some(AddressWalker::new(
            region_base,
            self.region_bytes,
            self.line_bytes,
            self.kernel.row_locality,
        ));
    }

    fn poll(&mut self, cycle: u64) -> Option<MemoryRequest> {
        if self.last_cycle != Some(cycle) {
            self.last_cycle = Some(cycle);
            self.advance_compute(cycle);
        }
        if let Some(req) = self.retry.take() {
            return Some(req);
        }
        if self.outstanding >= self.window {
            return None;
        }
        // Don't run ahead of the compute engine indefinitely.
        if self.issued - self.consumed >= self.window as u64 + RUNAHEAD_LINES {
            return None;
        }

        let addr = self
            .walker
            .as_mut()
            // Lifecycle contract: `add_generator` always binds before the
            // first poll; returning None here would silently mask a misuse.
            .expect("bind must be called before poll") // pccs-lint: allow(hot-path-panic)
            .next_addr(&mut self.rng);

        let id = self.issued;
        self.issued += 1;
        self.outstanding += 1;
        let kind =
            if self.kernel.write_fraction > 0.0 && self.rng.gen_bool(self.kernel.write_fraction) {
                ReqKind::Write
            } else {
                ReqKind::Read
            };
        let mut req = MemoryRequest::read(id, self.source, addr, cycle);
        req.kind = kind;
        req.bytes = self.line_bytes as u32;
        Some(req)
    }

    fn on_reject(&mut self, req: MemoryRequest) {
        self.retry = Some(req);
    }

    fn on_complete(&mut self, completion: &Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.completed += 1;
        self.pending_data.push_back(completion.finish);
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn progress(&self) -> u64 {
        self.consumed
    }

    fn next_emit_at(&self, cycle: u64) -> Option<u64> {
        if self.retry.is_some() {
            return Some(cycle);
        }
        if self.outstanding >= self.window {
            return None; // Unblocks on a completion — an executed cycle.
        }
        let ahead = self.issued - self.consumed;
        let cap = self.window as u64 + RUNAHEAD_LINES;
        if ahead < cap {
            return Some(cycle);
        }
        // Runahead-blocked: the gate reopens once enough fetched lines have
        // *started* compute. Replay the compute engine's pop sequence (the
        // same arithmetic as `advance_compute`) over the buffered lines to
        // find when the `need`-th pop begins; `poll` at that cycle observes
        // the matching `consumed` increment because it advances compute
        // before checking the gate.
        let need = ahead - cap + 1;
        let mut free = self.compute_free;
        let mut last_start = 0.0_f64;
        let mut lines = self.pending_data.iter();
        for _ in 0..need {
            // Not enough buffered lines: a future completion must land
            // first, and completions always force an executed cycle.
            let &ready = lines.next()?;
            let start = free.max(ready as f64);
            last_start = start;
            free = start + self.cycles_per_line;
        }
        // A pop whose start is `s` becomes visible to the poll at cycle
        // floor(s) (advance_compute pops while start < cycle + 1).
        Some((last_start as u64).max(cycle))
    }

    fn fast_forward(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(self.retry.is_none(), "fast-forward with a pending retry");
        // `advance_compute` is call-granularity invariant: one call at the
        // last skipped cycle performs bit-identical pop/compute_free updates
        // to calling it at every cycle of the span, so the skipped polls'
        // only side effect is reproduced exactly.
        self.last_cycle = Some(to - 1);
        self.advance_compute(to - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_dram::policy::PolicyKind;
    use pccs_dram::sim::DramSystem;

    fn xavier_mem() -> DramConfig {
        DramConfig::xavier()
    }

    fn run_single(kernel: KernelDesc, horizon: u64) -> (f64, u64) {
        let config = xavier_mem();
        let pu = crate::pu::PuConfig::xavier_gpu();
        let mut sys = DramSystem::new(config.clone(), PolicyKind::Atlas);
        let per_stream = pu.flops_per_mem_cycle(config.clock_mhz) / pu.streams as f64;
        let mut execs = PuExecutor::streams_for(&pu, &kernel, 0);
        for e in &mut execs {
            e.set_compute_rate(per_stream);
        }
        for e in execs {
            sys.add_generator(e);
        }
        let out = sys.run(horizon);
        let bw: f64 = (0..pu.streams)
            .map(|s| out.source_bw_gbps(SourceId(s)))
            .sum();
        let progress: u64 = (0..pu.streams).map(|s| out.progress[&SourceId(s)]).sum();
        (bw, progress)
    }

    #[test]
    fn low_intensity_kernel_is_memory_bound() {
        // Intensity ~0: demand unbounded -> achieved BW approaches peak.
        let (bw, _) = run_single(KernelDesc::new("copy", 0.01, 0.95, 0.3, 1.0), 40_000);
        assert!(bw > 80.0, "streaming kernel should near peak, got {bw:.1}");
    }

    #[test]
    fn high_intensity_kernel_uses_little_bandwidth() {
        let (bw, progress) = run_single(KernelDesc::new("compute", 100.0, 0.9, 0.1, 1.0), 40_000);
        assert!(bw < 30.0, "compute-bound kernel demanded {bw:.1} GB/s");
        assert!(progress > 0);
    }

    #[test]
    fn intensity_controls_demand_monotonically() {
        let bws: Vec<f64> = [2.0, 8.0, 32.0]
            .iter()
            .map(|&i| run_single(KernelDesc::new("k", i, 0.92, 0.3, 1.0), 30_000).0)
            .collect();
        assert!(bws[0] > bws[1] && bws[1] > bws[2], "bws = {bws:?}");
    }

    #[test]
    fn progress_tracks_completed_when_compute_is_instant() {
        let config = xavier_mem();
        let pu = crate::pu::PuConfig::xavier_dla();
        let kernel = KernelDesc::new("fast", 0.001, 0.9, 0.0, 1.0);
        let mut e = PuExecutor::single(SourceId(0), &pu, &kernel, config.clock_mhz);
        e.bind(&config);
        let mut sys = DramSystem::new(config, PolicyKind::FrFcfs);
        // Re-create via streams_for to use add_generator's bind path.
        let mut execs = PuExecutor::streams_for(&pu, &kernel, 0);
        execs[0].set_compute_rate(pu.flops_per_mem_cycle(2133.0));
        let ex = execs.swap_remove(0);
        sys.add_generator(ex);
        let out = sys.run(20_000);
        let completed = out.completed[&SourceId(0)];
        let progress = out.progress[&SourceId(0)];
        assert!(completed > 0);
        assert!(
            progress + 2 >= completed,
            "progress {progress} vs completed {completed}"
        );
    }

    #[test]
    fn event_engine_matches_cycle_engine_for_pu_traffic() {
        use pccs_dram::EngineKind;
        let run = |engine: EngineKind| {
            let config = xavier_mem();
            let pu = crate::pu::PuConfig::xavier_gpu();
            let kernel = KernelDesc::new("mix", 4.0, 0.9, 0.3, 1.0);
            let mut sys = DramSystem::with_engine(config.clone(), PolicyKind::Atlas, engine);
            let per_stream = pu.flops_per_mem_cycle(config.clock_mhz) / pu.streams as f64;
            let mut execs = PuExecutor::streams_for(&pu, &kernel, 0);
            for e in &mut execs {
                e.set_compute_rate(per_stream);
            }
            for e in execs {
                sys.add_generator(e);
            }
            sys.run_with_warmup(5_000, 30_000)
        };
        let cycle = run(EngineKind::Cycle);
        let event = run(EngineKind::Event);
        assert_eq!(cycle.stats, event.stats, "MemoryStats diverged");
        assert_eq!(cycle.completed, event.completed);
        assert_eq!(cycle.progress, event.progress);
    }

    #[test]
    fn streams_for_splits_window() {
        let pu = crate::pu::PuConfig::xavier_cpu();
        let execs = PuExecutor::streams_for(&pu, &KernelDesc::memory_streaming("k", 1.0), 10);
        assert_eq!(execs.len(), pu.streams);
        assert_eq!(execs[0].window, pu.mlp_window / pu.streams);
        assert_eq!(execs[0].source, SourceId(10));
        assert_eq!(execs.last().unwrap().source, SourceId(10 + pu.streams - 1));
    }

    #[test]
    #[should_panic(expected = "set_compute_rate")]
    fn binding_without_rate_panics() {
        let pu = crate::pu::PuConfig::xavier_gpu();
        let mut execs = PuExecutor::streams_for(&pu, &KernelDesc::memory_streaming("k", 1.0), 0);
        execs[0].bind(&xavier_mem());
    }
}
