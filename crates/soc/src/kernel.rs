//! Kernel descriptors.
//!
//! A kernel is characterized the way the paper's calibrators are
//! (Section 3.2): a stream of work items, each loading one cache line and
//! performing `ops_per_byte × line` arithmetic operations. Operational
//! intensity is the single knob that moves a kernel between memory-bound
//! and compute-bound, and thereby sets its standalone bandwidth demand on a
//! given PU.

use serde::{Deserialize, Serialize};

/// A kernel's execution characteristics, independent of any PU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Display name.
    pub name: String,
    /// Operational intensity: arithmetic operations per byte of memory
    /// traffic.
    pub ops_per_byte: f64,
    /// Probability of successive accesses staying in the same DRAM row
    /// region (stream-like kernels ≈ 0.9+, pointer-chasing ≈ 0.2).
    pub row_locality: f64,
    /// Fraction of traffic that is writes.
    pub write_fraction: f64,
    /// Fraction of the PU's compute lanes the kernel can keep busy
    /// (1.0 = perfectly vectorized/parallel).
    pub parallel_efficiency: f64,
}

impl KernelDesc {
    /// Creates a kernel with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_byte` is negative, or if `row_locality`,
    /// `write_fraction` or `parallel_efficiency` fall outside `[0, 1]`
    /// (`parallel_efficiency` must be positive).
    pub fn new(
        name: impl Into<String>,
        ops_per_byte: f64,
        row_locality: f64,
        write_fraction: f64,
        parallel_efficiency: f64,
    ) -> Self {
        assert!(ops_per_byte >= 0.0, "intensity must be non-negative");
        assert!(
            (0.0..=1.0).contains(&row_locality),
            "row locality must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction must be a probability"
        );
        assert!(
            parallel_efficiency > 0.0 && parallel_efficiency <= 1.0,
            "parallel efficiency must be in (0, 1]"
        );
        Self {
            name: name.into(),
            ops_per_byte,
            row_locality,
            write_fraction,
            parallel_efficiency,
        }
    }

    /// A streaming, memory-bound kernel (vector-add-like) with the given
    /// operational intensity and high row locality.
    pub fn memory_streaming(name: impl Into<String>, ops_per_byte: f64) -> Self {
        Self::new(name, ops_per_byte, 0.92, 0.3, 1.0)
    }

    /// A compute-bound kernel: high intensity, modest traffic.
    pub fn compute_bound(name: impl Into<String>, ops_per_byte: f64) -> Self {
        assert!(
            ops_per_byte >= 8.0,
            "compute-bound kernels need high intensity"
        );
        Self::new(name, ops_per_byte, 0.9, 0.1, 1.0)
    }

    /// A calibrator kernel in the style of the roofline toolkit: streaming
    /// access with `ops_per_word` operations per 8-byte word.
    pub fn calibrator(ops_per_word: f64) -> Self {
        Self::new(
            format!("calibrator-{ops_per_word:.2}"),
            ops_per_word / 8.0,
            0.95,
            0.34, // vector add writes one stream out of three
            1.0,
        )
    }

    /// The compute cycles one 64-byte line costs a PU that retires
    /// `flops_per_mem_cycle` operations per memory cycle.
    pub fn cycles_per_line(&self, flops_per_mem_cycle: f64, line_bytes: u32) -> f64 {
        assert!(flops_per_mem_cycle > 0.0);
        self.ops_per_byte * f64::from(line_bytes) / (flops_per_mem_cycle * self.parallel_efficiency)
    }

    /// The standalone bandwidth demand this kernel would generate on a PU
    /// whose compute retires `flops_per_mem_cycle` per memory cycle, if
    /// memory were infinitely fast: `line / compute_time` per line, capped
    /// by nothing. Returned in bytes per memory cycle; zero intensity means
    /// the demand is unbounded (`f64::INFINITY`).
    pub fn compute_limited_demand(&self, flops_per_mem_cycle: f64, line_bytes: u32) -> f64 {
        let cycles = self.cycles_per_line(flops_per_mem_cycle, line_bytes);
        if cycles <= 0.0 {
            f64::INFINITY
        } else {
            f64::from(line_bytes) / cycles
        }
    }

    /// Solves for the operational intensity that makes this kernel demand
    /// `bytes_per_cycle` of bandwidth on the given PU compute rate. Used to
    /// build calibrators with prescribed demands.
    pub fn intensity_for_demand(
        flops_per_mem_cycle: f64,
        bytes_per_cycle: f64,
        parallel_efficiency: f64,
    ) -> f64 {
        assert!(bytes_per_cycle > 0.0, "demand must be positive");
        flops_per_mem_cycle * parallel_efficiency / bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_per_line_scales_with_intensity() {
        let low = KernelDesc::memory_streaming("a", 0.5);
        let high = KernelDesc::memory_streaming("b", 2.0);
        let flops = 100.0;
        assert!(high.cycles_per_line(flops, 64) > low.cycles_per_line(flops, 64));
    }

    #[test]
    fn demand_is_inverse_of_intensity() {
        let k = KernelDesc::memory_streaming("k", 1.0);
        // 64 ops per line at 128 flops/cycle = 0.5 cycles/line → 128 B/cycle.
        let d = k.compute_limited_demand(128.0, 64);
        assert!((d - 128.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_for_demand_round_trips() {
        let flops = 321.0;
        let target = 48.0;
        let intensity = KernelDesc::intensity_for_demand(flops, target, 1.0);
        let k = KernelDesc::new("cal", intensity, 0.9, 0.0, 1.0);
        let demand = k.compute_limited_demand(flops, 64);
        assert!((demand - target).abs() < 1e-9);
    }

    #[test]
    fn zero_intensity_demand_is_unbounded() {
        let k = KernelDesc::new("pure-copy", 0.0, 0.9, 0.5, 1.0);
        assert!(k.compute_limited_demand(10.0, 64).is_infinite());
    }

    #[test]
    fn calibrator_names_include_ops() {
        let k = KernelDesc::calibrator(4.0);
        assert!(k.name.contains("4.00"));
        assert!((k.ops_per_byte - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_locality() {
        KernelDesc::new("x", 1.0, 2.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "parallel efficiency")]
    fn rejects_zero_efficiency() {
        KernelDesc::new("x", 1.0, 0.5, 0.0, 0.0);
    }
}
