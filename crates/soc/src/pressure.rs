//! External memory-pressure generation.
//!
//! The paper creates external pressure by running bandwidth kernels on the
//! *other* PUs ("For the CPU model, we create the external pressure using
//! the GPU; for the GPU and DLA models, we create the external pressure
//! using the CPU", Section 4.1.1), and notes the source-obliviousness
//! insight: only the *amount* of external traffic matters, not its origin.
//!
//! [`pressure_streams`] turns a total demanded bandwidth into the stream
//! set the pressure-generating PU would present to the memory controller:
//! `pu.streams` rate-limited streaming sources, each demanding an equal
//! share, with the PU's per-stream window.

use crate::pu::PuConfig;
use pccs_dram::request::SourceId;
use pccs_dram::traffic::StreamTraffic;

/// Builds the traffic streams a PU generates when asked to demand
/// `total_gbps` of external bandwidth. Streams get source ids
/// `base_source ..`.
///
/// The demand is what the pressure kernel *requests*; the achieved pressure
/// can be lower under contention, exactly as on silicon ("The actual
/// external BW pressure is equal to or lower than the demand", §2.2).
pub fn pressure_streams(pu: &PuConfig, total_gbps: f64, base_source: usize) -> Vec<StreamTraffic> {
    pressure_streams_seeded(pu, total_gbps, base_source, 0)
}

/// Like [`pressure_streams`] with an extra seed perturbation for repeated
/// measurements.
pub fn pressure_streams_seeded(
    pu: &PuConfig,
    total_gbps: f64,
    base_source: usize,
    run_seed: u64,
) -> Vec<StreamTraffic> {
    assert!(total_gbps >= 0.0, "pressure demand must be non-negative");
    let streams = pu.streams.max(1);
    let per_stream = total_gbps / streams as f64;
    let window = (pu.mlp_window / streams).max(1);
    (0..streams)
        .map(|s| {
            StreamTraffic::builder(SourceId(base_source + s))
                .demand_gbps(per_stream)
                .row_locality(0.9)
                .write_fraction(0.3)
                .window(window)
                .seed(0xace1 ^ run_seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (base_source + s) as u64)
                .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_dram::traffic::TrafficSource;

    #[test]
    fn stream_count_matches_pu() {
        let cpu = PuConfig::xavier_cpu();
        let streams = pressure_streams(&cpu, 40.0, 5);
        assert_eq!(streams.len(), cpu.streams);
        assert_eq!(streams[0].source_id(), SourceId(5));
        assert_eq!(
            streams.last().unwrap().source_id(),
            SourceId(5 + cpu.streams - 1)
        );
    }

    #[test]
    fn demand_is_split_equally() {
        let cpu = PuConfig::xavier_cpu();
        let streams = pressure_streams(&cpu, 40.0, 0);
        for s in &streams {
            assert!((s.demand_gbps() - 40.0 / cpu.streams as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_pressure_is_allowed() {
        let dla = PuConfig::xavier_dla();
        let streams = pressure_streams(&dla, 0.0, 0);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].demand_gbps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_pressure_panics() {
        pressure_streams(&PuConfig::xavier_cpu(), -1.0, 0);
    }
}
