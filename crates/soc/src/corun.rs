//! Co-run simulation and achieved-relative-speed measurement.
//!
//! This module provides the measurement layer the paper obtains from real
//! hardware: standalone profiling of one kernel on one PU, and co-runs of
//! multiple kernels (or raw external pressure) across PUs sharing the
//! memory controller. Achieved relative speed (`RS`) is the ratio of work
//! rates: `(co-run lines / cycle) / (standalone lines / cycle)`.

use crate::executor::PuExecutor;
use crate::kernel::KernelDesc;
use crate::pressure::pressure_streams_seeded;
use crate::soc::SocConfig;
use pccs_dram::engine::EngineKind;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::{DramSystem, SimOutcome};
use pccs_telemetry::audit::{self, AuditRecord};
use pccs_telemetry::{metrics, EpochRecorder, Profiler, TraceLog};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Default simulation horizon in memory cycles; ~30 µs at 2133 MHz, enough
/// for tens of thousands of lines per PU.
pub const DEFAULT_HORIZON: u64 = 60_000;

/// Fraction of the horizon discarded as warmup before rates are measured.
pub const WARMUP_FRACTION: f64 = 0.25;

/// Measurement configuration of a co-run: horizon, warmup share, averaging
/// repetitions, and the memory-controller policy. The former free-standing
/// magic numbers [`DEFAULT_HORIZON`] and [`WARMUP_FRACTION`] are the
/// builder defaults, so callers that need different fidelity (the
/// scheduler's oracle probes, quick tests) configure it in one place
/// instead of redefining constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoRunConfig {
    /// Simulated memory cycles per run.
    pub horizon: u64,
    /// Fraction of the horizon discarded before rates are measured.
    pub warmup_fraction: f64,
    /// Differently seeded repetitions whose rates are averaged.
    pub repeats: u32,
    /// Memory-controller scheduling policy.
    pub policy: PolicyKind,
    /// Which memory-engine driver runs the DRAM model (bit-identical
    /// results either way; `Event` is the fast path).
    pub engine: EngineKind,
}

impl Default for CoRunConfig {
    fn default() -> Self {
        Self {
            horizon: DEFAULT_HORIZON,
            warmup_fraction: WARMUP_FRACTION,
            repeats: 1,
            policy: PolicyKind::Atlas,
            engine: EngineKind::Cycle,
        }
    }
}

impl CoRunConfig {
    /// A short probe: quarter horizon, single repetition — what a scheduler
    /// can afford per candidate placement while staying on the measured
    /// side of the warmup knee.
    pub fn probe() -> Self {
        Self {
            horizon: 15_000,
            ..Self::default()
        }
    }

    /// Sets the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// Sets the warmup fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1)`.
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warmup fraction must be in [0, 1)"
        );
        self.warmup_fraction = fraction;
        self
    }

    /// Sets the repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        assert!(repeats >= 1, "at least one repetition required");
        self.repeats = repeats;
        self
    }

    /// Sets the memory-controller policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the memory-engine driver.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// What runs on one PU during a co-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the PU in [`SocConfig::pus`].
    pub pu_idx: usize,
    /// The work placed on it.
    pub work: PlacementWork,
}

/// The work assigned to a PU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementWork {
    /// A kernel executed by the PU's compute model.
    Kernel(KernelDesc),
    /// Raw bandwidth pressure of the given total GB/s demand (a calibrator
    /// run open-loop, used when only the traffic matters).
    Pressure(f64),
}

impl Placement {
    /// Places `kernel` on PU `pu_idx`.
    pub fn kernel(pu_idx: usize, kernel: KernelDesc) -> Self {
        Self {
            pu_idx,
            work: PlacementWork::Kernel(kernel),
        }
    }

    /// Places a pure bandwidth demand on PU `pu_idx`.
    pub fn pressure(pu_idx: usize, gbps: f64) -> Self {
        Self {
            pu_idx,
            work: PlacementWork::Pressure(gbps),
        }
    }
}

/// The standalone execution profile of a kernel on a PU — the quantity the
/// paper obtains with NVperf/perf/Valgrind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandaloneProfile {
    /// PU the kernel was profiled on.
    pub pu_idx: usize,
    /// Work rate in lines per memory cycle.
    pub lines_per_cycle: f64,
    /// Standalone achieved bandwidth — the kernel's *bandwidth demand* in
    /// the paper's terminology (GB/s).
    pub bw_gbps: f64,
    /// Horizon used for profiling.
    pub horizon: u64,
}

/// Errors from relative-speed accounting on a [`CoRunOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoRunError {
    /// The asked-about PU had no work placed in this co-run.
    NotPlaced {
        /// The PU index that was queried.
        pu_idx: usize,
    },
    /// The standalone profile belongs to a different PU than the one asked
    /// about — comparing them would silently mix machines.
    ProfileMismatch {
        /// PU the profile was measured on.
        profile_pu: usize,
        /// PU the caller asked about.
        pu_idx: usize,
    },
}

impl fmt::Display for CoRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoRunError::NotPlaced { pu_idx } => {
                write!(f, "PU {pu_idx} was not placed in this co-run")
            }
            CoRunError::ProfileMismatch { profile_pu, pu_idx } => write!(
                f,
                "profile belongs to PU {profile_pu} but asked about PU {pu_idx}"
            ),
        }
    }
}

impl std::error::Error for CoRunError {}

/// Per-PU measurements from one co-run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PuRunResult {
    /// Lines fully processed during the run.
    pub lines: u64,
    /// Work rate in lines per memory cycle.
    pub lines_per_cycle: f64,
    /// Achieved bandwidth in GB/s.
    pub bw_gbps: f64,
}

/// The result of a co-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoRunOutcome {
    /// Measurements per placed PU index.
    pub per_pu: BTreeMap<usize, PuRunResult>,
    /// Cycles simulated.
    pub horizon: u64,
    /// Raw memory-system outcome (row-hit rates, latencies, …).
    pub memory: SimOutcome,
}

impl CoRunOutcome {
    /// Achieved relative speed of PU `pu_idx` against its standalone
    /// profile, as a fraction (1.0 = no slowdown).
    ///
    /// # Errors
    ///
    /// Returns [`CoRunError::NotPlaced`] if `pu_idx` had no work placed in
    /// this co-run and [`CoRunError::ProfileMismatch`] if the profile was
    /// measured on a different PU.
    pub fn relative_speed(
        &self,
        pu_idx: usize,
        standalone: &StandaloneProfile,
    ) -> Result<f64, CoRunError> {
        if standalone.pu_idx != pu_idx {
            return Err(CoRunError::ProfileMismatch {
                profile_pu: standalone.pu_idx,
                pu_idx,
            });
        }
        let r = self
            .per_pu
            .get(&pu_idx)
            .ok_or(CoRunError::NotPlaced { pu_idx })?;
        if standalone.lines_per_cycle <= 0.0 {
            return Ok(1.0);
        }
        Ok(r.lines_per_cycle / standalone.lines_per_cycle)
    }

    /// Achieved relative speed as a percentage (the paper's `RS`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CoRunOutcome::relative_speed`].
    pub fn relative_speed_pct(
        &self,
        pu_idx: usize,
        standalone: &StandaloneProfile,
    ) -> Result<f64, CoRunError> {
        Ok(100.0 * self.relative_speed(pu_idx, standalone)?)
    }
}

/// A predicted relative speed registered with [`CoRunSim::expect_rs`],
/// waiting to be resolved against the achieved rate.
#[derive(Debug, Clone)]
struct RsExpectation {
    source: String,
    workload: String,
    region: String,
    standalone: StandaloneProfile,
    predicted_rs_pct: f64,
}

/// A co-run simulation under construction.
#[derive(Debug)]
pub struct CoRunSim {
    soc: SocConfig,
    config: CoRunConfig,
    placements: Vec<Placement>,
    expectations: Vec<RsExpectation>,
    epoch: Option<u64>,
    conformance: bool,
}

impl CoRunSim {
    /// Starts a co-run on `soc` with the default fairness-controlled
    /// memory-scheduling policy (ATLAS — whose effective-bandwidth profile
    /// is closest to the paper's Xavier measurement in Table 3).
    pub fn new(soc: &SocConfig) -> Self {
        Self::with_config(soc, CoRunConfig::default())
    }

    /// Starts a co-run with an explicit measurement configuration.
    pub fn with_config(soc: &SocConfig, config: CoRunConfig) -> Self {
        Self {
            soc: soc.clone(),
            config,
            placements: Vec::new(),
            expectations: Vec::new(),
            epoch: None,
            conformance: false,
        }
    }

    /// Registers a predicted relative speed for the PU of `standalone`:
    /// when the co-run executes, the achieved RS is measured against the
    /// profile and the (prediction, ground-truth) pair lands in the
    /// process-global audit ledger ([`pccs_telemetry::audit`]) with this
    /// simulation's SoC/policy/engine provenance attached. A no-op when
    /// the ledger is disabled or the PU ends up with no work placed.
    pub fn expect_rs(
        &mut self,
        source: &str,
        workload: &str,
        region: &str,
        standalone: StandaloneProfile,
        predicted_rs_pct: f64,
    ) -> &mut Self {
        self.expectations.push(RsExpectation {
            source: source.to_owned(),
            workload: workload.to_owned(),
            region: region.to_owned(),
            standalone,
            predicted_rs_pct,
        });
        self
    }

    /// Resolves every registered expectation against `out` and writes the
    /// pairs to the audit ledger.
    fn audit_expectations(&self, out: &CoRunOutcome) {
        if !audit::is_enabled() {
            return;
        }
        for e in &self.expectations {
            let pu_idx = e.standalone.pu_idx;
            if let Ok(achieved) = out.relative_speed_pct(pu_idx, &e.standalone) {
                audit::record(
                    AuditRecord::new(&e.source, "rs_pct", e.predicted_rs_pct, achieved)
                        .with_soc(&self.soc.slug())
                        .with_pu(&self.soc.pus[pu_idx].name)
                        .with_workload(&e.workload)
                        .with_region(&e.region)
                        .with_policy(self.config.policy.label())
                        .with_engine(self.config.engine.label()),
                );
            }
        }
    }

    /// Enables the DDR protocol conformance sanitizer on the underlying
    /// memory controller; the report lands in
    /// [`SimOutcome::conformance`](pccs_dram::sim::SimOutcome) of
    /// [`CoRunOutcome::memory`]. With repeats above one, the report covers
    /// the last repetition (matching [`CoRunOutcome::memory`]).
    pub fn check_conformance(&mut self) -> &mut Self {
        self.conformance = true;
        self
    }

    /// Enables epoch telemetry: the memory controller samples per-source
    /// bandwidth, queue depth, row mix, and stall breakdown every
    /// `epoch_cycles` cycles into
    /// [`SimOutcome::telemetry`](pccs_dram::sim::SimOutcome). With repeats
    /// above one, the report covers the last repetition (matching
    /// [`CoRunOutcome::memory`]).
    pub fn record_epochs(&mut self, epoch_cycles: u64) -> &mut Self {
        self.epoch = Some(epoch_cycles.max(1));
        self
    }

    /// Overrides the memory-controller scheduling policy.
    pub fn policy(&mut self, policy: PolicyKind) -> &mut Self {
        self.config.policy = policy;
        self
    }

    /// Selects the memory-engine driver (cycle-exact reference or the
    /// bit-identical event-driven fast path).
    pub fn engine(&mut self, engine: EngineKind) -> &mut Self {
        self.config.engine = engine;
        self
    }

    /// Sets the simulation horizon — [`CoRunConfig::horizon`] is the single
    /// source of truth for how long [`CoRunSim::execute`] runs.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn horizon(&mut self, horizon: u64) -> &mut Self {
        assert!(horizon > 0, "horizon must be positive");
        self.config.horizon = horizon;
        self
    }

    /// Number of differently seeded repetitions whose rates are averaged
    /// (default 1). Averaging damps the address-phase sensitivity of short
    /// simulations.
    pub fn repeats(&mut self, repeats: u32) -> &mut Self {
        assert!(repeats >= 1, "at least one repetition required");
        self.config.repeats = repeats;
        self
    }

    /// Adds a placement.
    ///
    /// # Panics
    ///
    /// Panics if the PU index is out of range or already occupied (the
    /// paper's scope: "a PU runs only one kernel at a given time").
    pub fn place(&mut self, placement: Placement) -> &mut Self {
        assert!(
            placement.pu_idx < self.soc.pus.len(),
            "PU index {} out of range",
            placement.pu_idx
        );
        assert!(
            self.placements.iter().all(|p| p.pu_idx != placement.pu_idx),
            "PU {} already has work placed",
            placement.pu_idx
        );
        self.placements.push(placement);
        self
    }

    /// Convenience: place raw external bandwidth pressure on a PU.
    pub fn external_pressure(&mut self, pu_idx: usize, gbps: f64) -> &mut Self {
        self.place(Placement::pressure(pu_idx, gbps))
    }

    /// Runs the co-run at [`CoRunConfig::horizon`] — the single source of
    /// truth for run length. The first [`CoRunConfig::warmup_fraction`] of
    /// the horizon is excluded from the measured rates; when
    /// [`CoRunSim::repeats`] is above one, rates are averaged over
    /// differently seeded repetitions (the returned raw
    /// [`CoRunOutcome::memory`] is from the last repetition).
    pub fn execute(&self) -> CoRunOutcome {
        self.run_at(self.config.horizon)
    }

    fn run_at(&self, horizon: u64) -> CoRunOutcome {
        assert!(horizon > 0, "horizon must be positive");
        let _prof = Profiler::scope("sim.execute");
        let mut span = TraceLog::span("corun.run");
        span.counter("placements", self.placements.len() as f64);
        span.counter("repeats", f64::from(self.config.repeats));
        span.counter("horizon", horizon as f64);
        let warmup = (horizon as f64 * self.config.warmup_fraction) as u64;
        let mut acc: BTreeMap<usize, (f64, f64, u64)> = BTreeMap::new();
        let accumulate = |acc: &mut BTreeMap<usize, (f64, f64, u64)>, memory: &SimOutcome| {
            for placement in &self.placements {
                let range = self.soc.source_range(placement.pu_idx);
                let lines: u64 = range
                    .clone()
                    .map(|s| {
                        memory
                            .measured
                            .progress
                            .get(&SourceId(s))
                            .copied()
                            .unwrap_or(0)
                    })
                    .sum();
                let bpc: f64 = range
                    .map(|s| memory.measured.bytes_per_cycle(SourceId(s)))
                    .sum();
                let bw = self.soc.dram.bytes_per_cycle_to_gbps(bpc);
                let rate = lines as f64 / memory.measured.cycles.max(1) as f64;
                let e = acc.entry(placement.pu_idx).or_insert((0.0, 0.0, 0));
                e.0 += rate;
                e.1 += bw;
                e.2 += lines;
            }
        };
        // Run repetition zero eagerly so the returned raw memory outcome is
        // always present without an unwrap on the accumulator.
        let mut memory = self.run_once(horizon, warmup, 0);
        accumulate(&mut acc, &memory);
        for rep in 1..self.config.repeats {
            memory = self.run_once(horizon, warmup, u64::from(rep));
            accumulate(&mut acc, &memory);
        }
        let n = f64::from(self.config.repeats.max(1));
        let per_pu = acc
            .into_iter()
            .map(|(pu, (rate, bw, lines))| {
                (
                    pu,
                    PuRunResult {
                        lines: lines / u64::from(self.config.repeats.max(1)),
                        lines_per_cycle: rate / n,
                        bw_gbps: bw / n,
                    },
                )
            })
            .collect();
        let out = CoRunOutcome {
            per_pu,
            horizon,
            memory,
        };
        self.audit_expectations(&out);
        out
    }

    fn run_once(&self, horizon: u64, warmup: u64, run_seed: u64) -> SimOutcome {
        let _prof = Profiler::scope("sim.rep");
        metrics::add("sim.runs", 1);
        let mut sys = DramSystem::with_engine(
            self.soc.dram.clone(),
            self.config.policy,
            self.config.engine,
        );
        if let Some(epoch) = self.epoch {
            sys.set_recorder(Box::new(EpochRecorder::new(epoch)));
        }
        if self.conformance {
            sys.enable_conformance();
        }
        for placement in &self.placements {
            let pu = &self.soc.pus[placement.pu_idx];
            let base = self.soc.source_base(placement.pu_idx);
            match &placement.work {
                PlacementWork::Kernel(kernel) => {
                    let per_stream =
                        pu.flops_per_mem_cycle(self.soc.dram.clock_mhz) / pu.streams.max(1) as f64;
                    let mut execs = PuExecutor::streams_for_seeded(pu, kernel, base, run_seed);
                    for e in &mut execs {
                        e.set_compute_rate(per_stream);
                    }
                    for e in execs {
                        sys.add_generator(e);
                    }
                }
                PlacementWork::Pressure(gbps) => {
                    for s in pressure_streams_seeded(pu, *gbps, base, run_seed) {
                        sys.add_generator(s);
                    }
                }
            }
        }
        sys.run_with_warmup(warmup, horizon)
    }

    /// Profiles `kernel` standalone on PU `pu_idx` of `soc` — the paper's
    /// standalone bandwidth-demand measurement.
    pub fn standalone(
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
        horizon: u64,
    ) -> StandaloneProfile {
        Self::standalone_averaged(soc, pu_idx, kernel, horizon, 1)
    }

    /// Standalone profiling averaged over `repeats` differently seeded runs.
    pub fn standalone_averaged(
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
        horizon: u64,
        repeats: u32,
    ) -> StandaloneProfile {
        Self::standalone_with(
            soc,
            pu_idx,
            kernel,
            &CoRunConfig::default()
                .with_horizon(horizon)
                .with_repeats(repeats),
        )
    }

    /// Standalone profiling under an explicit measurement configuration.
    pub fn standalone_with(
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
        config: &CoRunConfig,
    ) -> StandaloneProfile {
        let mut sim = CoRunSim::with_config(soc, config.clone());
        sim.place(Placement::kernel(pu_idx, kernel.clone()));
        let out = sim.execute();
        let r = out.per_pu[&pu_idx];
        StandaloneProfile {
            pu_idx,
            lines_per_cycle: r.lines_per_cycle,
            bw_gbps: r.bw_gbps,
            horizon: config.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xavier() -> SocConfig {
        SocConfig::xavier()
    }

    #[test]
    fn standalone_profile_reports_bandwidth() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let p = CoRunSim::standalone(&soc, gpu, &kernel, 30_000);
        assert!(p.bw_gbps > 20.0, "got {}", p.bw_gbps);
        assert!(p.lines_per_cycle > 0.0);
    }

    #[test]
    fn corun_slows_down_a_memory_bound_kernel() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let standalone = CoRunSim::standalone(&soc, gpu, &kernel, 40_000);

        let mut sim = CoRunSim::new(&soc);
        sim.horizon(40_000);
        sim.place(Placement::kernel(gpu, kernel));
        sim.external_pressure(cpu, 80.0);
        let out = sim.execute();
        let rs = out.relative_speed(gpu, &standalone).unwrap();
        assert!(rs < 0.97, "expected a slowdown, rs = {rs:.3}");
        assert!(rs > 0.2, "slowdown implausibly large, rs = {rs:.3}");
    }

    #[test]
    fn compute_bound_kernel_barely_slows() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let kernel = KernelDesc::compute_bound("hot", 200.0);
        let standalone = CoRunSim::standalone(&soc, gpu, &kernel, 40_000);

        let mut sim = CoRunSim::new(&soc);
        sim.horizon(40_000);
        sim.place(Placement::kernel(gpu, kernel));
        sim.external_pressure(cpu, 60.0);
        let out = sim.execute();
        let rs = out.relative_speed(gpu, &standalone).unwrap();
        assert!(rs > 0.85, "compute-bound kernel slowed to {rs:.3}");
    }

    #[test]
    fn more_pressure_means_more_slowdown() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 1.0);
        let standalone = CoRunSim::standalone(&soc, gpu, &kernel, 30_000);
        let rs_at = |gbps: f64| {
            let mut sim = CoRunSim::new(&soc);
            sim.horizon(30_000);
            sim.place(Placement::kernel(gpu, kernel.clone()));
            sim.external_pressure(cpu, gbps);
            sim.execute().relative_speed(gpu, &standalone).unwrap()
        };
        let low = rs_at(20.0);
        let high = rs_at(100.0);
        assert!(
            high <= low + 0.03,
            "rs should not increase with pressure: low={low:.3} high={high:.3}"
        );
    }

    #[test]
    fn epoch_telemetry_flows_through_corun() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let mut sim = CoRunSim::new(&soc);
        sim.place(Placement::kernel(
            gpu,
            KernelDesc::memory_streaming("stream", 0.5),
        ));
        sim.external_pressure(cpu, 40.0);
        sim.record_epochs(2_000);
        sim.horizon(20_000);
        let out = sim.execute();
        let report = out.memory.telemetry.as_ref().expect("epochs recorded");
        assert_eq!(report.epoch_cycles, 2_000);
        assert_eq!(report.total_bytes(), out.memory.stats.total_bytes());
        assert!(!report.sources().is_empty());
    }

    #[test]
    fn config_defaults_match_the_former_constants() {
        let cfg = CoRunConfig::default();
        assert_eq!(cfg.horizon, DEFAULT_HORIZON);
        assert!((cfg.warmup_fraction - WARMUP_FRACTION).abs() < 1e-12);
        assert_eq!(cfg.repeats, 1);
        assert_eq!(cfg.policy, PolicyKind::Atlas);
        assert_eq!(cfg.engine, EngineKind::Cycle, "cycle engine is the default");
        let probe = CoRunConfig::probe();
        assert!(probe.horizon < cfg.horizon);
    }

    #[test]
    fn engines_agree_on_a_full_corun() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let run = |engine: EngineKind| {
            let mut sim = CoRunSim::new(&soc);
            sim.engine(engine);
            sim.horizon(30_000);
            sim.place(Placement::kernel(
                gpu,
                KernelDesc::memory_streaming("stream", 0.5),
            ));
            sim.external_pressure(cpu, 60.0);
            sim.execute()
        };
        let cycle = run(EngineKind::Cycle);
        let event = run(EngineKind::Event);
        assert_eq!(cycle.per_pu, event.per_pu, "per-PU rates diverged");
        assert_eq!(cycle.memory.stats, event.memory.stats, "stats diverged");
        assert_eq!(cycle.memory.completed, event.memory.completed);
    }

    #[test]
    fn configured_run_matches_explicit_horizon() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let cfg = CoRunConfig::probe();
        let a = CoRunSim::standalone_with(&soc, gpu, &kernel, &cfg);
        let b = CoRunSim::standalone(&soc, gpu, &kernel, cfg.horizon);
        assert!((a.lines_per_cycle - b.lines_per_cycle).abs() < 1e-12);
        assert_eq!(a.horizon, cfg.horizon);
    }

    #[test]
    fn corun_types_cross_threads() {
        fn assert_send<T: Send>() {}
        assert_send::<CoRunSim>();
        assert_send::<CoRunOutcome>();
        assert_send::<StandaloneProfile>();
    }

    #[test]
    #[should_panic(expected = "warmup fraction")]
    fn config_rejects_full_warmup() {
        let _ = CoRunConfig::default().with_warmup_fraction(1.0);
    }

    #[test]
    #[should_panic(expected = "already has work")]
    fn double_placement_panics() {
        let soc = xavier();
        let mut sim = CoRunSim::new(&soc);
        sim.place(Placement::pressure(0, 10.0));
        sim.place(Placement::pressure(0, 10.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pu_index_panics() {
        let soc = xavier();
        CoRunSim::new(&soc).place(Placement::pressure(9, 10.0));
    }

    #[test]
    fn relative_speed_requires_placement() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("k", 1.0);
        let standalone = CoRunSim::standalone(&soc, gpu, &kernel, 5_000);
        let mut sim = CoRunSim::new(&soc);
        sim.horizon(5_000);
        sim.external_pressure(0, 10.0);
        let out = sim.execute();
        assert_eq!(
            out.relative_speed(gpu, &standalone),
            Err(CoRunError::NotPlaced { pu_idx: gpu })
        );
        let wrong_pu = StandaloneProfile {
            pu_idx: 0,
            ..standalone
        };
        assert_eq!(
            out.relative_speed(gpu, &wrong_pu),
            Err(CoRunError::ProfileMismatch {
                profile_pu: 0,
                pu_idx: gpu
            })
        );
        assert!(CoRunError::NotPlaced { pu_idx: gpu }
            .to_string()
            .contains("not placed"));
    }

    #[test]
    fn expectations_resolve_into_the_audit_ledger() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let standalone = CoRunSim::standalone(&soc, gpu, &kernel, 20_000);
        let mut sim = CoRunSim::new(&soc);
        sim.horizon(20_000);
        sim.place(Placement::kernel(gpu, kernel));
        sim.external_pressure(cpu, 60.0);
        sim.expect_rs("corun-test", "stream", "normal", standalone, 80.0);

        // Disabled ledger: the expectation is dropped silently.
        audit::set_enabled(false);
        let before = audit::snapshot().len();
        sim.execute();
        assert_eq!(audit::snapshot().len(), before);

        audit::set_enabled(true);
        let out = sim.execute();
        audit::set_enabled(false);
        let recs: Vec<_> = audit::snapshot()
            .into_iter()
            .filter(|r| r.source == "corun-test")
            .collect();
        assert_eq!(recs.len(), 1, "one expectation, one record");
        let r = &recs[0];
        assert_eq!((r.soc.as_str(), r.pu.as_str()), ("xavier", "GPU"));
        assert_eq!((r.region.as_str(), r.unit.as_str()), ("normal", "rs_pct"));
        assert_eq!((r.policy.as_str(), r.engine.as_str()), ("ATLAS", "cycle"));
        assert!((r.predicted - 80.0).abs() < 1e-12);
        let achieved = out.relative_speed_pct(gpu, &standalone).unwrap();
        assert!((r.achieved - achieved).abs() < 1e-12);
    }

    #[test]
    fn conformance_flows_through_corun() {
        let soc = xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let cpu = soc.pu_index("CPU").unwrap();
        let mut sim = CoRunSim::new(&soc);
        sim.place(Placement::kernel(
            gpu,
            KernelDesc::memory_streaming("stream", 0.5),
        ));
        sim.external_pressure(cpu, 40.0);
        sim.check_conformance();
        sim.horizon(15_000);
        let out = sim.execute();
        let report = out.memory.conformance.as_ref().expect("sanitizer on");
        assert!(report.commands > 0);
        assert!(report.is_clean(), "{}", report.summary());
    }
}
