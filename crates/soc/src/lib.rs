//! Heterogeneous shared-memory SoC (HSM-SoC) simulator for the PCCS
//! reproduction.
//!
//! The PCCS paper profiles two physical SoCs (NVIDIA Jetson AGX Xavier and
//! Qualcomm Snapdragon 855). This crate substitutes them with a simulator in
//! which each processing unit (PU) is a compute-coupled traffic generator
//! feeding the shared detailed memory system of [`pccs_dram`]:
//!
//! * a [`pu::PuConfig`] captures a PU's compute throughput, clock frequency
//!   and memory-level parallelism (outstanding-request window);
//! * a [`kernel::KernelDesc`] captures a kernel's operational intensity
//!   (flops per byte), row locality and write mix;
//! * an [`executor::PuExecutor`] runs a kernel on a PU: it issues line-sized
//!   memory requests under the PU's window and consumes returned lines with
//!   the PU's compute throughput, so the kernel's *standalone bandwidth
//!   demand emerges* from intensity × compute rate, exactly as with the
//!   paper's roofline-toolkit calibrators;
//! * [`corun::CoRunSim`] places kernels on PUs, co-runs them over the shared
//!   memory controller, and measures achieved relative speed (the paper's
//!   `RS` metric).
//!
//! The SoC presets in [`soc::SocConfig`] reproduce Table 6 of the paper.
//!
//! # Example: a standalone and a contended run
//!
//! ```
//! use pccs_soc::soc::SocConfig;
//! use pccs_soc::kernel::KernelDesc;
//! use pccs_soc::corun::{CoRunSim, Placement};
//!
//! let soc = SocConfig::xavier();
//! let kernel = KernelDesc::memory_streaming("stream", 0.25);
//! let gpu = soc.pu_index("GPU").unwrap();
//!
//! // Standalone profile.
//! let profile = CoRunSim::standalone(&soc, gpu, &kernel, 60_000);
//! assert!(profile.bw_gbps > 0.0);
//!
//! // Same kernel under 40 GB/s of external pressure from the CPU complex.
//! let mut sim = CoRunSim::new(&soc);
//! sim.horizon(60_000);
//! sim.place(Placement::kernel(gpu, kernel));
//! sim.external_pressure(soc.pu_index("CPU").unwrap(), 40.0);
//! let outcome = sim.execute();
//! let rs = outcome.relative_speed(gpu, &profile).unwrap();
//! assert!(rs > 0.0 && rs <= 1.05);
//! ```

/// Co-run simulation and achieved-relative-speed measurement.
pub mod corun;
/// The PU executor: a compute-coupled traffic source.
pub mod executor;
/// Kernel descriptors.
pub mod kernel;
/// External memory-pressure generation.
pub mod pressure;
/// Processing-unit (PU) models.
pub mod pu;
/// Whole-SoC configuration: a set of PUs sharing one memory subsystem.
pub mod soc;

pub use corun::{CoRunOutcome, CoRunSim, Placement, StandaloneProfile};
pub use kernel::KernelDesc;
pub use pu::{PuConfig, PuKind};
pub use soc::SocConfig;
