//! Placement policies.
//!
//! A policy sees a snapshot of the system — free and busy PUs, the queue of
//! arrived jobs with per-PU standalone estimates, and the kernels currently
//! resident — and returns placement assignments. Four policies are
//! provided, in increasing order of contention awareness:
//!
//! * [`RoundRobin`] — cycles through the PUs, ignoring both speed and
//!   contention;
//! * [`ObliviousGreedy`] — picks the PU with the fastest *standalone* time,
//!   the classic heterogeneity-aware but contention-oblivious baseline;
//! * [`PccsPolicy`] — scores each candidate placement with the PCCS
//!   slowdown model (Section 1 of the paper: "a scheduler can use the model
//!   to decide which processor runs which kernel"): predicted finish time
//!   of the candidate plus the predicted delay inflicted on residents;
//! * [`OraclePolicy`] — the same decision structure, but costs come from
//!   short co-run simulations instead of model predictions — an upper
//!   bound on what contention-aware placement can achieve.

use pccs_core::{PccsModel, SlowdownModel};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use std::collections::BTreeMap;

/// Floor for predicted relative speeds, to keep costs finite.
const MIN_RS_PCT: f64 = 0.5;

/// Floor for measured rates in lines per cycle.
const MIN_RATE: f64 = 1e-9;

/// One PU as the policy sees it.
#[derive(Debug, Clone)]
pub struct PuSlot {
    /// Index into [`SocConfig::pus`].
    pub pu_idx: usize,
    /// PU class.
    pub kind: PuKind,
    /// PU display name.
    pub name: String,
    /// Whether the PU is idle.
    pub free: bool,
    /// Estimated cycles until the PU frees (0 when free), from the
    /// residents' remaining work at standalone rates — an optimistic,
    /// contention-oblivious estimate available to every policy.
    pub est_free_in: f64,
}

/// Standalone estimates of one phase of a candidate job on one PU.
#[derive(Debug, Clone)]
pub struct PhaseEstimate {
    /// The kernel the phase runs on this PU.
    pub kernel: KernelDesc,
    /// Work in lines.
    pub work_lines: f64,
    /// Measured standalone work rate on this PU, lines per cycle.
    pub standalone_rate: f64,
    /// Measured standalone bandwidth demand on this PU, GB/s — the model
    /// input `x` of the paper.
    pub demand_gbps: f64,
}

/// A candidate (job, PU) pairing with its standalone profile.
#[derive(Debug, Clone)]
pub struct PlacementOption {
    /// Index of the PU.
    pub pu_idx: usize,
    /// Total standalone execution time across phases, cycles.
    pub standalone_cycles: f64,
    /// Per-phase estimates.
    pub phases: Vec<PhaseEstimate>,
}

impl PlacementOption {
    /// Time-weighted mean standalone bandwidth demand across phases, GB/s —
    /// the single-number pressure this job adds to co-runners.
    pub fn mean_demand_gbps(&self) -> f64 {
        let mut weighted = 0.0;
        let mut time = 0.0;
        for ph in &self.phases {
            let t = ph.work_lines / ph.standalone_rate.max(MIN_RATE);
            weighted += ph.demand_gbps * t;
            time += t;
        }
        if time <= 0.0 {
            0.0
        } else {
            weighted / time
        }
    }
}

/// An arrived, not-yet-placed job.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// Job id.
    pub job_id: usize,
    /// Job name.
    pub name: String,
    /// Arrival time, cycles.
    pub arrival: u64,
    /// Deadline, if any.
    pub deadline: Option<u64>,
    /// Priority (larger first).
    pub priority: u32,
    /// One option per eligible PU (free or busy), ordered by PU index.
    pub options: Vec<PlacementOption>,
}

impl PendingJob {
    /// The option targeting PU `pu_idx`, if the job is eligible there.
    pub fn option_for(&self, pu_idx: usize) -> Option<&PlacementOption> {
        self.options.iter().find(|o| o.pu_idx == pu_idx)
    }
}

/// A job currently executing on a PU.
#[derive(Debug, Clone)]
pub struct Resident {
    /// The PU it occupies.
    pub pu_idx: usize,
    /// Job id.
    pub job_id: usize,
    /// The kernel of its current phase on that PU.
    pub kernel: KernelDesc,
    /// Standalone bandwidth demand of that kernel on that PU, GB/s.
    pub demand_gbps: f64,
    /// Standalone work rate on that PU, lines per cycle.
    pub standalone_rate: f64,
    /// Remaining work of the current phase, lines.
    pub remaining_lines: f64,
}

/// The scheduling snapshot a policy decides on.
#[derive(Debug, Clone)]
pub struct DecisionInput {
    /// Current time, cycles.
    pub now: f64,
    /// All PUs of the SoC.
    pub slots: Vec<PuSlot>,
    /// Arrived, unplaced jobs in arrival order.
    pub queue: Vec<PendingJob>,
    /// Jobs currently executing.
    pub residents: Vec<Resident>,
}

impl DecisionInput {
    /// The slot of PU `pu_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is not a PU of the snapshot.
    pub fn slot(&self, pu_idx: usize) -> &PuSlot {
        self.slots
            .iter()
            .find(|s| s.pu_idx == pu_idx)
            .unwrap_or_else(|| panic!("no slot for PU {pu_idx}"))
    }

    /// Queue positions sorted for service: priority descending, then
    /// arrival, then id — the order every bundled policy scans in.
    pub fn service_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by(|&a, &b| {
            let (ja, jb) = (&self.queue[a], &self.queue[b]);
            jb.priority
                .cmp(&ja.priority)
                .then(ja.arrival.cmp(&jb.arrival))
                .then(ja.job_id.cmp(&jb.job_id))
        });
        order
    }
}

/// A placement decision: run `job_id` on `pu_idx` now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The job to place.
    pub job_id: usize,
    /// The PU to place it on.
    pub pu_idx: usize,
    /// The cost the policy predicted for this placement (policy-specific
    /// units; recorded for decision telemetry).
    pub predicted_cost: f64,
}

/// Measurement access a policy may use: short co-run simulations of
/// candidate placements ("what rate would each PU sustain?"). Results are
/// cached by the engine, so repeated probes of the same placement set are
/// free.
pub trait Probe {
    /// Simulated co-run of the given (PU, kernel) placements; returns the
    /// sustained work rate of each placed PU in lines per cycle.
    fn corun_rates(&mut self, placements: &[(usize, KernelDesc)]) -> BTreeMap<usize, f64>;
}

/// A placement policy.
pub trait Policy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Decides which queued jobs to place on which free PUs. Returning no
    /// assignment for a job means it waits for a better slot.
    fn decide(&mut self, input: &DecisionInput, probe: &mut dyn Probe) -> Vec<Assignment>;

    /// The contention-region label of a standalone demand on PU `pu_idx`
    /// under this policy's model view, used as audit-ledger provenance.
    /// Model-free policies report `"-"`.
    fn region_label(&self, _pu_idx: usize, _demand_gbps: f64) -> &'static str {
        "-"
    }
}

/// Tracks how long each busy PU is expected to stay busy during one
/// decision round: the engine's optimistic estimate, plus the standalone
/// time of every job assigned to or queued behind the PU this round.
struct Backlog<'a> {
    input: &'a DecisionInput,
    extra: BTreeMap<usize, f64>,
}

impl<'a> Backlog<'a> {
    fn new(input: &'a DecisionInput) -> Self {
        Self {
            input,
            extra: BTreeMap::new(),
        }
    }

    /// Estimated cycles until PU `pu_idx` has drained its (round-local)
    /// backlog.
    fn until_free(&self, pu_idx: usize) -> f64 {
        self.input.slot(pu_idx).est_free_in + self.extra.get(&pu_idx).copied().unwrap_or(0.0)
    }

    /// The cheapest wait-then-run-alone estimate among the job's options on
    /// PUs outside `free`: `(pu, est_free + standalone)`.
    fn best_wait(&self, job: &PendingJob, free: &[usize]) -> Option<(usize, f64)> {
        job.options
            .iter()
            .filter(|o| !free.contains(&o.pu_idx))
            .map(|o| (o.pu_idx, self.until_free(o.pu_idx) + o.standalone_cycles))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Charges `cycles` of additional busy time onto PU `pu_idx`.
    fn charge(&mut self, pu_idx: usize, cycles: f64) {
        *self.extra.entry(pu_idx).or_insert(0.0) += cycles;
    }

    /// Lets `job` wait: charges its standalone time onto the PU it would
    /// queue on, so later jobs in the round see the longer line.
    fn charge_wait(&mut self, job: &PendingJob, free: &[usize]) {
        if let Some((pu, _)) = self.best_wait(job, free) {
            let std = job
                .option_for(pu)
                .expect("best_wait picked one of the job's options")
                .standalone_cycles;
            self.charge(pu, std);
        }
    }
}

/// Contention- and speed-oblivious baseline: each job takes the next
/// eligible free PU in a rotating scan.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn decide(&mut self, input: &DecisionInput, _probe: &mut dyn Probe) -> Vec<Assignment> {
        let mut free: Vec<usize> = input
            .slots
            .iter()
            .filter(|s| s.free)
            .map(|s| s.pu_idx)
            .collect();
        let mut out = Vec::new();
        for qi in input.service_order() {
            let job = &input.queue[qi];
            let n = input.slots.len();
            let chosen = (0..n)
                .map(|step| input.slots[(self.cursor + step) % n].pu_idx)
                .find(|pu| free.contains(pu) && job.option_for(*pu).is_some());
            if let Some(pu) = chosen {
                let opt = job.option_for(pu).expect("option checked above");
                out.push(Assignment {
                    job_id: job.job_id,
                    pu_idx: pu,
                    predicted_cost: opt.standalone_cycles,
                });
                free.retain(|p| *p != pu);
                self.cursor = (self.cursor + 1) % n;
            }
        }
        out
    }
}

/// Heterogeneity-aware, contention-oblivious greedy: each job takes the
/// free eligible PU with the shortest *standalone* execution time, and
/// waits for a busy PU only when even the optimistic wait-then-run estimate
/// beats the best free option. This is the strongest scheduler one can
/// build without a contention model.
#[derive(Debug, Default)]
pub struct ObliviousGreedy;

impl Policy for ObliviousGreedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide(&mut self, input: &DecisionInput, _probe: &mut dyn Probe) -> Vec<Assignment> {
        let mut free: Vec<usize> = input
            .slots
            .iter()
            .filter(|s| s.free)
            .map(|s| s.pu_idx)
            .collect();
        let mut backlog = Backlog::new(input);
        let mut out = Vec::new();
        for qi in input.service_order() {
            let job = &input.queue[qi];
            let best_free = job
                .options
                .iter()
                .filter(|o| free.contains(&o.pu_idx))
                .min_by(|a, b| a.standalone_cycles.total_cmp(&b.standalone_cycles));
            let Some(opt) = best_free else {
                backlog.charge_wait(job, &free);
                continue;
            };
            let wait = backlog.best_wait(job, &free);
            if wait.is_some_and(|(_, w)| w < opt.standalone_cycles) {
                backlog.charge_wait(job, &free);
                continue; // waiting for a faster PU beats running here now
            }
            out.push(Assignment {
                job_id: job.job_id,
                pu_idx: opt.pu_idx,
                predicted_cost: opt.standalone_cycles,
            });
            backlog.charge(opt.pu_idx, opt.standalone_cycles);
            free.retain(|p| *p != opt.pu_idx);
        }
        out
    }
}

/// A resident as tracked while a contention-aware policy builds up a
/// multi-assignment round: real residents plus jobs assigned earlier in the
/// same round.
#[derive(Debug, Clone)]
struct VirtualResident {
    pu_idx: usize,
    kernel: KernelDesc,
    demand_gbps: f64,
    standalone_rate: f64,
    remaining_std_cycles: f64,
}

/// Scores one candidate placement given the virtual resident set; lower is
/// better. Units are cycles (candidate finish time plus the delay inflicted
/// on residents).
trait PlacementScorer {
    fn score(
        &mut self,
        virt: &[VirtualResident],
        opt: &PlacementOption,
        probe: &mut dyn Probe,
    ) -> f64;
}

/// Folds the contention-window bound into a candidate's finish estimate:
/// residents eventually finish, so contended rates apply only while the
/// longest-running resident (`window` standalone cycles) is still around;
/// after that the candidate runs alone.
fn windowed_finish(contended: f64, standalone: f64, window: f64) -> f64 {
    if contended <= window || contended <= 0.0 {
        contended
    } else {
        // Fraction `window / contended` of the work completes during the
        // window; the rest proceeds at standalone speed.
        window + standalone * (1.0 - window / contended)
    }
}

/// The longest remaining standalone time among residents — the contention
/// window a candidate faces.
fn resident_window(virt: &[VirtualResident]) -> f64 {
    virt.iter()
        .map(|r| r.remaining_std_cycles)
        .fold(0.0, f64::max)
}

/// The shared decision loop of the contention-aware policies: repeatedly
/// pick the globally cheapest (job, free PU) pairing, let a job wait when
/// the optimistic wait-then-run-alone estimate beats its best immediate
/// placement, and fold each assignment into the virtual resident set so
/// later pairings in the same round see its pressure.
fn guided_decide(
    input: &DecisionInput,
    probe: &mut dyn Probe,
    scorer: &mut dyn PlacementScorer,
) -> Vec<Assignment> {
    let mut virt: Vec<VirtualResident> = input
        .residents
        .iter()
        .map(|r| VirtualResident {
            pu_idx: r.pu_idx,
            kernel: r.kernel.clone(),
            demand_gbps: r.demand_gbps,
            standalone_rate: r.standalone_rate,
            remaining_std_cycles: r.remaining_lines / r.standalone_rate.max(MIN_RATE),
        })
        .collect();
    let mut free: Vec<usize> = input
        .slots
        .iter()
        .filter(|s| s.free)
        .map(|s| s.pu_idx)
        .collect();
    let mut backlog = Backlog::new(input);
    let mut remaining: Vec<usize> = input.service_order();
    let mut out = Vec::new();
    while !remaining.is_empty() && !free.is_empty() {
        // Globally cheapest placement among remaining jobs × free PUs.
        let mut best: Option<(usize, usize, f64)> = None; // (queue idx, pu, cost)
        for &qi in &remaining {
            for opt in &input.queue[qi].options {
                if !free.contains(&opt.pu_idx) {
                    continue;
                }
                let cost = scorer.score(&virt, opt, probe);
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((qi, opt.pu_idx, cost));
                }
            }
        }
        let Some((qi, pu, cost)) = best else { break };
        let job = &input.queue[qi];
        remaining.retain(|&r| r != qi);
        // Would this job rather wait for a busy PU to free?
        let wait = backlog.best_wait(job, &free);
        if wait.is_some_and(|(_, w)| w < cost) {
            backlog.charge_wait(job, &free);
            continue; // job waits; try the next-cheapest pairing
        }
        let opt = job.option_for(pu).expect("cost came from this option");
        let first = &opt.phases[0];
        virt.push(VirtualResident {
            pu_idx: pu,
            kernel: first.kernel.clone(),
            demand_gbps: opt.mean_demand_gbps(),
            standalone_rate: first.standalone_rate,
            remaining_std_cycles: opt.standalone_cycles,
        });
        backlog.charge(pu, opt.standalone_cycles);
        free.retain(|p| *p != pu);
        out.push(Assignment {
            job_id: job.job_id,
            pu_idx: pu,
            predicted_cost: cost,
        });
    }
    out
}

/// Scores placements with per-PU PCCS slowdown models.
struct ModelScorer<'a> {
    models: &'a [Box<dyn SlowdownModel>],
}

impl PlacementScorer for ModelScorer<'_> {
    fn score(
        &mut self,
        virt: &[VirtualResident],
        opt: &PlacementOption,
        _probe: &mut dyn Probe,
    ) -> f64 {
        let external: f64 = virt.iter().map(|r| r.demand_gbps).sum();
        let model = &self.models[opt.pu_idx];
        // Predicted finish time of the candidate: contended while residents
        // last, standalone after.
        let mut contended = 0.0;
        let mut standalone = 0.0;
        for ph in &opt.phases {
            let rs = model
                .relative_speed_pct(ph.demand_gbps, external)
                .max(MIN_RS_PCT);
            let std = ph.work_lines / ph.standalone_rate.max(MIN_RATE);
            contended += std * 100.0 / rs;
            standalone += std;
        }
        let finish = windowed_finish(contended, standalone, resident_window(virt));
        // Predicted delay inflicted on each resident while the candidate
        // overlaps it.
        let added = opt.mean_demand_gbps();
        let mut delay = 0.0;
        for r in virt {
            let m = &self.models[r.pu_idx];
            let ext_old = (external - r.demand_gbps).max(0.0);
            let rs_old = m.relative_speed_pct(r.demand_gbps, ext_old).max(MIN_RS_PCT);
            let rs_new = m
                .relative_speed_pct(r.demand_gbps, ext_old + added)
                .max(MIN_RS_PCT);
            let overlap = r.remaining_std_cycles.min(finish);
            delay += (overlap * (100.0 / rs_new - 100.0 / rs_old)).max(0.0);
        }
        finish + delay
    }
}

/// The PCCS-guided policy: placements minimize predicted completion cost
/// (candidate finish plus resident delays) under the per-PU slowdown
/// models.
pub struct PccsPolicy {
    models: Vec<Box<dyn SlowdownModel>>,
}

impl std::fmt::Debug for PccsPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PccsPolicy")
            .field("models", &self.models.len())
            .finish()
    }
}

impl PccsPolicy {
    /// A policy from one slowdown model per PU, indexed like
    /// [`SocConfig::pus`].
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<Box<dyn SlowdownModel>>) -> Self {
        assert!(!models.is_empty(), "one model per PU required");
        Self { models }
    }

    /// The policy armed with one model per PU *calibrated against the
    /// co-run simulator* (the paper's §4.1 offline profiling step): a
    /// calibrator/pressure sweep per PU, folded into a three-region model
    /// by `ModelBuilder`. This is the constructor every entry point should
    /// use — predictions then describe the platform being scheduled.
    ///
    /// # Panics
    ///
    /// Panics if a calibration sweep fails validation — on the bundled SoC
    /// presets it does not.
    pub fn calibrated(soc: &SocConfig, cfg: &CalibrationConfig) -> Self {
        let models = soc
            .pus
            .iter()
            .enumerate()
            .map(|(pu_idx, _)| {
                let pressure = pressure_pu_for(soc, pu_idx);
                let (model, _) = build_model(soc, pu_idx, pressure, cfg).unwrap_or_else(|e| {
                    panic!("calibration failed for {}/PU{pu_idx}: {e}", soc.name)
                });
                let boxed: Box<dyn SlowdownModel> = Box::new(model);
                boxed
            })
            .collect();
        Self::new(models)
    }

    /// The policy armed with the paper's published Xavier model parameters
    /// (Table 7), mapped to the SoC's PUs by class. Those parameters
    /// describe the real Jetson AGX Xavier; against the repository's
    /// simulator, [`PccsPolicy::calibrated`] is the faithful choice.
    pub fn paper_xavier(soc: &SocConfig) -> Self {
        let models = soc
            .pus
            .iter()
            .map(|pu| {
                let m: Box<dyn SlowdownModel> = Box::new(match pu.kind {
                    PuKind::Cpu => PccsModel::xavier_cpu_paper(),
                    PuKind::Gpu => PccsModel::xavier_gpu_paper(),
                    PuKind::Dla => PccsModel::xavier_dla_paper(),
                });
                m
            })
            .collect();
        Self::new(models)
    }
}

/// The paper's pressure-PU convention (§4.1.1): external pressure for the
/// CPU model comes from the GPU; for every other PU, from the CPU.
fn pressure_pu_for(soc: &SocConfig, target_pu: usize) -> usize {
    let cpu = soc.pu_index("CPU").expect("SoC has a CPU");
    if target_pu == cpu {
        soc.pu_index("GPU").expect("SoC has a GPU")
    } else {
        cpu
    }
}

/// The calibration sweep used when a policy is constructed through
/// [`all_policies`] or [`policy_by_name`]: the paper's demand/pressure
/// grids at a shortened horizon, single repeat — accurate enough to rank
/// placements, cheap enough for interactive use.
pub fn default_calibration() -> CalibrationConfig {
    CalibrationConfig {
        horizon: 20_000,
        repeats: 1,
        ..CalibrationConfig::default()
    }
}

impl Policy for PccsPolicy {
    fn name(&self) -> &'static str {
        "pccs"
    }

    fn region_label(&self, pu_idx: usize, demand_gbps: f64) -> &'static str {
        self.models
            .get(pu_idx)
            .map_or("-", |m| m.region_label(demand_gbps))
    }

    fn decide(&mut self, input: &DecisionInput, probe: &mut dyn Probe) -> Vec<Assignment> {
        for slot in &input.slots {
            assert!(
                slot.pu_idx < self.models.len(),
                "no model for PU {}",
                slot.pu_idx
            );
        }
        let mut scorer = ModelScorer {
            models: &self.models,
        };
        guided_decide(input, probe, &mut scorer)
    }
}

/// Scores placements by short co-run simulations.
#[derive(Debug, Default)]
struct SimScorer;

impl PlacementScorer for SimScorer {
    fn score(
        &mut self,
        virt: &[VirtualResident],
        opt: &PlacementOption,
        probe: &mut dyn Probe,
    ) -> f64 {
        let base: Vec<(usize, KernelDesc)> =
            virt.iter().map(|r| (r.pu_idx, r.kernel.clone())).collect();
        let base_rates = if base.is_empty() {
            BTreeMap::new()
        } else {
            probe.corun_rates(&base)
        };
        // Measured finish time of the candidate: contended while residents
        // last, standalone after.
        let mut contended = 0.0;
        let mut standalone = 0.0;
        let mut first_rates = None;
        for (i, ph) in opt.phases.iter().enumerate() {
            let mut placements = base.clone();
            placements.push((opt.pu_idx, ph.kernel.clone()));
            let rates = probe.corun_rates(&placements);
            if i == 0 {
                first_rates = Some(rates.clone());
            }
            let rate = rates.get(&opt.pu_idx).copied().unwrap_or(0.0).max(MIN_RATE);
            contended += ph.work_lines / rate;
            standalone += ph.work_lines / ph.standalone_rate.max(MIN_RATE);
        }
        let finish = windowed_finish(contended, standalone, resident_window(virt));
        // Measured delay inflicted on the residents while the candidate's
        // first phase overlaps them.
        let first_rates = first_rates.expect("options have at least one phase");
        let mut delay = 0.0;
        for r in virt {
            let rate_old = base_rates
                .get(&r.pu_idx)
                .copied()
                .unwrap_or(r.standalone_rate)
                .max(MIN_RATE);
            let rate_new = first_rates
                .get(&r.pu_idx)
                .copied()
                .unwrap_or(rate_old)
                .max(MIN_RATE);
            let slow_old = r.standalone_rate / rate_old;
            let slow_new = r.standalone_rate / rate_new;
            let overlap = r.remaining_std_cycles.min(finish);
            delay += (overlap * (slow_new - slow_old)).max(0.0);
        }
        finish + delay
    }
}

/// The oracle: the same decision structure as [`PccsPolicy`], with costs
/// measured by short co-run simulations of every candidate placement —
/// scheduling with perfect (if expensively obtained) contention knowledge.
#[derive(Debug, Default)]
pub struct OraclePolicy;

impl Policy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn decide(&mut self, input: &DecisionInput, probe: &mut dyn Probe) -> Vec<Assignment> {
        let mut scorer = SimScorer;
        guided_decide(input, probe, &mut scorer)
    }
}

/// All four bundled policies, in report order: the two oblivious baselines,
/// then the model-guided policy, then the oracle.
pub fn all_policies(soc: &SocConfig) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(RoundRobin::default()),
        Box::new(ObliviousGreedy),
        Box::new(PccsPolicy::calibrated(soc, &default_calibration())),
        Box::new(OraclePolicy),
    ]
}

/// A policy by CLI name (`round-robin`/`rr`, `greedy`, `pccs`, `oracle`).
pub fn policy_by_name(soc: &SocConfig, name: &str) -> Option<Box<dyn Policy>> {
    match name.to_ascii_lowercase().as_str() {
        "round-robin" | "rr" => Some(Box::new(RoundRobin::default())),
        "greedy" | "oblivious" => Some(Box::new(ObliviousGreedy)),
        "pccs" => Some(Box::new(PccsPolicy::calibrated(
            soc,
            &default_calibration(),
        ))),
        "oracle" => Some(Box::new(OraclePolicy)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoProbe;
    impl Probe for NoProbe {
        fn corun_rates(&mut self, placements: &[(usize, KernelDesc)]) -> BTreeMap<usize, f64> {
            // A crude stand-in: every placed PU sustains rate 1 divided by
            // the number of co-runners (pure bandwidth sharing).
            let n = placements.len() as f64;
            placements.iter().map(|(pu, _)| (*pu, 1.0 / n)).collect()
        }
    }

    fn slot(pu_idx: usize, kind: PuKind, free: bool) -> PuSlot {
        PuSlot {
            pu_idx,
            kind,
            name: format!("{kind}"),
            free,
            est_free_in: if free { 0.0 } else { 10_000.0 },
        }
    }

    fn pending(job_id: usize, arrival: u64, options: Vec<(usize, f64, f64)>) -> PendingJob {
        PendingJob {
            job_id,
            name: format!("job{job_id}"),
            arrival,
            deadline: None,
            priority: 0,
            options: options
                .into_iter()
                .map(|(pu_idx, cycles, demand)| PlacementOption {
                    pu_idx,
                    standalone_cycles: cycles,
                    phases: vec![PhaseEstimate {
                        kernel: KernelDesc::memory_streaming("k", 1.0),
                        work_lines: cycles,
                        standalone_rate: 1.0,
                        demand_gbps: demand,
                    }],
                })
                .collect(),
        }
    }

    fn two_pu_input(queue: Vec<PendingJob>) -> DecisionInput {
        DecisionInput {
            now: 0.0,
            slots: vec![slot(0, PuKind::Cpu, true), slot(1, PuKind::Gpu, true)],
            queue,
            residents: vec![],
        }
    }

    #[test]
    fn round_robin_cycles_pus() {
        let mut rr = RoundRobin::default();
        let input = two_pu_input(vec![
            pending(0, 0, vec![(0, 100.0, 10.0), (1, 100.0, 10.0)]),
            pending(1, 1, vec![(0, 100.0, 10.0), (1, 100.0, 10.0)]),
        ]);
        let a = rr.decide(&input, &mut NoProbe);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0].pu_idx, a[1].pu_idx);
    }

    #[test]
    fn greedy_picks_fastest_standalone() {
        let mut g = ObliviousGreedy;
        let input = two_pu_input(vec![pending(0, 0, vec![(0, 900.0, 10.0), (1, 80.0, 60.0)])]);
        let a = g.decide(&input, &mut NoProbe);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pu_idx, 1, "GPU is 10x faster standalone");
    }

    #[test]
    fn greedy_waits_for_a_much_faster_busy_pu() {
        let mut g = ObliviousGreedy;
        let input = DecisionInput {
            now: 0.0,
            slots: vec![
                slot(0, PuKind::Cpu, true),
                PuSlot {
                    est_free_in: 50.0,
                    ..slot(1, PuKind::Gpu, false)
                },
            ],
            queue: vec![pending(0, 0, vec![(0, 10_000.0, 10.0), (1, 80.0, 60.0)])],
            residents: vec![],
        };
        let a = g.decide(&input, &mut NoProbe);
        assert!(a.is_empty(), "waiting 50 cycles beats 10k on the CPU");
    }

    #[test]
    fn backlog_makes_successive_waiters_queue_deeper() {
        // Two jobs that would both wait on the same busy GPU: the second
        // must see the first's standalone time added to the wait estimate.
        let input = DecisionInput {
            now: 0.0,
            slots: vec![PuSlot {
                est_free_in: 100.0,
                ..slot(1, PuKind::Gpu, false)
            }],
            queue: vec![
                pending(0, 0, vec![(1, 80.0, 10.0)]),
                pending(1, 1, vec![(1, 80.0, 10.0)]),
            ],
            residents: vec![],
        };
        let mut backlog = Backlog::new(&input);
        assert_eq!(backlog.best_wait(&input.queue[0], &[]).unwrap().1, 180.0);
        backlog.charge_wait(&input.queue[0], &[]);
        assert_eq!(backlog.best_wait(&input.queue[1], &[]).unwrap().1, 260.0);
    }

    #[test]
    fn windowed_finish_interpolates() {
        // Entirely inside the contention window.
        assert!((windowed_finish(100.0, 80.0, 200.0) - 100.0).abs() < 1e-12);
        // Half the work contended at 2x slowdown, half standalone.
        let f = windowed_finish(200.0, 100.0, 100.0);
        assert!((f - 150.0).abs() < 1e-12);
        // No residents: standalone.
        assert!((windowed_finish(100.0, 100.0, 0.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn pccs_avoids_crowding_a_saturated_bus() {
        // Two long memory hogs and two free PUs: the PCCS policy should
        // place the first and let the second wait out the heavy contention
        // it would cause. The oblivious greedy packs both immediately.
        let hog = |id: usize| pending(id, 0, vec![(0, 10_000.0, 120.0), (1, 10_000.0, 120.0)]);
        let input = two_pu_input(vec![hog(0), hog(1)]);
        let mut pccs = PccsPolicy::paper_xavier(&SocConfig::xavier());
        let a = pccs.decide(&input, &mut NoProbe);
        assert_eq!(a.len(), 1, "second hog should wait, got {a:?}");
        let mut g = ObliviousGreedy;
        let b = g.decide(&input, &mut NoProbe);
        assert_eq!(b.len(), 2, "greedy is oblivious and packs both");
    }

    #[test]
    fn oracle_uses_probe_measurements() {
        let input = two_pu_input(vec![pending(
            0,
            0,
            vec![(0, 500.0, 20.0), (1, 500.0, 20.0)],
        )]);
        let mut oracle = OraclePolicy;
        let a = oracle.decide(&input, &mut NoProbe);
        assert_eq!(a.len(), 1);
        // Sole job, sole resident set: measured rate 1.0 → cost = work/rate.
        assert!((a[0].predicted_cost - 500.0).abs() < 1e-6);
    }

    #[test]
    fn priority_outranks_arrival() {
        let mut early = pending(0, 0, vec![(1, 100.0, 10.0)]);
        early.priority = 0;
        let mut urgent = pending(1, 5, vec![(1, 100.0, 10.0)]);
        urgent.priority = 1;
        let input = two_pu_input(vec![early, urgent]);
        let order = input.service_order();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn mean_demand_weights_by_phase_time() {
        let opt = PlacementOption {
            pu_idx: 0,
            standalone_cycles: 300.0,
            phases: vec![
                PhaseEstimate {
                    kernel: KernelDesc::memory_streaming("a", 1.0),
                    work_lines: 100.0,
                    standalone_rate: 1.0,
                    demand_gbps: 10.0,
                },
                PhaseEstimate {
                    kernel: KernelDesc::memory_streaming("b", 1.0),
                    work_lines: 200.0,
                    standalone_rate: 1.0,
                    demand_gbps: 70.0,
                },
            ],
        };
        // (10*100 + 70*200) / 300 = 50.
        assert!((opt.mean_demand_gbps() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn policy_by_name_resolves_aliases() {
        let soc = SocConfig::xavier();
        for name in ["rr", "round-robin", "greedy", "pccs", "oracle"] {
            assert!(policy_by_name(&soc, name).is_some(), "{name}");
        }
        assert!(policy_by_name(&soc, "fifo").is_none());
    }
}
