//! Jobs: units of schedulable work.
//!
//! A job is a sequence of execution phases (e.g. a DNN's convolutional body
//! followed by its fully connected head), each characterized by a kernel
//! descriptor and an amount of work in 64-byte lines. Jobs carry arrival
//! times, optional deadlines, priorities, and the set of PU classes they
//! can run on — a DNN can fall back from the DLA to the GPU or CPU, while
//! a Rodinia kernel has no DLA implementation.

use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use pccs_workloads::layers::LayerGraph;
use pccs_workloads::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// The kernel a phase runs, per PU class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseKernels {
    /// The same kernel regardless of the PU class (DNN layers: operational
    /// intensity is a property of the computation, the speed difference
    /// comes from the PU's compute rate).
    Uniform(KernelDesc),
    /// A distinct implementation per PU class (Rodinia: the CPU and GPU
    /// versions are different programs with different intensities).
    PerPu(Vec<(PuKind, KernelDesc)>),
}

/// One execution phase of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPhase {
    /// Phase label for reports (`"conv"`, `"fc"`, …).
    pub label: String,
    /// Work in 64-byte lines of memory traffic.
    pub work_lines: f64,
    /// The kernel(s) realizing the phase.
    pub kernels: PhaseKernels,
}

impl JobPhase {
    /// A phase that runs the same kernel on every PU class.
    ///
    /// # Panics
    ///
    /// Panics if `work_lines` is not positive.
    pub fn uniform(label: impl Into<String>, work_lines: f64, kernel: KernelDesc) -> Self {
        assert!(work_lines > 0.0, "phase work must be positive");
        Self {
            label: label.into(),
            work_lines,
            kernels: PhaseKernels::Uniform(kernel),
        }
    }

    /// A phase with per-PU-class kernel implementations.
    ///
    /// # Panics
    ///
    /// Panics if `work_lines` is not positive or no kernels are given.
    pub fn per_pu(
        label: impl Into<String>,
        work_lines: f64,
        kernels: Vec<(PuKind, KernelDesc)>,
    ) -> Self {
        assert!(work_lines > 0.0, "phase work must be positive");
        assert!(!kernels.is_empty(), "at least one kernel required");
        Self {
            label: label.into(),
            work_lines,
            kernels: PhaseKernels::PerPu(kernels),
        }
    }

    /// The kernel this phase runs on a PU of class `kind`, if it has one.
    pub fn kernel_for(&self, kind: PuKind) -> Option<&KernelDesc> {
        match &self.kernels {
            PhaseKernels::Uniform(k) => Some(k),
            PhaseKernels::PerPu(ks) => ks.iter().find(|(p, _)| *p == kind).map(|(_, k)| k),
        }
    }
}

/// A schedulable job: phases plus queueing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id within a mix.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// Arrival time in memory cycles.
    pub arrival: u64,
    /// Completion deadline in memory cycles, if any.
    pub deadline: Option<u64>,
    /// Larger runs earlier among contemporaries (0 = default).
    pub priority: u32,
    /// PU classes the job may be placed on.
    pub eligible: Vec<PuKind>,
    /// Execution phases, in order.
    pub phases: Vec<JobPhase>,
}

impl Job {
    /// A job from explicit phases, eligible on all PU classes.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(id: usize, name: impl Into<String>, arrival: u64, phases: Vec<JobPhase>) -> Self {
        assert!(!phases.is_empty(), "a job needs at least one phase");
        Self {
            id,
            name: name.into(),
            arrival,
            deadline: None,
            priority: 0,
            eligible: vec![PuKind::Cpu, PuKind::Gpu, PuKind::Dla],
            phases,
        }
    }

    /// A DNN inference job: the network's conv body and FC head become the
    /// phases (via [`LayerGraph::phase_split`]), with `work_scale`
    /// inferences' worth of traffic. Eligible on every PU class — the
    /// scheduler decides whether the DLA, GPU, or CPU runs it.
    ///
    /// # Panics
    ///
    /// Panics if `work_scale` is not positive.
    pub fn dnn(id: usize, graph: &LayerGraph, arrival: u64, work_scale: f64) -> Self {
        assert!(work_scale > 0.0, "work scale must be positive");
        let phases = graph
            .phase_split()
            .into_iter()
            .map(|(kernel, bytes)| {
                let label = kernel.name.rsplit('/').next().unwrap_or("phase").to_owned();
                JobPhase::uniform(label, bytes * work_scale / 64.0, kernel)
            })
            .collect();
        Self::new(id, graph.name.clone(), arrival, phases)
    }

    /// A Rodinia job: one phase whose kernel differs per PU class, eligible
    /// on the CPU and GPU only (the DLA is a fixed-function engine and does
    /// not run Rodinia in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `work_lines` is not positive.
    pub fn rodinia(id: usize, bench: RodiniaBenchmark, arrival: u64, work_lines: f64) -> Self {
        let kernels = vec![
            (PuKind::Cpu, bench.kernel(PuKind::Cpu)),
            (PuKind::Gpu, bench.kernel(PuKind::Gpu)),
        ];
        let phase = JobPhase::per_pu(bench.label(), work_lines, kernels);
        let mut job = Self::new(id, bench.label(), arrival, vec![phase]);
        job.eligible = vec![PuKind::Cpu, PuKind::Gpu];
        job
    }

    /// Sets a completion deadline.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Restricts eligibility to the given PU classes.
    ///
    /// # Panics
    ///
    /// Panics if `eligible` is empty.
    pub fn with_eligible(mut self, eligible: Vec<PuKind>) -> Self {
        assert!(!eligible.is_empty(), "a job must be eligible somewhere");
        self.eligible = eligible;
        self
    }

    /// Whether the job can run on a PU of class `kind`: the class is
    /// eligible and every phase has a kernel for it.
    pub fn runs_on(&self, kind: PuKind) -> bool {
        self.eligible.contains(&kind) && self.phases.iter().all(|p| p.kernel_for(kind).is_some())
    }

    /// Total work across phases, in lines.
    pub fn total_lines(&self) -> f64 {
        self.phases.iter().map(|p| p.work_lines).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnn_job_has_conv_and_fc_phases() {
        let job = Job::dnn(0, &LayerGraph::vgg19(), 0, 0.01);
        assert_eq!(job.phases.len(), 2);
        assert_eq!(job.phases[0].label, "conv");
        assert_eq!(job.phases[1].label, "fc");
        assert!(job.runs_on(PuKind::Dla));
        assert!(job.runs_on(PuKind::Cpu));
        let expected = LayerGraph::vgg19().total_bytes() * 0.01 / 64.0;
        assert!((job.total_lines() - expected).abs() < 1e-6);
    }

    #[test]
    fn rodinia_job_is_cpu_gpu_only() {
        let job = Job::rodinia(1, RodiniaBenchmark::Streamcluster, 100, 5_000.0);
        assert!(job.runs_on(PuKind::Cpu));
        assert!(job.runs_on(PuKind::Gpu));
        assert!(!job.runs_on(PuKind::Dla));
        let cpu = job.phases[0].kernel_for(PuKind::Cpu).unwrap();
        let gpu = job.phases[0].kernel_for(PuKind::Gpu).unwrap();
        assert!(gpu.ops_per_byte > cpu.ops_per_byte);
    }

    #[test]
    fn builder_setters_apply() {
        let job = Job::rodinia(2, RodiniaBenchmark::Bfs, 0, 1_000.0)
            .with_deadline(9_999)
            .with_priority(3)
            .with_eligible(vec![PuKind::Gpu]);
        assert_eq!(job.deadline, Some(9_999));
        assert_eq!(job.priority, 3);
        assert!(!job.runs_on(PuKind::Cpu));
        assert!(job.runs_on(PuKind::Gpu));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_job_rejected() {
        let _ = Job::new(0, "empty", 0, vec![]);
    }
}
