//! The scheduling engine: replays a job stream against the co-run
//! simulator under a placement policy.
//!
//! Execution is quasi-static: placements are fixed between scheduling
//! events (arrivals, phase boundaries, completions), so the engine probes
//! the co-run simulator once per event for the sustained work rate of every
//! resident PU and advances time analytically to the next event. All rate
//! probes go through a shared cache keyed by the placement set, which is
//! what makes the oracle policy affordable: its candidate probes and the
//! engine's own measurements share the same simulations.

use crate::error::SchedError;
use crate::job::Job;
use crate::policy::{
    DecisionInput, PendingJob, PhaseEstimate, PlacementOption, Policy, Probe, PuSlot, Resident,
};
use crate::report::{DecisionRecord, JobOutcome, ScheduleReport};
use pccs_soc::corun::{CoRunConfig, CoRunSim, Placement};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_telemetry::audit::{self, AuditRecord};
use pccs_telemetry::{metrics, Profiler, TraceLog};
use std::collections::BTreeMap;

/// Floor for measured rates, lines per cycle.
const MIN_RATE: f64 = 1e-9;

/// Work below this many lines counts as finished.
const WORK_EPSILON: f64 = 1e-6;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Measurement configuration of the rate probes (short horizons keep
    /// decisions cheap; the cache keeps them from repeating).
    pub probe: CoRunConfig,
    /// Upper bound on scheduling events before the engine declares a
    /// livelock (defensive; never reached by the bundled policies).
    pub max_steps: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            probe: CoRunConfig::probe(),
            max_steps: 100_000,
        }
    }
}

impl SchedConfig {
    /// A faster preset for tests and smoke runs: shorter probe horizon.
    pub fn quick() -> Self {
        Self {
            probe: CoRunConfig::probe().with_horizon(8_000),
            ..Self::default()
        }
    }
}

/// The engine's probe: co-run rate measurements through [`CoRunSim`],
/// cached by placement set.
#[derive(Debug)]
pub struct SimProbe<'a> {
    soc: &'a SocConfig,
    config: CoRunConfig,
    corun_cache: BTreeMap<String, BTreeMap<usize, f64>>,
    standalone_cache: BTreeMap<String, (f64, f64)>,
}

impl<'a> SimProbe<'a> {
    /// A probe against `soc` at the given measurement fidelity.
    pub fn new(soc: &'a SocConfig, config: CoRunConfig) -> Self {
        Self {
            soc,
            config,
            corun_cache: BTreeMap::new(),
            standalone_cache: BTreeMap::new(),
        }
    }

    fn kernel_sig(kernel: &KernelDesc) -> String {
        format!(
            "{}|{:.5}|{:.4}|{:.4}|{:.4}",
            kernel.name,
            kernel.ops_per_byte,
            kernel.row_locality,
            kernel.write_fraction,
            kernel.parallel_efficiency
        )
    }

    /// Standalone (work rate in lines/cycle, bandwidth demand in GB/s) of
    /// `kernel` on PU `pu_idx`; cached.
    pub fn standalone(&mut self, pu_idx: usize, kernel: &KernelDesc) -> (f64, f64) {
        let key = format!("{pu_idx}@{}", Self::kernel_sig(kernel));
        if let Some(hit) = self.standalone_cache.get(&key) {
            return *hit;
        }
        let profile = CoRunSim::standalone_with(self.soc, pu_idx, kernel, &self.config);
        let result = (profile.lines_per_cycle, profile.bw_gbps);
        self.standalone_cache.insert(key, result);
        result
    }
}

impl Probe for SimProbe<'_> {
    fn corun_rates(&mut self, placements: &[(usize, KernelDesc)]) -> BTreeMap<usize, f64> {
        let mut parts: Vec<String> = placements
            .iter()
            .map(|(pu, k)| format!("{pu}@{}", Self::kernel_sig(k)))
            .collect();
        parts.sort_unstable();
        let key = parts.join(";");
        if let Some(hit) = self.corun_cache.get(&key) {
            return hit.clone();
        }
        let mut sim = CoRunSim::with_config(self.soc, self.config.clone());
        for (pu, kernel) in placements {
            sim.place(Placement::kernel(*pu, kernel.clone()));
        }
        let out = sim.execute();
        let rates: BTreeMap<usize, f64> = out
            .per_pu
            .iter()
            .map(|(pu, r)| (*pu, r.lines_per_cycle))
            .collect();
        self.corun_cache.insert(key, rates.clone());
        rates
    }
}

/// A job in flight. Carries the placement decision's predicted cost and
/// provenance so completion can resolve the prediction into an
/// audit-ledger pair.
#[derive(Debug)]
struct Running {
    job: Job,
    pu_idx: usize,
    phase: usize,
    remaining_lines: f64,
    start: f64,
    predicted_cost: f64,
    placed_by: String,
    region: String,
}

impl Running {
    fn kernel<'k>(&'k self, soc: &SocConfig) -> &'k KernelDesc {
        self.job.phases[self.phase]
            .kernel_for(soc.pus[self.pu_idx].kind)
            .expect("placement was validated against eligibility")
    }
}

/// Standalone execution time of `job` on PU `pu_idx`, summed over phases.
fn standalone_cycles(probe: &mut SimProbe, soc: &SocConfig, job: &Job, pu_idx: usize) -> f64 {
    job.phases
        .iter()
        .map(|ph| {
            let kernel = ph
                .kernel_for(soc.pus[pu_idx].kind)
                .expect("caller checked eligibility");
            let (rate, _) = probe.standalone(pu_idx, kernel);
            ph.work_lines / rate.max(MIN_RATE)
        })
        .sum()
}

fn build_input(
    probe: &mut SimProbe,
    soc: &SocConfig,
    now: f64,
    queue: &[Job],
    running: &[Running],
) -> DecisionInput {
    let slots: Vec<PuSlot> = soc
        .pus
        .iter()
        .enumerate()
        .map(|(pu_idx, pu)| {
            let resident = running.iter().find(|r| r.pu_idx == pu_idx);
            let est_free_in = resident.map_or(0.0, |r| {
                let kernel = r.kernel(soc);
                let (rate, _) = probe.standalone(pu_idx, kernel);
                let mut left = r.remaining_lines / rate.max(MIN_RATE);
                for ph in &r.job.phases[r.phase + 1..] {
                    let k = ph
                        .kernel_for(pu.kind)
                        .expect("placement was validated against eligibility");
                    let (rate, _) = probe.standalone(pu_idx, k);
                    left += ph.work_lines / rate.max(MIN_RATE);
                }
                left
            });
            PuSlot {
                pu_idx,
                kind: pu.kind,
                name: pu.name.clone(),
                free: resident.is_none(),
                est_free_in,
            }
        })
        .collect();
    let queue: Vec<PendingJob> = queue
        .iter()
        .map(|job| {
            let options: Vec<PlacementOption> = soc
                .pus
                .iter()
                .enumerate()
                .filter(|(_, pu)| job.runs_on(pu.kind))
                .map(|(pu_idx, pu)| {
                    let phases: Vec<PhaseEstimate> = job
                        .phases
                        .iter()
                        .map(|ph| {
                            let kernel = ph.kernel_for(pu.kind).expect("runs_on checked").clone();
                            let (rate, bw) = probe.standalone(pu_idx, &kernel);
                            PhaseEstimate {
                                kernel,
                                work_lines: ph.work_lines,
                                standalone_rate: rate,
                                demand_gbps: bw,
                            }
                        })
                        .collect();
                    let standalone_cycles = phases
                        .iter()
                        .map(|p| p.work_lines / p.standalone_rate.max(MIN_RATE))
                        .sum();
                    PlacementOption {
                        pu_idx,
                        standalone_cycles,
                        phases,
                    }
                })
                .collect();
            PendingJob {
                job_id: job.id,
                name: job.name.clone(),
                arrival: job.arrival,
                deadline: job.deadline,
                priority: job.priority,
                options,
            }
        })
        .collect();
    let residents: Vec<Resident> = running
        .iter()
        .map(|r| {
            let kernel = r.kernel(soc).clone();
            let (rate, bw) = probe.standalone(r.pu_idx, &kernel);
            Resident {
                pu_idx: r.pu_idx,
                job_id: r.job.id,
                kernel,
                demand_gbps: bw,
                standalone_rate: rate,
                remaining_lines: r.remaining_lines,
            }
        })
        .collect();
    DecisionInput {
        now,
        slots,
        queue,
        residents,
    }
}

/// Replays `jobs` on `soc` under `policy` and reports the schedule.
///
/// The engine guarantees progress: when a policy declines to place anything
/// while the whole machine is idle, the longest-waiting job is placed on
/// its fastest standalone PU (recorded with policy `"forced"`).
///
/// # Errors
///
/// Returns [`SchedError::DuplicateJobId`] when two jobs share an id, and
/// [`SchedError::UnschedulableJob`] when a job cannot run on any PU of
/// `soc` (e.g. a DLA-only job on the Snapdragon preset).
///
/// # Panics
///
/// Panics if the engine exceeds [`SchedConfig::max_steps`] without
/// finishing (defensive livelock bound; never reached by bundled policies).
pub fn run_schedule(
    soc: &SocConfig,
    mix_name: &str,
    jobs: &[Job],
    policy: &mut dyn Policy,
    cfg: &SchedConfig,
) -> Result<ScheduleReport, SchedError> {
    let mut ids: Vec<usize> = jobs.iter().map(|j| j.id).collect();
    ids.sort_unstable();
    for w in ids.windows(2) {
        if w[0] == w[1] {
            return Err(SchedError::DuplicateJobId { id: w[0] });
        }
    }
    for job in jobs {
        if !soc.pus.iter().any(|pu| job.runs_on(pu.kind)) {
            return Err(SchedError::UnschedulableJob {
                job: job.name.clone(),
                soc: soc.name.clone(),
            });
        }
    }
    let _prof = Profiler::scope("sched.replay");
    let mut span = TraceLog::span("sched.run");
    span.counter("jobs", jobs.len() as f64);

    let mut probe = SimProbe::new(soc, cfg.probe.clone());
    let mut arrivals: Vec<Job> = jobs.to_vec();
    arrivals.sort_by_key(|j| (j.arrival, j.id));
    let mut queue: Vec<Job> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut decisions: Vec<DecisionRecord> = Vec::new();
    let mut now = 0.0_f64;
    let mut steps = 0usize;

    while !(arrivals.is_empty() && queue.is_empty() && running.is_empty()) {
        steps += 1;
        assert!(
            steps <= cfg.max_steps,
            "scheduler exceeded {} events without finishing (policy {})",
            cfg.max_steps,
            policy.name()
        );
        // Admit arrivals due by now.
        while arrivals.first().is_some_and(|j| (j.arrival as f64) <= now) {
            queue.push(arrivals.remove(0));
        }
        // Let the policy place onto free PUs.
        let any_free = soc
            .pus
            .iter()
            .enumerate()
            .any(|(i, _)| running.iter().all(|r| r.pu_idx != i));
        if !queue.is_empty() && any_free {
            let input = build_input(&mut probe, soc, now, &queue, &running);
            let assignments = policy.decide(&input, &mut probe);
            let mut placed_any = false;
            for a in assignments {
                let Some(pos) = queue.iter().position(|j| j.id == a.job_id) else {
                    continue; // unknown job; ignore
                };
                let pu_free = running.iter().all(|r| r.pu_idx != a.pu_idx);
                let valid = a.pu_idx < soc.pus.len()
                    && pu_free
                    && queue[pos].runs_on(soc.pus[a.pu_idx].kind);
                if !valid {
                    continue; // policies may only place eligible jobs on free PUs
                }
                let job = queue.remove(pos);
                decisions.push(DecisionRecord {
                    at_cycle: now,
                    policy: policy.name().to_owned(),
                    job: job.name.clone(),
                    job_id: job.id,
                    pu: soc.pus[a.pu_idx].name.clone(),
                    pu_idx: a.pu_idx,
                    predicted_cost: a.predicted_cost,
                    queue_depth: queue.len(),
                });
                let first_kernel = job.phases[0]
                    .kernel_for(soc.pus[a.pu_idx].kind)
                    .expect("eligibility validated above")
                    .clone();
                let (_, demand) = probe.standalone(a.pu_idx, &first_kernel);
                let region = policy.region_label(a.pu_idx, demand).to_owned();
                let remaining_lines = job.phases[0].work_lines;
                running.push(Running {
                    job,
                    pu_idx: a.pu_idx,
                    phase: 0,
                    remaining_lines,
                    start: now,
                    predicted_cost: a.predicted_cost,
                    placed_by: policy.name().to_owned(),
                    region,
                });
                placed_any = true;
            }
            // Progress guarantee: an idle machine with waiting work must
            // run something.
            if running.is_empty() && !placed_any && !queue.is_empty() {
                let input = build_input(&mut probe, soc, now, &queue, &running);
                let qi = input.service_order()[0];
                let job_id = input.queue[qi].job_id;
                let opt = input.queue[qi]
                    .options
                    .iter()
                    .min_by(|a, b| a.standalone_cycles.total_cmp(&b.standalone_cycles))
                    .expect("eligibility was validated up front");
                let pu_idx = opt.pu_idx;
                let cost = opt.standalone_cycles;
                let pos = queue
                    .iter()
                    .position(|j| j.id == job_id)
                    .expect("job is queued");
                let job = queue.remove(pos);
                decisions.push(DecisionRecord {
                    at_cycle: now,
                    policy: "forced".to_owned(),
                    job: job.name.clone(),
                    job_id: job.id,
                    pu: soc.pus[pu_idx].name.clone(),
                    pu_idx,
                    predicted_cost: cost,
                    queue_depth: queue.len(),
                });
                let first_kernel = job.phases[0]
                    .kernel_for(soc.pus[pu_idx].kind)
                    .expect("eligibility validated above")
                    .clone();
                let (_, demand) = probe.standalone(pu_idx, &first_kernel);
                let region = policy.region_label(pu_idx, demand).to_owned();
                let remaining_lines = job.phases[0].work_lines;
                running.push(Running {
                    job,
                    pu_idx,
                    phase: 0,
                    remaining_lines,
                    start: now,
                    predicted_cost: cost,
                    placed_by: "forced".to_owned(),
                    region,
                });
            }
        }
        if running.is_empty() {
            // Nothing to execute: jump to the next arrival.
            match arrivals.first() {
                Some(next) => now = now.max(next.arrival as f64),
                None => break,
            }
            continue;
        }
        // Measure the sustained rates of the current placement.
        let placements: Vec<(usize, KernelDesc)> = running
            .iter()
            .map(|r| (r.pu_idx, r.kernel(soc).clone()))
            .collect();
        let rates = probe.corun_rates(&placements);
        // Advance to the next event: a phase/job completion or an arrival.
        let mut dt = f64::INFINITY;
        for r in &running {
            let rate = rates.get(&r.pu_idx).copied().unwrap_or(0.0).max(MIN_RATE);
            dt = dt.min(r.remaining_lines / rate);
        }
        if let Some(next) = arrivals.first() {
            let until = next.arrival as f64 - now;
            if until > 0.0 {
                dt = dt.min(until);
            }
        }
        now += dt;
        let mut idx = 0;
        while idx < running.len() {
            let rate = rates
                .get(&running[idx].pu_idx)
                .copied()
                .unwrap_or(0.0)
                .max(MIN_RATE);
            running[idx].remaining_lines -= rate * dt;
            if running[idx].remaining_lines > WORK_EPSILON {
                idx += 1;
                continue;
            }
            // Phase boundary or completion.
            let r = &mut running[idx];
            if r.phase + 1 < r.job.phases.len() {
                r.phase += 1;
                r.remaining_lines = r.job.phases[r.phase].work_lines;
                idx += 1;
                continue;
            }
            let r = running.remove(idx);
            let standalone = standalone_cycles(&mut probe, soc, &r.job, r.pu_idx);
            let residence = (now - r.start).max(1.0);
            if audit::is_enabled() {
                audit::record(
                    AuditRecord::new("sched", "cycles", r.predicted_cost, residence)
                        .with_soc(&soc.slug())
                        .with_pu(&soc.pus[r.pu_idx].name)
                        .with_workload(&r.job.name)
                        .with_region(&r.region)
                        .with_policy(&r.placed_by)
                        .with_engine(cfg.probe.engine.label()),
                );
            }
            outcomes.push(JobOutcome {
                job_id: r.job.id,
                name: r.job.name.clone(),
                pu: soc.pus[r.pu_idx].name.clone(),
                pu_idx: r.pu_idx,
                arrival: r.job.arrival,
                start: r.start,
                finish: now,
                standalone_cycles: standalone,
                achieved_rs_pct: 100.0 * standalone / residence,
                deadline: r.job.deadline,
                missed_deadline: r.job.deadline.is_some_and(|d| now > d as f64),
            });
        }
    }
    span.counter("events", steps as f64);
    span.counter("decisions", decisions.len() as f64);
    let makespan = outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
    metrics::add("sched.jobs", jobs.len() as u64);
    metrics::add("sched.decisions", decisions.len() as u64);
    Ok(ScheduleReport {
        policy: policy.name().to_owned(),
        soc: soc.name.clone(),
        mix: mix_name.to_owned(),
        makespan,
        jobs: outcomes,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPhase;
    use crate::policy::{ObliviousGreedy, PccsPolicy, RoundRobin};
    use pccs_core::PccsModel;
    use pccs_soc::pu::PuKind;

    fn small_job(id: usize, arrival: u64, opb: f64, lines: f64) -> Job {
        Job::new(
            id,
            format!("job{id}"),
            arrival,
            vec![JobPhase::uniform(
                "main",
                lines,
                KernelDesc::memory_streaming(format!("k{id}"), opb),
            )],
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let soc = SocConfig::xavier();
        let jobs = vec![small_job(0, 0, 1.0, 4_000.0)];
        let mut policy = ObliviousGreedy;
        let r = run_schedule(&soc, "unit", &jobs, &mut policy, &SchedConfig::quick()).unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.decisions.len(), 1);
        assert!(r.makespan > 0.0);
        assert!(r.jobs[0].finish > r.jobs[0].start);
        // A sole resident suffers no contention.
        assert!(
            r.jobs[0].achieved_rs_pct > 90.0,
            "{}",
            r.jobs[0].achieved_rs_pct
        );
    }

    #[test]
    fn late_arrival_starts_no_earlier_than_it_arrives() {
        let soc = SocConfig::xavier();
        let jobs = vec![
            small_job(0, 0, 1.0, 3_000.0),
            small_job(1, 50_000, 1.0, 3_000.0),
        ];
        let mut policy = RoundRobin::default();
        let r = run_schedule(&soc, "unit", &jobs, &mut policy, &SchedConfig::quick()).unwrap();
        assert_eq!(r.jobs.len(), 2);
        let late = r.jobs.iter().find(|j| j.job_id == 1).unwrap();
        assert!(late.start >= 50_000.0);
    }

    #[test]
    fn one_job_per_pu_at_any_time() {
        let soc = SocConfig::xavier();
        let jobs: Vec<Job> = (0..5).map(|i| small_job(i, 0, 2.0, 2_000.0)).collect();
        let mut policy = RoundRobin::default();
        let r = run_schedule(&soc, "unit", &jobs, &mut policy, &SchedConfig::quick()).unwrap();
        assert_eq!(r.jobs.len(), 5);
        for pu in 0..soc.pus.len() {
            let mut spans: Vec<(f64, f64)> = r
                .jobs
                .iter()
                .filter(|j| j.pu_idx == pu)
                .map(|j| (j.start, j.finish))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-6, "overlap on PU {pu}: {w:?}");
            }
        }
    }

    #[test]
    fn probe_caches_corun_measurements() {
        let soc = SocConfig::xavier();
        let mut probe = SimProbe::new(&soc, CoRunConfig::probe().with_horizon(6_000));
        let k = KernelDesc::memory_streaming("s", 1.0);
        let a = probe.corun_rates(&[(1, k.clone())]);
        let b = probe.corun_rates(&[(1, k.clone())]);
        assert_eq!(a, b);
        assert_eq!(probe.corun_cache.len(), 1);
        let (rate, bw) = probe.standalone(1, &k);
        assert!(rate > 0.0 && bw > 0.0);
    }

    #[test]
    fn completions_resolve_predictions_into_the_audit_ledger() {
        let soc = SocConfig::xavier();
        let jobs = vec![
            small_job(9301, 0, 1.0, 3_000.0),
            small_job(9302, 0, 0.2, 3_000.0),
        ];
        let mut policy = PccsPolicy::new(vec![
            Box::new(PccsModel::xavier_cpu_paper()),
            Box::new(PccsModel::xavier_gpu_paper()),
            Box::new(PccsModel::xavier_dla_paper()),
        ]);
        audit::set_enabled(true);
        let r = run_schedule(&soc, "audit", &jobs, &mut policy, &SchedConfig::quick()).unwrap();
        audit::set_enabled(false);
        // Filter by this test's unique job names: the ledger is
        // process-global and other tests may run concurrently.
        let recs: Vec<_> = audit::snapshot()
            .into_iter()
            .filter(|rec| rec.workload == "job9301" || rec.workload == "job9302")
            .collect();
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(recs.len(), 2, "one audit pair per completed job");
        for rec in &recs {
            assert_eq!(
                (rec.source.as_str(), rec.unit.as_str()),
                ("sched", "cycles")
            );
            assert_eq!(rec.soc, "xavier");
            assert!(rec.predicted > 0.0 && rec.achieved > 0.0);
            assert!(rec.policy == "pccs" || rec.policy == "forced");
            if rec.policy == "pccs" {
                assert_ne!(rec.region, "-", "model-guided policy attributes a region");
            }
        }
    }

    #[test]
    fn impossible_job_is_a_typed_error() {
        let soc = SocConfig::snapdragon855();
        let job = small_job(0, 0, 1.0, 100.0).with_eligible(vec![PuKind::Dla]);
        let mut policy = ObliviousGreedy;
        let err =
            run_schedule(&soc, "unit", &[job], &mut policy, &SchedConfig::quick()).unwrap_err();
        assert_eq!(
            err,
            SchedError::UnschedulableJob {
                job: "job0".into(),
                soc: soc.name.clone(),
            }
        );
        assert!(err.to_string().contains("cannot run on any PU"));
    }

    #[test]
    fn duplicate_ids_are_a_typed_error() {
        let soc = SocConfig::xavier();
        let jobs = vec![small_job(3, 0, 1.0, 100.0), small_job(3, 10, 1.0, 100.0)];
        let mut policy = ObliviousGreedy;
        let err =
            run_schedule(&soc, "unit", &jobs, &mut policy, &SchedConfig::quick()).unwrap_err();
        assert_eq!(err, SchedError::DuplicateJobId { id: 3 });
    }
}
