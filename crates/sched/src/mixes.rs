//! Named multi-programmed job mixes.
//!
//! Each mix is a reproducible stream of jobs exercising a different
//! scheduling regime: a bandwidth-saturating trap where contention
//! awareness pays, a bursty inference server, and a staggered stream with
//! deadlines. The CLI (`pccs sched --mix <name>`), the experiment suite
//! (`sched_study`), and the acceptance tests all draw from here so that
//! results are comparable across entry points.

use crate::job::Job;
use pccs_soc::pu::PuKind;
use pccs_workloads::layers::LayerGraph;
use pccs_workloads::RodiniaBenchmark;

/// Srad work in the contended mix, lines: ~1.1M cycles of CPU residency
/// pushing ~50 GB/s of external traffic over the whole schedule.
const CONTENDED_SRAD_LINES: f64 = 400_000.0;

/// Work scale of the MNIST inference that keeps the GPU briefly occupied
/// when AlexNet arrives.
const CONTENDED_MNIST_SCALE: f64 = 6.0;

/// Work scale and arrival of the trapped AlexNet inference. AlexNet's FC
/// head dominates its traffic, which makes its standalone times on the DLA
/// and the GPU nearly identical — but its contended fates opposite.
const CONTENDED_ALEXNET_SCALE: f64 = 0.15;
const CONTENDED_ALEXNET_ARRIVAL: u64 = 5_000;

/// A named, reproducible job mix.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name, as accepted by `pccs sched --mix`.
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// The jobs, ids unique within the mix.
    pub jobs: Vec<Job>,
}

impl Mix {
    fn new(name: &str, description: &str, jobs: Vec<Job>) -> Self {
        Self {
            name: name.to_owned(),
            description: description.to_owned(),
            jobs,
        }
    }

    /// The mix with every job's work multiplied by `scale` — used by
    /// `--quick` runs to keep probe simulations cheap.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        for job in &mut self.jobs {
            for phase in &mut job.phases {
                phase.work_lines *= scale;
            }
        }
        self
    }
}

/// The contention trap: a long srad run pinned to the CPU pushes ~50 GB/s
/// of external traffic, an MNIST service request briefly occupies the GPU,
/// and then a large FC-heavy AlexNet inference arrives. AlexNet's
/// standalone times on the DLA and the GPU are nearly tied, so a
/// contention-oblivious scheduler takes the free DLA rather than waiting
/// out MNIST — but the DLA's short MLP window makes its FC phase collapse
/// ~4x under srad's traffic, while the same phase on the GPU loses only a
/// third. A contention-aware scheduler predicts the collapse and waits the
/// few hundred kilocycles for the GPU.
pub fn contended() -> Mix {
    Mix::new(
        "contended",
        "CPU-pinned srad traffic + MNIST on the GPU trap an FC-heavy AlexNet",
        vec![
            Job::rodinia(0, RodiniaBenchmark::Srad, 0, CONTENDED_SRAD_LINES)
                .with_eligible(vec![PuKind::Cpu]),
            Job::dnn(1, &LayerGraph::mnist(), 0, CONTENDED_MNIST_SCALE)
                .with_eligible(vec![PuKind::Gpu, PuKind::Cpu]),
            Job::dnn(
                2,
                &LayerGraph::alexnet(),
                CONTENDED_ALEXNET_ARRIVAL,
                CONTENDED_ALEXNET_SCALE,
            ),
        ],
    )
}

/// An inference-server burst: four DNN requests of different networks
/// arrive almost simultaneously — more jobs than PUs, so placement order
/// and co-run pairing both matter.
pub fn inference_burst() -> Mix {
    Mix::new(
        "inference-burst",
        "ResNet-50, VGG-19, AlexNet, and MNIST requests arriving in a burst",
        vec![
            Job::dnn(0, &LayerGraph::resnet50(), 0, 0.05),
            Job::dnn(1, &LayerGraph::vgg19(), 1_000, 0.01),
            Job::dnn(2, &LayerGraph::alexnet(), 2_000, 0.05),
            Job::dnn(3, &LayerGraph::mnist(), 3_000, 40.0),
        ],
    )
}

/// A staggered stream mixing DNN inference with Rodinia analytics, with
/// deadlines on the inference requests and a priority boost on the last
/// one — exercises queueing, priorities, and deadline accounting.
pub fn steady_stream() -> Mix {
    Mix::new(
        "steady-stream",
        "staggered AlexNet/ResNet-50 inferences with deadlines among kmeans and bfs",
        vec![
            Job::dnn(0, &LayerGraph::alexnet(), 0, 0.03).with_deadline(2_000_000),
            Job::rodinia(1, RodiniaBenchmark::Kmeans, 20_000, 60_000.0),
            Job::dnn(2, &LayerGraph::resnet50(), 60_000, 0.03).with_deadline(3_000_000),
            Job::rodinia(3, RodiniaBenchmark::Bfs, 100_000, 40_000.0),
            Job::dnn(4, &LayerGraph::mnist(), 140_000, 30.0)
                .with_deadline(2_500_000)
                .with_priority(1),
        ],
    )
}

/// All bundled mixes, in listing order.
pub fn all() -> Vec<Mix> {
    vec![contended(), inference_burst(), steady_stream()]
}

/// A mix by name.
pub fn mix(name: &str) -> Option<Mix> {
    all().into_iter().find(|m| m.name == name)
}

/// The bundled mix names, for CLI help and error messages.
pub fn names() -> Vec<String> {
    all().into_iter().map(|m| m.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_soc::pu::PuKind;

    #[test]
    fn all_mixes_have_unique_ids_and_multiple_dnns() {
        for m in all() {
            let mut ids: Vec<usize> = m.jobs.iter().map(|j| j.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), m.jobs.len(), "duplicate ids in {}", m.name);
            let dnns = m
                .jobs
                .iter()
                .filter(|j| {
                    j.phases
                        .iter()
                        .all(|p| p.label == "conv" || p.label == "fc")
                })
                .count();
            assert!(dnns >= 2, "{} is not multi-DNN", m.name);
        }
    }

    #[test]
    fn every_job_runs_on_a_cpu_or_gpu() {
        // Mixes must stay schedulable on SoCs without a DLA (Snapdragon).
        for m in all() {
            for j in &m.jobs {
                assert!(
                    j.runs_on(PuKind::Cpu) || j.runs_on(PuKind::Gpu),
                    "{}/{} needs a DLA",
                    m.name,
                    j.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(mix("contended").is_some());
        assert!(mix("no-such-mix").is_none());
        assert_eq!(names().len(), all().len());
    }

    #[test]
    fn scaling_shrinks_work() {
        let full = contended();
        let half = contended().scaled(0.5);
        let total = |m: &Mix| -> f64 { m.jobs.iter().map(Job::total_lines).sum() };
        assert!((total(&half) - total(&full) * 0.5).abs() < 1e-6);
    }
}
