//! Schedule evaluation artifacts: per-job outcomes, per-decision records,
//! and whole-schedule summary metrics.

use serde::{Deserialize, Serialize};

/// One placement decision, as made during a run. Exported through
/// `pccs-telemetry`'s JSONL stream for offline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Time of the decision, memory cycles.
    pub at_cycle: f64,
    /// The deciding policy (or `"forced"` for the engine's progress
    /// guarantee when a policy declines to place anything runnable).
    pub policy: String,
    /// The placed job.
    pub job: String,
    /// Id of the placed job.
    pub job_id: usize,
    /// The chosen PU's name.
    pub pu: String,
    /// The chosen PU's index.
    pub pu_idx: usize,
    /// The policy's predicted cost of the placement (policy-specific
    /// units — standalone cycles for the oblivious policies, predicted
    /// finish-plus-delay cycles for the contention-aware ones).
    pub predicted_cost: f64,
    /// Jobs left waiting after this decision.
    pub queue_depth: usize,
}

/// The fate of one job in a completed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub job_id: usize,
    /// Job name.
    pub name: String,
    /// The PU that ran it.
    pub pu: String,
    /// Index of that PU.
    pub pu_idx: usize,
    /// Arrival time, cycles.
    pub arrival: u64,
    /// Placement time, cycles.
    pub start: f64,
    /// Completion time, cycles.
    pub finish: f64,
    /// Standalone execution time on the assigned PU, cycles.
    pub standalone_cycles: f64,
    /// Achieved relative speed while resident, percent: standalone time
    /// over actual residence time (the paper's `RS`, aggregated over the
    /// whole job).
    pub achieved_rs_pct: f64,
    /// Deadline, if the job had one.
    pub deadline: Option<u64>,
    /// Whether the job finished after its deadline.
    pub missed_deadline: bool,
}

impl JobOutcome {
    /// Turnaround time: arrival to completion, cycles.
    pub fn turnaround(&self) -> f64 {
        self.finish - self.arrival as f64
    }
}

/// The result of replaying one mix under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Policy name.
    pub policy: String,
    /// SoC name.
    pub soc: String,
    /// Mix name.
    pub mix: String,
    /// Completion time of the last job, cycles.
    pub makespan: f64,
    /// Per-job outcomes, in completion order.
    pub jobs: Vec<JobOutcome>,
    /// Every placement decision made.
    pub decisions: Vec<DecisionRecord>,
}

impl ScheduleReport {
    /// Mean achieved relative speed across jobs, percent.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn mean_rs_pct(&self) -> f64 {
        assert!(!self.jobs.is_empty(), "empty schedule");
        self.jobs.iter().map(|j| j.achieved_rs_pct).sum::<f64>() / self.jobs.len() as f64
    }

    /// Number of jobs that finished after their deadline.
    pub fn deadline_misses(&self) -> usize {
        self.jobs.iter().filter(|j| j.missed_deadline).count()
    }

    /// Mean turnaround time across jobs, cycles.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn mean_turnaround(&self) -> f64 {
        assert!(!self.jobs.is_empty(), "empty schedule");
        self.jobs.iter().map(JobOutcome::turnaround).sum::<f64>() / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rs: f64, missed: bool) -> JobOutcome {
        JobOutcome {
            job_id: 0,
            name: "j".into(),
            pu: "GPU".into(),
            pu_idx: 1,
            arrival: 100,
            start: 150.0,
            finish: 1_100.0,
            standalone_cycles: 800.0,
            achieved_rs_pct: rs,
            deadline: Some(1_000),
            missed_deadline: missed,
        }
    }

    #[test]
    fn summary_metrics_aggregate() {
        let r = ScheduleReport {
            policy: "greedy".into(),
            soc: "xavier".into(),
            mix: "m".into(),
            makespan: 1_100.0,
            jobs: vec![outcome(80.0, true), outcome(100.0, false)],
            decisions: vec![],
        };
        assert!((r.mean_rs_pct() - 90.0).abs() < 1e-12);
        assert_eq!(r.deadline_misses(), 1);
        assert!((r.mean_turnaround() - 1_000.0).abs() < 1e-12);
        assert!((r.jobs[0].turnaround() - 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn records_serialize_to_json() {
        let rec = DecisionRecord {
            at_cycle: 42.0,
            policy: "pccs".into(),
            job: "vgg".into(),
            job_id: 3,
            pu: "DLA".into(),
            pu_idx: 2,
            predicted_cost: 1234.5,
            queue_depth: 2,
        };
        let text = serde_json::to_string(&rec).unwrap();
        assert!(text.contains("\"policy\""));
        assert!(text.contains("DLA"));
    }
}
