//! Typed failures of the scheduling engine.
//!
//! A job stream is validated against the target SoC before replay: ids
//! must be unique and every job must be able to run somewhere. Those used
//! to be `assert!` panics deep inside [`crate::engine::run_schedule`]; they
//! now surface as a [`SchedError`] so callers (`pccs sched`, `repro`, the
//! serving loop) can print a one-line diagnosis instead of aborting.

use std::fmt;

/// A failure validating or replaying a job stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Two jobs in the stream share an id.
    DuplicateJobId {
        /// The id that appears more than once.
        id: usize,
    },
    /// A job cannot run on any PU of the SoC — e.g. a DLA-only job handed
    /// to the Snapdragon preset, which has no DLA.
    UnschedulableJob {
        /// The job's display name.
        job: String,
        /// The SoC the job was validated against.
        soc: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateJobId { id } => {
                write!(
                    f,
                    "duplicate job id {id}; job ids must be unique within a mix"
                )
            }
            Self::UnschedulableJob { job, soc } => {
                write!(f, "job '{job}' cannot run on any PU of {soc}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = SchedError::UnschedulableJob {
            job: "alexnet".into(),
            soc: "Snapdragon 855".into(),
        };
        let text = e.to_string();
        assert!(text.contains("alexnet"));
        assert!(text.contains("Snapdragon 855"));
        assert!(SchedError::DuplicateJobId { id: 7 }
            .to_string()
            .contains('7'));
    }
}
