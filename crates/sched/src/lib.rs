//! Contention-aware scheduling runtime for heterogeneous SoCs.
//!
//! PCCS (MICRO'21) closes with the observation that a processor-centric
//! slowdown model is cheap enough to drive *online* decisions: a scheduler
//! that knows how much each kernel slows down under a given amount of
//! external memory traffic can place work to avoid ruinous co-run
//! combinations. This crate turns that observation into a runtime:
//!
//! * [`job`] — schedulable jobs: DNN inference requests (conv body + FC
//!   head phases from `pccs-workloads` layer graphs) and Rodinia kernels,
//!   with arrival times, deadlines, priorities, and PU eligibility;
//! * [`policy`] — placement policies from contention-oblivious baselines
//!   (round-robin, standalone-greedy) to the PCCS-model-guided policy and
//!   a simulation-probing oracle;
//! * [`engine`] — the evaluation harness: replays a job stream against the
//!   `pccs-soc` co-run simulator under a policy, producing per-job and
//!   per-decision records;
//! * [`mixes`] — named multi-programmed job mixes used by the CLI, the
//!   experiment suite, and the acceptance tests;
//! * [`report`] — schedule outcome types (makespan, achieved relative
//!   speed, deadline misses) that serialize through `pccs-telemetry`.
//!
//! ```
//! use pccs_sched::engine::{run_schedule, SchedConfig};
//! use pccs_sched::mixes;
//! use pccs_sched::policy::policy_by_name;
//! use pccs_soc::soc::SocConfig;
//!
//! let soc = SocConfig::xavier();
//! let mix = mixes::mix("inference-burst").unwrap();
//! let mut policy = policy_by_name(&soc, "pccs").unwrap();
//! let report = run_schedule(
//!     &soc,
//!     &mix.name,
//!     &mix.jobs,
//!     policy.as_mut(),
//!     &SchedConfig::quick(),
//! )
//! .expect("bundled mixes are schedulable on Xavier");
//! assert_eq!(report.jobs.len(), mix.jobs.len());
//! ```

/// The scheduling engine: replays a job stream against the co-run.
pub mod engine;
/// Typed failures of stream validation and replay.
pub mod error;
/// Jobs: units of schedulable work.
pub mod job;
/// Named multi-programmed job mixes.
pub mod mixes;
/// Placement policies.
pub mod policy;
/// Schedule evaluation artifacts: per-job outcomes, per-decision records,.
pub mod report;

pub use engine::{run_schedule, SchedConfig};
pub use error::SchedError;
pub use job::{Job, JobPhase, PhaseKernels};
pub use mixes::Mix;
pub use policy::{
    all_policies, policy_by_name, Assignment, DecisionInput, ObliviousGreedy, OraclePolicy,
    PccsPolicy, Policy, Probe, RoundRobin,
};
pub use report::{DecisionRecord, JobOutcome, ScheduleReport};
