//! Prints makespan / mean-RS / misses for every bundled policy on every
//! bundled mix — the working view used to tune mix compositions.
//!
//! ```text
//! cargo run -p pccs-sched --example policy_compare [--quick] [mix ...]
//! ```

use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::{all_policies, mixes};
use pccs_soc::soc::SocConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let cfg = if quick {
        SchedConfig::quick()
    } else {
        SchedConfig::default()
    };
    for soc in [SocConfig::xavier(), SocConfig::snapdragon855()] {
        for mix in mixes::all() {
            if !wanted.is_empty() && !wanted.iter().any(|w| **w == mix.name) {
                continue;
            }
            println!("== {} / {} ==", soc.name, mix.name);
            for mut policy in all_policies(&soc) {
                let report = run_schedule(&soc, &mix.name, &mix.jobs, policy.as_mut(), &cfg)
                    .expect("bundled mixes are schedulable");
                let placements: Vec<String> = report
                    .jobs
                    .iter()
                    .map(|j| format!("{}@{}", j.name, j.pu))
                    .collect();
                println!(
                    "  {:12} makespan {:>12.0}  mean-RS {:6.1}%  misses {}  [{}]",
                    report.policy,
                    report.makespan,
                    report.mean_rs_pct(),
                    report.deadline_misses(),
                    placements.join(", ")
                );
            }
        }
    }
}
