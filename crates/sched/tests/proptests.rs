//! Property-based tests of the scheduling engine's invariants: whatever
//! jobs arrive and whichever bundled policy decides, no PU ever runs two
//! jobs at once, every job completes, and nothing starts before it
//! arrives.

use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::job::{Job, JobPhase};
use pccs_sched::policy::{ObliviousGreedy, OraclePolicy, Policy, RoundRobin};
use pccs_soc::corun::CoRunConfig;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    let job_params = (
        0u64..40_000,         // arrival
        0.5f64..200.0,        // ops per byte of the first phase
        1_000.0f64..15_000.0, // work lines per phase
        0u32..3,              // priority
        1usize..3,            // phase count
    );
    prop::collection::vec(job_params, 2..5).prop_map(|params| {
        params
            .into_iter()
            .enumerate()
            .map(|(id, (arrival, opb, lines, priority, nphases))| {
                let phases = (0..nphases)
                    .map(|i| {
                        JobPhase::uniform(
                            format!("p{i}"),
                            lines,
                            KernelDesc::memory_streaming(
                                format!("j{id}p{i}"),
                                opb * (i as f64 + 1.0),
                            ),
                        )
                    })
                    .collect();
                Job::new(id, format!("job{id}"), arrival, phases).with_priority(priority)
            })
            .collect()
    })
}

/// A fast engine preset for property runs: tiny probe horizons.
fn prop_config() -> SchedConfig {
    SchedConfig {
        probe: CoRunConfig::probe().with_horizon(4_000),
        ..SchedConfig::default()
    }
}

fn policies() -> Vec<Box<dyn Policy>> {
    // The PCCS policy shares `guided_decide` with the oracle, and its
    // calibration sweep is far too slow for a property loop — the oracle
    // stands in for the whole contention-aware family here.
    vec![
        Box::new(RoundRobin::default()),
        Box::new(ObliviousGreedy),
        Box::new(OraclePolicy),
    ]
}

proptest! {
    #[test]
    fn no_policy_overlaps_jobs_on_a_pu(jobs in arb_jobs()) {
        let soc = SocConfig::xavier();
        for mut policy in policies() {
            let report = run_schedule(&soc, "prop", &jobs, policy.as_mut(), &prop_config())
                .expect("generated jobs are schedulable");
            prop_assert_eq!(report.jobs.len(), jobs.len());
            for outcome in &report.jobs {
                let job = jobs.iter().find(|j| j.id == outcome.job_id).unwrap();
                prop_assert!(outcome.start >= job.arrival as f64);
                prop_assert!(outcome.finish > outcome.start);
            }
            for pu in 0..soc.pus.len() {
                let mut spans: Vec<(f64, f64)> = report
                    .jobs
                    .iter()
                    .filter(|j| j.pu_idx == pu)
                    .map(|j| (j.start, j.finish))
                    .collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for pair in spans.windows(2) {
                    prop_assert!(
                        pair[0].1 <= pair[1].0 + 1e-6,
                        "policy {} overlapped jobs on PU {}: {:?}",
                        report.policy, pu, pair
                    );
                }
            }
        }
    }
}
