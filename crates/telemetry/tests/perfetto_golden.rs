//! Golden-file test for the Chrome/Perfetto exporter.
//!
//! The golden fixture pins the exporter's byte-level output for a fixed
//! span/counter input: event order, metadata records, key order, and
//! number formatting. Any intentional format change must regenerate the
//! fixture (`UPDATE_GOLDEN=1 cargo test -p pccs-telemetry --test
//! perfetto_golden`) and the diff reviews as part of the change.

use pccs_telemetry::perfetto::{check_trace, trace_json, CounterSample};
use pccs_telemetry::{ProfSpan, Profiler};
use std::path::PathBuf;

fn fixed_spans() -> Vec<ProfSpan> {
    let span = |name: &str, lane: u32, depth: u32, start_us: u64, dur_us: u64| ProfSpan {
        name: name.to_owned(),
        lane,
        depth,
        start_us,
        dur_us,
        self_us: dur_us,
    };
    vec![
        span("repro.oblivious", 0, 0, 0, 100),
        span("sweep.oblivious", 0, 1, 5, 90),
        span("sim.execute", 0, 2, 10, 40),
        span("sim.rep", 0, 3, 12, 8),
        span("cell.oblivious", 1, 0, 6, 80),
        span("sim.execute", 1, 1, 8, 60),
    ]
}

fn fixed_counters() -> Vec<CounterSample> {
    let sample = |track: &str, ts_us: u64, value: f64| CounterSample {
        track: track.to_owned(),
        ts_us,
        value,
    };
    vec![
        sample("dram.cycles", 50, 120_000.0),
        sample("dram.requests.served", 50, 4_096.0),
        sample("sweep.cells", 95, 24.0),
    ]
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("perfetto_trace.json")
}

#[test]
fn exporter_output_matches_golden_fixture() {
    let text = trace_json(&fixed_spans(), &fixed_counters());

    // The fixture must itself be a healthy trace with the shape the
    // acceptance criteria describe: one process, two lanes, spans nested
    // three-plus deep, and counter tracks present.
    let check = check_trace(&text).expect("generated trace validates");
    assert_eq!(check.lanes, 2);
    assert_eq!(check.max_depth, 4);
    assert_eq!(check.counter_tracks, 3);
    // 6 spans * 2 + 3 counters + 3 metadata (process name + 2 lane names).
    assert_eq!(check.events, 18);

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        text,
        golden,
        "exporter output diverged from {}; regenerate with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn live_multithreaded_profile_exports_healthy_trace() {
    // Drive the real profiler across threads and validate the export the
    // same way `pccs trace-check` does. This is the only test in this
    // binary touching the global profiler.
    Profiler::enable();
    {
        let _outer = Profiler::scope("outer");
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let _w = Profiler::scope("worker");
                    let _inner = Profiler::scope("inner");
                    let _leaf = Profiler::scope("leaf");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
    Profiler::disable();
    let spans = Profiler::drain();
    let text = trace_json(&spans, &[]);
    let check = check_trace(&text).expect("live trace validates");
    // Main lane plus two worker lanes, each worker nesting three deep.
    assert!(check.lanes >= 3, "lanes = {}", check.lanes);
    assert!(check.max_depth >= 3, "max_depth = {}", check.max_depth);
}
