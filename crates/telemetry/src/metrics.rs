//! Process-global metrics registry: named monotonic counters and
//! high-watermark gauges.
//!
//! The registry is the workspace-wide "what happened" ledger: the DRAM
//! simulator, the sweep runner, the profile cache, and the scheduling
//! replay engine all publish into it under stable dotted names (the full
//! name table lives in DESIGN.md §9). It is deliberately *not* a hot-path
//! structure: simulators accumulate into their own local stats structs and
//! publish once per run, so the per-event cost of the registry is zero and
//! the per-run cost is a handful of short mutex-guarded name lookups.
//!
//! Values are plain `u64`s behind relaxed atomics. A *counter* only ever
//! grows ([`Counter::add`]); a *gauge* keeps the maximum observed value
//! ([`Gauge::observe`]). Both share one namespace — a name's semantics are
//! fixed by its writers and documented in the name table.
//!
//! The whole registry can be switched off with [`set_enabled`] (one
//! relaxed atomic load per publish call), which is how the benchmark
//! harness measures the registry's own overhead.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static Mutex<BTreeMap<String, Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn cell(name: &str) -> Arc<AtomicU64> {
    let mut map = registry().lock().expect("metrics registry poisoned");
    if let Some(found) = map.get(name) {
        return Arc::clone(found);
    }
    let fresh = Arc::new(AtomicU64::new(0));
    map.insert(name.to_owned(), Arc::clone(&fresh));
    fresh
}

/// Turns metric publication on or off process-wide (default: on). When
/// off, every publish call is one relaxed atomic load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric publication is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A handle to a monotonic counter. Cheap to clone; increments are relaxed
/// atomic adds with no lock. Acquire once, publish many times.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        if is_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to a high-watermark gauge: [`Gauge::observe`] keeps the
/// maximum value seen.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raises the gauge to `value` if it is above the current watermark.
    pub fn observe(&self, value: u64) {
        if is_enabled() {
            self.0.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// The current watermark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The counter registered under `name` (created on first use).
pub fn counter(name: &str) -> Counter {
    Counter(cell(name))
}

/// The high-watermark gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    Gauge(cell(name))
}

/// One-shot convenience: `counter(name).add(delta)` without keeping the
/// handle. Costs one registry lock; fine at publish-once-per-run sites.
pub fn add(name: &str, delta: u64) {
    if is_enabled() {
        counter(name).add(delta);
    }
}

/// One-shot convenience: `gauge(name).observe(value)`.
pub fn observe_max(name: &str, value: u64) {
    if is_enabled() {
        gauge(name).observe(value);
    }
}

/// A sorted snapshot of every registered metric and its current value.
/// Key order is `BTreeMap` order, so two snapshots of the same registry
/// always serialize identically.
pub fn snapshot() -> BTreeMap<String, u64> {
    registry()
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, value)| (name.clone(), value.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every registered metric, keeping the names. Used by the bench
/// harness so a report covers exactly one measured run.
pub fn reset() {
    for value in registry()
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test for the whole lifecycle: the registry is process-global and
    // tests run concurrently, so use names no other test touches and never
    // call reset() here.
    #[test]
    fn counters_gauges_and_snapshots() {
        let c = counter("test.metrics.counter");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        // Same name resolves to the same cell.
        add("test.metrics.counter", 6);
        assert_eq!(counter("test.metrics.counter").get(), 10);

        let g = gauge("test.metrics.gauge");
        g.observe(7);
        g.observe(3);
        assert_eq!(g.get(), 7);
        observe_max("test.metrics.gauge", 9);
        assert_eq!(g.get(), 9);

        let snap = snapshot();
        assert_eq!(snap.get("test.metrics.counter"), Some(&10));
        assert_eq!(snap.get("test.metrics.gauge"), Some(&9));
        // Snapshot keys are sorted (BTreeMap order).
        let keys: Vec<&String> = snap.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let c = counter("test.metrics.disabled");
        set_enabled(false);
        c.add(5);
        observe_max("test.metrics.disabled", 100);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(c.get(), 2);
    }
}
