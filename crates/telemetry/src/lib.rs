//! Telemetry layer for the PCCS simulators.
//!
//! Four pieces, all optional and allocation-free on the hot path when
//! disabled:
//!
//! - [`Recorder`] — the hook trait the DRAM controller drives. The default
//!   [`NoopRecorder`] compiles to nothing; [`EpochRecorder`] samples
//!   per-source bandwidth, queue depth, row-buffer outcome mix, and the
//!   scheduler stall breakdown every N cycles into a [`TelemetryReport`].
//! - [`LatencyHistogram`] — log-binned latency distribution with
//!   p50/p95/p99/max, embedded in the DRAM per-source stats.
//! - [`TraceLog`] — process-global scoped-span event log (begin/end wall
//!   time plus counters) for model-construction and experiment phases.
//! - [`export`] — JSONL event stream, CSV time-series, and human-readable
//!   summary-table renderers, plus the [`RunManifest`] provenance record.
//!
//! The performance-observability layer (DESIGN.md §9) adds three more:
//!
//! - [`metrics`] — process-global registry of named counters and
//!   high-watermark gauges; simulators publish local stats into it once
//!   per run.
//! - [`Profiler`] — hierarchical scoped profiler with per-thread lanes,
//!   nesting depth, and self-time per phase.
//! - [`perfetto`] — Chrome/Perfetto `trace.json` exporter for profiler
//!   spans and counter tracks, plus the structural validator behind
//!   `pccs trace-check`.
//!
//! The model-observability layer (DESIGN.md §12) adds one more:
//!
//! - [`audit`] — process-global prediction-audit ledger of (prediction,
//!   ground-truth) pairs with SoC/PU/region/policy/engine provenance,
//!   plus the accuracy scorecards behind `pccs audit`.

mod histogram;
mod manifest;
mod profiler;
mod recorder;
mod trace;

/// Prediction-audit ledger: (prediction, ground-truth) pairs with
/// provenance, plus accuracy scorecards sliced per SoC × PU × region ×
/// policy.
pub mod audit;
/// Exporters: JSONL event stream, CSV time-series, and a human-readable.
pub mod export;
/// Process-global metrics registry: named counters and watermark gauges.
pub mod metrics;
/// Chrome/Perfetto trace exporter and structural validator.
pub mod perfetto;

pub use histogram::LatencyHistogram;
pub use manifest::RunManifest;
pub use profiler::{summary as profiler_summary, PhaseStats, ProfScope, ProfSpan, Profiler};
pub use recorder::{
    EpochRecorder, EpochSample, NoopRecorder, Recorder, RowEvent, StallEvent, TelemetryReport,
};
pub use trace::{SpanGuard, TraceEvent, TraceLog};
