//! Telemetry layer for the PCCS simulators.
//!
//! Four pieces, all optional and allocation-free on the hot path when
//! disabled:
//!
//! - [`Recorder`] — the hook trait the DRAM controller drives. The default
//!   [`NoopRecorder`] compiles to nothing; [`EpochRecorder`] samples
//!   per-source bandwidth, queue depth, row-buffer outcome mix, and the
//!   scheduler stall breakdown every N cycles into a [`TelemetryReport`].
//! - [`LatencyHistogram`] — log-binned latency distribution with
//!   p50/p95/p99/max, embedded in the DRAM per-source stats.
//! - [`TraceLog`] — process-global scoped-span event log (begin/end wall
//!   time plus counters) for model-construction and experiment phases.
//! - [`export`] — JSONL event stream, CSV time-series, and human-readable
//!   summary-table renderers, plus the [`RunManifest`] provenance record.

mod histogram;
mod manifest;
mod recorder;
mod trace;

/// Exporters: JSONL event stream, CSV time-series, and a human-readable.
pub mod export;

pub use histogram::LatencyHistogram;
pub use manifest::RunManifest;
pub use recorder::{
    EpochRecorder, EpochSample, NoopRecorder, Recorder, RowEvent, StallEvent, TelemetryReport,
};
pub use trace::{SpanGuard, TraceEvent, TraceLog};
