//! Run-provenance manifest attached to exported results.

use serde::{Deserialize, Serialize, Value};
use std::time::{SystemTime, UNIX_EPOCH};

/// What produced a result file: enough to re-run it and to tell two
/// runs apart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Producing binary (e.g. "pccs-cli" or "repro").
    pub tool: String,
    /// Crate version of the producing binary.
    pub version: String,
    /// The command line or subcommand that ran.
    pub command: String,
    /// RNG seed, when the run used one.
    pub seed: Option<u64>,
    /// Snapshot of the effective configuration, as a JSON value.
    pub config: Value,
    /// Unix time in milliseconds when the run started.
    pub started_unix_ms: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
}

impl RunManifest {
    /// A manifest stamped with the current wall-clock time; call
    /// [`RunManifest::set_wall_secs`] once the run finishes.
    pub fn new(tool: &str, version: &str, command: &str) -> Self {
        let started_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        RunManifest {
            tool: tool.to_owned(),
            version: version.to_owned(),
            command: command.to_owned(),
            seed: None,
            config: Value::Null,
            started_unix_ms,
            wall_secs: 0.0,
        }
    }

    /// Sets the seed, chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the config snapshot, chaining.
    pub fn with_config(mut self, config: Value) -> Self {
        self.config = config;
        self
    }

    /// Records the run's wall-clock duration.
    pub fn set_wall_secs(&mut self, secs: f64) {
        self.wall_secs = secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let mut m = RunManifest::new("pccs-cli", "0.1.0", "corun --soc parker")
            .with_seed(42)
            .with_config(serde_json::to_value(&vec![1u64, 2, 3]).unwrap());
        m.set_wall_secs(1.25);
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert!(back.started_unix_ms > 0);
    }
}
