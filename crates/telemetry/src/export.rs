//! Exporters: JSONL event stream, CSV time-series, and a human-readable
//! per-source summary table.

use crate::{RunManifest, TelemetryReport, TraceEvent};
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Wraps a serialized record in `{"type": tag, ...}` form; non-object
/// payloads land under a `"data"` key.
fn tagged(tag: &str, value: Value) -> Value {
    let mut map = match value {
        Value::Object(map) => map,
        other => {
            let mut map = std::collections::BTreeMap::new();
            map.insert("data".to_owned(), other);
            map
        }
    };
    map.insert("type".to_owned(), Value::String(tag.to_owned()));
    Value::Object(map)
}

/// Renders the run as a JSONL event stream: one `manifest` line, one
/// `epoch` line per sample, one `span` line per trace event.
pub fn jsonl_events(
    manifest: Option<&RunManifest>,
    report: Option<&TelemetryReport>,
    spans: &[TraceEvent],
) -> String {
    let mut out = String::new();
    if let Some(m) = manifest {
        let mut line = String::new();
        tagged("manifest", m.to_value()).render(&mut line);
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(r) = report {
        for sample in &r.epochs {
            let mut line = String::new();
            let mut v = tagged("epoch", sample.to_value());
            if let Value::Object(map) = &mut v {
                map.insert(
                    "epoch_cycles".to_owned(),
                    serde::Value::Number(serde::Number::U(r.epoch_cycles)),
                );
            }
            v.render(&mut line);
            out.push_str(&line);
            out.push('\n');
        }
    }
    for span in spans {
        let mut line = String::new();
        tagged("span", span.to_value()).render(&mut line);
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders arbitrary serializable records as a tagged JSONL stream: one
/// `{"type": tag, ...}` line per record. Used for event streams the
/// simulators do not know about — e.g. the scheduling runtime's
/// per-decision records — so they compose with [`jsonl_events`] output in
/// the same file.
pub fn jsonl_records<T: Serialize>(tag: &str, rows: &[T]) -> String {
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        tagged(tag, row.to_value()).render(&mut line);
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders the epoch time-series as CSV: one row per epoch, one
/// `bytes_src<N>` column per source seen anywhere in the run.
pub fn csv_timeseries(report: &TelemetryReport) -> String {
    let sources = report.sources();
    let mut out = String::new();
    out.push_str("epoch,start_cycle,end_cycle,total_bytes");
    for src in &sources {
        let _ = write!(out, ",bytes_src{src}");
    }
    out.push_str(
        ",served,row_hits,row_misses,row_conflicts,\
         issued,bus_blocked,no_candidate,idle,queue_depth_avg,queue_depth_max\n",
    );
    for e in &report.epochs {
        let _ = write!(
            out,
            "{},{},{},{}",
            e.epoch,
            e.start_cycle,
            e.end_cycle,
            e.total_bytes()
        );
        for src in &sources {
            let _ = write!(
                out,
                ",{}",
                e.bytes_per_source.get(src).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            ",{},{},{},{},{},{},{},{},{:.2},{}",
            e.served,
            e.row_hits,
            e.row_misses,
            e.row_conflicts,
            e.issued,
            e.bus_blocked,
            e.no_candidate,
            e.idle,
            e.queue_depth_avg,
            e.queue_depth_max
        );
    }
    out
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// newline; passes every other string through untouched. All CSV writers
/// in the workspace route string-typed fields through this, so labels
/// like `corun(cpu,gpu)` survive a round trip through a CSV parser.
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line produced by this module back into fields,
/// reversing [`csv_field`]'s quoting. Only used by round-trip tests and
/// the trace tooling; not a general CSV parser (no embedded newlines
/// across physical lines).
pub fn csv_split(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if current.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Renders the per-source summary as CSV (same columns as
/// [`render_summary`], machine-readable, labels escaped via
/// [`csv_field`]).
pub fn csv_summary(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    out.push_str("source,served,bytes,bw_gbps,avg_latency,p50,p95,p99,max,enqueued,rejected\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.2},{:.1},{},{},{},{},{},{}",
            csv_field(&r.label),
            r.served,
            r.bytes,
            r.bw_gbps,
            r.avg_latency,
            r.p50,
            r.p95,
            r.p99,
            r.max_latency,
            r.enqueued,
            r.rejected
        );
    }
    out
}

/// One row of the per-source summary table. Built by the caller from
/// simulator stats (this crate does not know the simulator types).
#[derive(Debug, Clone, Default)]
pub struct SummaryRow {
    /// Row label (source name or id).
    pub label: String,
    /// Requests served.
    pub served: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Achieved bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Mean service latency in cycles.
    pub avg_latency: f64,
    /// Median latency in cycles.
    pub p50: u64,
    /// 95th-percentile latency in cycles.
    pub p95: u64,
    /// 99th-percentile latency in cycles.
    pub p99: u64,
    /// Maximum latency in cycles.
    pub max_latency: u64,
    /// Requests accepted into the controller queue.
    pub enqueued: u64,
    /// Requests refused at the queue (back-pressure).
    pub rejected: u64,
}

/// Renders aligned per-source rows with a totals line.
pub fn render_summary(rows: &[SummaryRow]) -> String {
    const HEADERS: [&str; 11] = [
        "source", "served", "bytes", "GB/s", "avg", "p50", "p95", "p99", "max", "enqueued",
        "rejected",
    ];
    let mut cells: Vec<[String; 11]> = rows
        .iter()
        .map(|r| {
            [
                r.label.clone(),
                r.served.to_string(),
                r.bytes.to_string(),
                format!("{:.2}", r.bw_gbps),
                format!("{:.1}", r.avg_latency),
                r.p50.to_string(),
                r.p95.to_string(),
                r.p99.to_string(),
                r.max_latency.to_string(),
                r.enqueued.to_string(),
                r.rejected.to_string(),
            ]
        })
        .collect();
    if rows.len() > 1 {
        let sum = |f: fn(&SummaryRow) -> u64| rows.iter().map(f).sum::<u64>();
        cells.push([
            "total".to_owned(),
            sum(|r| r.served).to_string(),
            sum(|r| r.bytes).to_string(),
            format!("{:.2}", rows.iter().map(|r| r.bw_gbps).sum::<f64>()),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            rows.iter()
                .map(|r| r.max_latency)
                .max()
                .unwrap_or(0)
                .to_string(),
            sum(|r| r.enqueued).to_string(),
            sum(|r| r.rejected).to_string(),
        ]);
    }
    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, (h, w)) in HEADERS.iter().zip(widths.iter()).enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let _ = write!(out, "{h:>w$}");
    }
    out.push('\n');
    for row in &cells {
        for (i, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochRecorder, Recorder, RowEvent, StallEvent};

    fn sample_report() -> TelemetryReport {
        let mut r = EpochRecorder::new(100);
        r.on_serve(10, 0, 64, 12, RowEvent::Hit);
        r.on_serve(20, 1, 64, 30, RowEvent::Miss);
        r.on_stall(20, StallEvent::Issued);
        r.on_tick(20, 3);
        r.on_serve(150, 0, 64, 40, RowEvent::Conflict);
        r.finish(200);
        r.report().unwrap()
    }

    #[test]
    fn jsonl_lines_parse_and_tag() {
        let manifest = RunManifest::new("test", "0.0.0", "unit");
        let report = sample_report();
        let spans = vec![TraceEvent {
            name: "phase".to_owned(),
            start_us: 1,
            duration_us: 5,
            counters: vec![("n".to_owned(), 2.0)],
        }];
        let text = jsonl_events(Some(&manifest), Some(&report), &spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + report.epochs.len() + 1);
        let mut kinds = Vec::new();
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            let obj = v.as_object().unwrap();
            kinds.push(obj["type"].as_str().unwrap().to_owned());
        }
        assert_eq!(kinds[0], "manifest");
        assert!(kinds[1..=report.epochs.len()].iter().all(|k| k == "epoch"));
        assert_eq!(kinds.last().unwrap(), "span");
    }

    #[test]
    fn records_tag_every_line() {
        #[derive(Serialize)]
        struct Decision {
            job: String,
            pu: u64,
        }
        let rows = vec![
            Decision {
                job: "resnet".to_owned(),
                pu: 1,
            },
            Decision {
                job: "vgg".to_owned(),
                pu: 2,
            },
        ];
        let text = jsonl_records("decision", &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            let obj = v.as_object().unwrap();
            assert_eq!(obj["type"].as_str().unwrap(), "decision");
            assert!(obj.contains_key("job") && obj.contains_key("pu"));
        }
    }

    #[test]
    fn csv_has_per_source_columns_and_reconciles() {
        let report = sample_report();
        let csv = csv_timeseries(&report);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("bytes_src0"));
        assert!(header.contains("bytes_src1"));
        assert!(header.contains("queue_depth_avg"));
        let mut total = 0u64;
        for line in lines {
            let total_bytes: u64 = line.split(',').nth(3).unwrap().parse().unwrap();
            total += total_bytes;
        }
        assert_eq!(total, report.total_bytes());
    }

    #[test]
    fn csv_fields_escape_and_round_trip() {
        let nasty = [
            "plain",
            "with,comma",
            "with\"quote",
            "both,\"of,them\"",
            "line\nbreak",
            "",
        ];
        for label in nasty {
            let row = SummaryRow {
                label: label.to_owned(),
                served: 1,
                bytes: 64,
                ..SummaryRow::default()
            };
            let csv = csv_summary(&[row]);
            let data_line = csv.lines().nth(1).unwrap_or_default();
            // An escaped newline keeps the field on one logical row
            // spanning two physical lines; rejoin for the check.
            let logical = if label.contains('\n') {
                let mut lines = csv.lines().skip(1);
                format!("{}\n{}", lines.next().unwrap(), lines.next().unwrap())
            } else {
                data_line.to_owned()
            };
            let fields = csv_split(&logical);
            assert_eq!(fields[0], label, "label {label:?} must round-trip");
            assert_eq!(fields[1], "1");
            assert_eq!(fields.len(), 11);
        }
    }

    #[test]
    fn jsonl_is_deterministic_with_sorted_keys() {
        let report = sample_report();
        let spans = vec![TraceEvent {
            name: "phase".to_owned(),
            start_us: 1,
            duration_us: 5,
            counters: vec![],
        }];
        let a = jsonl_events(None, Some(&report), &spans);
        let b = jsonl_events(None, Some(&report), &spans);
        assert_eq!(a, b, "same input must serialize to identical bytes");
        // Keys within every line come out of a BTreeMap, i.e. sorted —
        // the property that guards against iteration-order drift.
        for line in a.lines() {
            let keys: Vec<String> = {
                let v: serde::Value = serde_json::from_str(line).unwrap();
                v.as_object().unwrap().keys().cloned().collect()
            };
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "keys must be sorted in {line}");
            let reparsed: serde::Value = serde_json::from_str(line).unwrap();
            let mut rendered = String::new();
            reparsed.render(&mut rendered);
            assert_eq!(rendered, *line, "parse/render round trip");
        }
    }

    #[test]
    fn summary_table_aligns_and_totals() {
        let rows = vec![
            SummaryRow {
                label: "cpu".to_owned(),
                served: 10,
                bytes: 640,
                bw_gbps: 1.5,
                avg_latency: 20.0,
                p50: 18,
                p95: 40,
                p99: 44,
                max_latency: 50,
                enqueued: 12,
                rejected: 2,
            },
            SummaryRow {
                label: "gpu".to_owned(),
                served: 5,
                bytes: 320,
                bw_gbps: 0.7,
                avg_latency: 35.0,
                p50: 30,
                p95: 70,
                p99: 80,
                max_latency: 90,
                enqueued: 5,
                rejected: 0,
            },
        ];
        let table = render_summary(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("p95"));
        assert!(lines[3].contains("total"));
        assert!(lines[3].contains("960"));
        assert!(lines[3].contains("90"));
    }
}
