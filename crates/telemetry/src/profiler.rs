//! Hierarchical scoped profiler with per-thread lanes and self-time.
//!
//! [`Profiler::scope`] opens a phase that records itself when the guard
//! drops. Unlike [`crate::TraceLog`] (a flat event log), the profiler
//! tracks *nesting*: each thread keeps a stack of open scopes, so a
//! recorded [`ProfSpan`] knows its depth, its lane (a small integer
//! assigned to each thread on first use), and its **self time** — the
//! span's duration minus the time spent inside child spans. That is what
//! lets the Perfetto exporter ([`crate::perfetto`]) lay spans out in
//! per-worker lanes, and what makes the [`summary`] table answer "where
//! did the time actually go" rather than "what enclosed what".
//!
//! Disabled by default: a scope costs one relaxed atomic load and
//! allocates nothing until [`Profiler::enable`] is called. Timing uses the
//! monotonic clock ([`std::time::Instant`]) only; this crate is
//! intentionally outside the determinism-linted set, so simulation results
//! can never depend on it.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

fn spans() -> &'static Mutex<Vec<ProfSpan>> {
    static SPANS: OnceLock<Mutex<Vec<ProfSpan>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LANE: Cell<Option<u32>> = const { Cell::new(None) };
    // One u64 of accumulated child time per open scope on this thread.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn lane_id() -> u32 {
    LANE.with(|lane| match lane.get() {
        Some(id) => id,
        None => {
            let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            lane.set(Some(id));
            id
        }
    })
}

/// One completed profiler scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfSpan {
    /// Phase name.
    pub name: String,
    /// Lane (thread) the scope ran on; lane 0 is the first thread that
    /// opened a scope, usually the main thread.
    pub lane: u32,
    /// Nesting depth at open time: 0 for a top-level scope on its lane.
    pub depth: u32,
    /// Microseconds from profiler epoch to scope open.
    pub start_us: u64,
    /// Total scope duration in microseconds.
    pub dur_us: u64,
    /// Duration minus time spent in child scopes, in microseconds.
    pub self_us: u64,
}

/// The global hierarchical profiler.
pub struct Profiler;

impl Profiler {
    /// Turns profiling on.
    pub fn enable() {
        epoch();
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns profiling off (already-recorded spans are kept).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether scopes are currently recorded.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Microseconds elapsed since the profiler epoch; the timebase shared
    /// by every [`ProfSpan`], so callers can stamp counter samples onto
    /// the same axis.
    pub fn now_us() -> u64 {
        epoch().elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Opens a scope; it records itself when dropped. Free when profiling
    /// is disabled.
    pub fn scope(name: &str) -> ProfScope {
        if !Self::is_enabled() {
            return ProfScope { inner: None };
        }
        let lane = lane_id();
        let depth = OPEN.with(|open| {
            let mut open = open.borrow_mut();
            let depth = open.len() as u32;
            open.push(0);
            depth
        });
        ProfScope {
            inner: Some(ScopeInner {
                name: name.to_owned(),
                lane,
                depth,
                started: Instant::now(),
            }),
        }
    }

    /// Takes all recorded spans, leaving the log empty.
    pub fn drain() -> Vec<ProfSpan> {
        std::mem::take(&mut *spans().lock().expect("profiler log poisoned"))
    }
}

struct ScopeInner {
    name: String,
    lane: u32,
    depth: u32,
    started: Instant,
}

/// Guard returned by [`Profiler::scope`]; records the span on drop.
pub struct ProfScope {
    inner: Option<ScopeInner>,
}

impl Drop for ProfScope {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner
            .started
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let start_us = inner
            .started
            .duration_since(epoch())
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let child_us = OPEN.with(|open| {
            let mut open = open.borrow_mut();
            let child_us = open.pop().unwrap_or(0);
            if let Some(parent) = open.last_mut() {
                *parent += dur_us;
            }
            child_us
        });
        let span = ProfSpan {
            name: inner.name,
            lane: inner.lane,
            depth: inner.depth,
            start_us,
            dur_us,
            self_us: dur_us.saturating_sub(child_us),
        };
        spans().lock().expect("profiler log poisoned").push(span);
    }
}

/// Per-phase aggregate over a set of recorded spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// Number of recorded scopes with this name.
    pub calls: u64,
    /// Sum of total durations, microseconds.
    pub total_us: u64,
    /// Sum of self times, microseconds.
    pub self_us: u64,
}

/// Aggregates spans into per-name call/total/self rows, sorted by name so
/// repeated exports of the same spans are byte-identical.
pub fn summary(spans: &[ProfSpan]) -> Vec<PhaseStats> {
    let mut by_name: std::collections::BTreeMap<&str, PhaseStats> =
        std::collections::BTreeMap::new();
    for span in spans {
        let entry = by_name.entry(&span.name).or_insert_with(|| PhaseStats {
            name: span.name.clone(),
            calls: 0,
            total_us: 0,
            self_us: 0,
        });
        entry.calls += 1;
        entry.total_us += span.dur_us;
        entry.self_us += span.self_us;
    }
    by_name.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers the whole lifecycle because the profiler is
    // process-global and tests run concurrently.
    #[test]
    fn nesting_self_time_and_summary() {
        {
            let _off = Profiler::scope("ignored-while-disabled");
        }
        let ignored_early = Profiler::is_enabled();
        Profiler::enable();
        {
            let _outer = Profiler::scope("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Profiler::scope("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        Profiler::disable();
        let recorded = Profiler::drain();
        let outer = recorded.iter().find(|s| s.name == "outer").expect("outer");
        let inner = recorded.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.lane, inner.lane);
        assert!(outer.dur_us >= inner.dur_us);
        // Outer self time excludes inner's full duration.
        assert!(outer.self_us <= outer.dur_us - inner.dur_us);
        // Only assert the disabled-scope was dropped if no concurrent test
        // had already enabled the global profiler when it opened.
        if !ignored_early {
            assert!(!recorded.iter().any(|s| s.name.starts_with("ignored")));
        }

        let agg = summary(&recorded);
        let names: Vec<&str> = agg.iter().map(|p| p.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let outer_agg = agg.iter().find(|p| p.name == "outer").expect("agg");
        assert_eq!(outer_agg.calls, 1);
        assert!(outer_agg.self_us <= outer_agg.total_us);
    }

    #[test]
    fn lanes_differ_across_threads() {
        Profiler::enable();
        let here = lane_id();
        let there = std::thread::spawn(lane_id).join().expect("join");
        assert_ne!(here, there);
    }
}
