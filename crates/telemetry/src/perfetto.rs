//! Chrome/Perfetto trace exporter and validator.
//!
//! [`trace_json`] turns recorded [`ProfSpan`]s and [`CounterSample`]s into
//! the Chrome Trace Event Format (the JSON flavor `ui.perfetto.dev` and
//! `chrome://tracing` both load): each span becomes a `B`/`E` duration
//! pair on `pid` 1 with `tid` = lane + 1, each lane gets a `thread_name`
//! metadata record, and counter samples become `C` events that Perfetto
//! renders as counter tracks. Events are emitted already sorted per lane
//! with ties broken so that an `E` at timestamp *t* precedes a `B` at the
//! same *t* — that keeps zero-width adjacency well-nested for strict
//! parsers, and is the ordering [`check_trace`] verifies.
//!
//! [`check_trace`] is the other half: it re-parses an exported trace and
//! checks structural health (valid JSON, balanced `B`/`E` pairs per tid,
//! monotonic timestamps per lane) and reports nesting depth and counter
//! track counts, so both the golden test and `pccs trace-check` share one
//! verdict.

use crate::profiler::ProfSpan;
use serde::{Number, Value};
use std::collections::BTreeMap;

/// One sample on a named counter track.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Track name (e.g. `dram.requests.served`).
    pub track: String,
    /// Microseconds on the profiler timebase ([`crate::Profiler::now_us`]).
    pub ts_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// The tid counter tracks are attached to (span lanes start at tid 1).
const COUNTER_TID: u64 = 0;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn string(s: &str) -> Value {
    Value::String(s.to_owned())
}

fn uint(u: u64) -> Value {
    Value::Number(Number::U(u))
}

/// Renders spans and counter samples as a Chrome Trace Event Format JSON
/// document. Deterministic for a fixed input: events are sorted by
/// `(tid, ts, E-before-B, depth)` and object keys are emitted in
/// `BTreeMap` order.
pub fn trace_json(spans: &[ProfSpan], counters: &[CounterSample]) -> String {
    // (tid, ts, rank, depth_key, payload): at equal timestamps on a lane,
    // E events close deepest-first (rank 0, inverted depth) before B
    // events open shallowest-first (rank 1, natural depth).
    let mut keyed: Vec<(u64, u64, u8, u32, Value)> = Vec::new();
    let mut lanes: Vec<u32> = Vec::new();
    for span in spans {
        let tid = u64::from(span.lane) + 1;
        if !lanes.contains(&span.lane) {
            lanes.push(span.lane);
        }
        // Floor the rendered duration at 1 µs: a sub-microsecond scope
        // rounds to dur 0, and its E at the same ts would sort before its
        // own B under the E-before-B tie-break.
        let end_ts = span.start_us + span.dur_us.max(1);
        let begin = obj(vec![
            ("name", string(&span.name)),
            ("ph", string("B")),
            ("pid", uint(1)),
            ("tid", uint(tid)),
            ("ts", uint(span.start_us)),
        ]);
        let end = obj(vec![
            ("name", string(&span.name)),
            ("ph", string("E")),
            ("pid", uint(1)),
            ("tid", uint(tid)),
            ("ts", uint(end_ts)),
        ]);
        keyed.push((tid, span.start_us, 1, span.depth, begin));
        keyed.push((tid, end_ts, 0, u32::MAX - span.depth, end));
    }
    for sample in counters {
        let event = obj(vec![
            (
                "args",
                obj(vec![("value", Value::Number(Number::F(sample.value)))]),
            ),
            ("name", string(&sample.track)),
            ("ph", string("C")),
            ("pid", uint(1)),
            ("tid", uint(COUNTER_TID)),
            ("ts", uint(sample.ts_us)),
        ]);
        keyed.push((COUNTER_TID, sample.ts_us, 2, 0, event));
    }
    keyed.sort_by_key(|a| (a.0, a.1, a.2, a.3));

    lanes.sort_unstable();
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("args", obj(vec![("name", string("pccs"))])),
        ("name", string("process_name")),
        ("ph", string("M")),
        ("pid", uint(1)),
        ("tid", uint(COUNTER_TID)),
    ]));
    for lane in lanes {
        let label = if lane == 0 {
            "lane-0 (main)".to_owned()
        } else {
            format!("lane-{lane}")
        };
        events.push(obj(vec![
            ("args", obj(vec![("name", string(&label))])),
            ("name", string("thread_name")),
            ("ph", string("M")),
            ("pid", uint(1)),
            ("tid", uint(u64::from(lane) + 1)),
        ]));
    }
    events.extend(keyed.into_iter().map(|(_, _, _, _, event)| event));

    let document = obj(vec![
        ("displayTimeUnit", string("ms")),
        ("traceEvents", Value::Array(events)),
    ]);
    let mut out = String::new();
    document.render(&mut out);
    out
}

/// Counter samples from a metrics-registry snapshot, one point per metric
/// at `ts_us`. Sampling the registry at phase boundaries turns cumulative
/// counters into step curves in the trace viewer.
pub fn counters_from_snapshot(snapshot: &BTreeMap<String, u64>, ts_us: u64) -> Vec<CounterSample> {
    snapshot
        .iter()
        .map(|(name, value)| CounterSample {
            track: name.clone(),
            ts_us,
            value: *value as f64,
        })
        .collect()
}

/// Structural summary of a validated trace, from [`check_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct tids carrying `B`/`E` span events.
    pub lanes: usize,
    /// Deepest observed `B` nesting across all lanes.
    pub max_depth: usize,
    /// Distinct counter track names (`ph == "C"`).
    pub counter_tracks: usize,
}

/// Parses a Chrome Trace Event Format document and verifies it is
/// structurally sound: valid JSON, every `E` closes the matching open `B`
/// on its tid, no span left open at the end, and timestamps are
/// non-decreasing per tid in file order. Returns the observed shape or a
/// description of the first violation.
pub fn check_trace(text: &str) -> Result<TraceCheck, String> {
    let document = serde_json::from_str::<Value>(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = document
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array".to_owned())?;

    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut span_tids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut tracks: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut max_depth = 0usize;

    for (index, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {index}: missing name"))?;
        let tid = event
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {index}: missing tid"))?;
        let ts = event
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {index}: missing or non-integer ts"))?;
        if let Some(prev) = last_ts.get(&tid) {
            if ts < *prev {
                return Err(format!(
                    "event {index}: ts {ts} goes backwards on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        match ph {
            "B" => {
                span_tids.insert(tid);
                let stack = stacks.entry(tid).or_default();
                stack.push(name.to_owned());
                max_depth = max_depth.max(stack.len());
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {index}: E \"{name}\" closes open span \"{open}\" on tid {tid}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {index}: E \"{name}\" with no open span on tid {tid}"
                        ));
                    }
                }
            }
            "C" => {
                tracks.insert(name.to_owned());
            }
            other => {
                return Err(format!("event {index}: unsupported phase \"{other}\""));
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span \"{open}\" left open on tid {tid}"));
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        lanes: span_tids.len(),
        max_depth,
        counter_tracks: tracks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, lane: u32, depth: u32, start_us: u64, dur_us: u64) -> ProfSpan {
        ProfSpan {
            name: name.to_owned(),
            lane,
            depth,
            start_us,
            dur_us,
            self_us: dur_us,
        }
    }

    #[test]
    fn export_then_check_round_trips() {
        let spans = vec![
            span("outer", 0, 0, 0, 100),
            span("mid", 0, 1, 10, 50),
            span("leaf", 0, 2, 20, 10),
            span("worker", 1, 0, 5, 40),
        ];
        let counters = vec![
            CounterSample {
                track: "dram.cycles".to_owned(),
                ts_us: 50,
                value: 1000.0,
            },
            CounterSample {
                track: "dram.requests.served".to_owned(),
                ts_us: 50,
                value: 64.0,
            },
        ];
        let text = trace_json(&spans, &counters);
        let check = check_trace(&text).expect("trace must validate");
        assert_eq!(check.lanes, 2);
        assert_eq!(check.max_depth, 3);
        assert_eq!(check.counter_tracks, 2);
        // 4 spans * 2 + 2 counters + 3 metadata (process + 2 lanes).
        assert_eq!(check.events, 13);
        // Determinism: same input, same bytes.
        assert_eq!(text, trace_json(&spans, &counters));
    }

    #[test]
    fn zero_width_adjacency_stays_well_nested() {
        // Sibling B at the same ts as the previous sibling's E: E must be
        // emitted first or the stack check would interleave them.
        let spans = vec![
            span("parent", 0, 0, 0, 20),
            span("a", 0, 1, 0, 10),
            span("b", 0, 1, 10, 10),
        ];
        let text = trace_json(&spans, &[]);
        let check = check_trace(&text).expect("adjacent siblings must nest");
        assert_eq!(check.max_depth, 2);
    }

    #[test]
    fn zero_duration_stack_stays_well_nested() {
        // Sub-microsecond scopes round to dur 0; the 1 µs render floor
        // keeps each E strictly after its own B.
        let spans = vec![
            span("w", 1, 0, 7, 0),
            span("inner", 1, 1, 7, 0),
            span("leaf", 1, 2, 7, 0),
        ];
        let check = check_trace(&trace_json(&spans, &[])).expect("zero-width stack must nest");
        assert_eq!(check.max_depth, 3);
    }

    #[test]
    fn check_rejects_unbalanced_and_backwards() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":1,"ts":0}
        ]}"#;
        assert!(check_trace(unbalanced).is_err());
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":1,"ts":10},
            {"name":"a","ph":"E","pid":1,"tid":1,"ts":5}
        ]}"#;
        assert!(check_trace(backwards).is_err());
        let mismatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":1,"ts":0},
            {"name":"b","ph":"E","pid":1,"tid":1,"ts":5}
        ]}"#;
        assert!(check_trace(mismatched).is_err());
        assert!(check_trace("not json").is_err());
    }
}
