//! Process-global scoped-span event log.
//!
//! Disabled by default: [`TraceLog::span`] costs one relaxed atomic load
//! and allocates nothing until tracing is enabled. When enabled, a span
//! guard records its name, start offset, duration, and any counters
//! attached via [`SpanGuard::counter`] when it drops.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Microseconds from trace start to span begin.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Counters attached during the span.
    pub counters: Vec<(String, f64)>,
}

/// The global trace log.
pub struct TraceLog;

impl TraceLog {
    /// Turns tracing on.
    pub fn enable() {
        epoch();
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns tracing off (already-recorded events are kept).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Opens a span; it records itself when dropped. Free when tracing
    /// is disabled.
    pub fn span(name: &str) -> SpanGuard {
        if !Self::is_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(SpanInner {
                name: name.to_owned(),
                started: Instant::now(),
                counters: Vec::new(),
            }),
        }
    }

    /// Takes all recorded events, leaving the log empty.
    pub fn drain() -> Vec<TraceEvent> {
        std::mem::take(&mut *events().lock().expect("trace log poisoned"))
    }
}

struct SpanInner {
    name: String,
    started: Instant,
    counters: Vec<(String, f64)>,
}

/// Guard returned by [`TraceLog::span`]; records the span on drop.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches a named counter to the span (no-op when disabled).
    pub fn counter(&mut self, name: &str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.counters.push((name.to_owned(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let start_us = inner
            .started
            .duration_since(epoch())
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let duration_us = inner
            .started
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let event = TraceEvent {
            name: inner.name,
            start_us,
            duration_us,
            counters: inner.counters,
        };
        events().lock().expect("trace log poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single test covers the whole lifecycle because the log is
    // process-global and tests run concurrently.
    #[test]
    fn span_lifecycle() {
        assert!(!TraceLog::is_enabled());
        {
            let _off = TraceLog::span("ignored-while-disabled");
        }
        TraceLog::enable();
        {
            let mut span = TraceLog::span("fit");
            span.counter("points", 12.0);
        }
        TraceLog::disable();
        {
            let _off = TraceLog::span("ignored-again");
        }
        let recorded = TraceLog::drain();
        let fit: Vec<_> = recorded.iter().filter(|e| e.name == "fit").collect();
        assert_eq!(fit.len(), 1);
        assert_eq!(fit[0].counters, vec![("points".to_owned(), 12.0)]);
        assert!(!recorded.iter().any(|e| e.name.starts_with("ignored")));
        assert!(TraceLog::drain().is_empty());
    }
}
