//! The recorder hook trait and its two implementations.
//!
//! The DRAM controller drives a `Recorder` through four hooks:
//! [`Recorder::on_serve`] per completed request, [`Recorder::on_stall`]
//! per channel scheduling decision, [`Recorder::on_tick`] once per cycle
//! with the current queue depth, and [`Recorder::on_reset`] when stats
//! are cleared at the end of a warmup window. Hooks take plain `usize`
//! source ids and telemetry-local enums so this crate stays free of any
//! dependency on the simulator crates.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Row-buffer outcome of a served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowEvent {
    /// Request hit the open row.
    Hit,
    /// Row buffer was empty; a fresh activate.
    Miss,
    /// A different row was open and had to be closed first.
    Conflict,
}

/// Outcome of one channel-scheduler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallEvent {
    /// A command was issued.
    Issued,
    /// A candidate existed but the data bus was busy.
    BusBlocked,
    /// Requests were queued but none was ready (bank timing).
    NoCandidate,
    /// The queue was empty.
    Idle,
}

/// Receives simulator events. All hooks default to no-ops so partial
/// recorders stay small. `Debug` is required so simulator structs holding
/// a boxed recorder can keep deriving `Debug`; `Send` so those structs
/// (and boxed memory engines wrapping them) can cross threads.
pub trait Recorder: std::fmt::Debug + Send {
    /// A request from `source` completed, moving `bytes` after waiting
    /// `latency` cycles, with row-buffer outcome `row`.
    fn on_serve(&mut self, cycle: u64, source: usize, bytes: u64, latency: u64, row: RowEvent) {
        let _ = (cycle, source, bytes, latency, row);
    }

    /// One channel-scheduler decision this cycle.
    fn on_stall(&mut self, cycle: u64, kind: StallEvent) {
        let _ = (cycle, kind);
    }

    /// Called once per controller tick with the total queued requests.
    fn on_tick(&mut self, cycle: u64, queue_depth: usize) {
        let _ = (cycle, queue_depth);
    }

    /// Aggregate stats were cleared (end of warmup); drop epoch history
    /// so the report covers exactly the measured window.
    fn on_reset(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// Flush any partial epoch at end of run.
    fn finish(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The accumulated report, if this recorder produces one.
    fn report(&self) -> Option<TelemetryReport> {
        None
    }
}

/// Records nothing. The controller also accepts "no recorder at all"
/// (an `Option` left `None`); this type exists for call sites that need
/// a `Recorder` value unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// One epoch's worth of aggregated samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Epoch index since the last reset.
    pub epoch: u64,
    /// First cycle of the epoch (inclusive).
    pub start_cycle: u64,
    /// Last cycle of the epoch (exclusive).
    pub end_cycle: u64,
    /// Bytes served per source this epoch.
    pub bytes_per_source: BTreeMap<usize, u64>,
    /// Requests served this epoch.
    pub served: u64,
    /// Row-buffer hits this epoch.
    pub row_hits: u64,
    /// Row-buffer misses this epoch.
    pub row_misses: u64,
    /// Row-buffer conflicts this epoch.
    pub row_conflicts: u64,
    /// Channel-cycles that issued a command.
    pub issued: u64,
    /// Channel-cycles blocked on the data bus.
    pub bus_blocked: u64,
    /// Channel-cycles with queued work but no ready candidate.
    pub no_candidate: u64,
    /// Channel-cycles with an empty queue.
    pub idle: u64,
    /// Mean queued requests over the epoch's ticks.
    pub queue_depth_avg: f64,
    /// Peak queued requests over the epoch's ticks.
    pub queue_depth_max: u64,
}

impl EpochSample {
    /// Total bytes served this epoch across all sources.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_source.values().sum()
    }

    /// Adds another controller's sample for the same epoch (used when
    /// merging per-channel-group reports in multi-controller runs).
    fn absorb(&mut self, other: &EpochSample) {
        for (&src, &bytes) in &other.bytes_per_source {
            *self.bytes_per_source.entry(src).or_insert(0) += bytes;
        }
        self.served += other.served;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.issued += other.issued;
        self.bus_blocked += other.bus_blocked;
        self.no_candidate += other.no_candidate;
        self.idle += other.idle;
        self.queue_depth_avg += other.queue_depth_avg;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.end_cycle = self.end_cycle.max(other.end_cycle);
    }
}

/// The epoch time-series a run produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Cycle at which recording (re)started.
    pub base_cycle: u64,
    /// Samples in epoch order.
    pub epochs: Vec<EpochSample>,
}

impl TelemetryReport {
    /// Total bytes across all epochs (for reconciliation against
    /// aggregate stats).
    pub fn total_bytes(&self) -> u64 {
        self.epochs.iter().map(EpochSample::total_bytes).sum()
    }

    /// Sorted set of source ids appearing anywhere in the series.
    pub fn sources(&self) -> Vec<usize> {
        let mut set = std::collections::BTreeSet::new();
        for e in &self.epochs {
            set.extend(e.bytes_per_source.keys().copied());
        }
        set.into_iter().collect()
    }

    /// Merges another report (same epoch length, e.g. from a second
    /// memory controller) by epoch index.
    pub fn merge(&mut self, other: &TelemetryReport) {
        if self.epochs.is_empty() {
            *self = other.clone();
            return;
        }
        for sample in &other.epochs {
            match self.epochs.iter_mut().find(|e| e.epoch == sample.epoch) {
                Some(existing) => existing.absorb(sample),
                None => self.epochs.push(sample.clone()),
            }
        }
        self.epochs.sort_by_key(|e| e.epoch);
    }
}

/// Accumulates events into fixed-length epochs.
#[derive(Debug, Clone)]
pub struct EpochRecorder {
    epoch_cycles: u64,
    base_cycle: u64,
    epochs: Vec<EpochSample>,
    current: EpochSample,
    ticks_in_epoch: u64,
    depth_sum: u64,
    open: bool,
}

impl EpochRecorder {
    /// A recorder sampling every `epoch_cycles` cycles (minimum 1).
    pub fn new(epoch_cycles: u64) -> Self {
        EpochRecorder {
            epoch_cycles: epoch_cycles.max(1),
            base_cycle: 0,
            epochs: Vec::new(),
            current: EpochSample::default(),
            ticks_in_epoch: 0,
            depth_sum: 0,
            open: false,
        }
    }

    /// Epoch index containing `cycle`.
    fn epoch_of(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.base_cycle) / self.epoch_cycles
    }

    /// Closes the current epoch and opens the one containing `cycle`.
    fn roll_to(&mut self, cycle: u64) {
        let target = self.epoch_of(cycle);
        if self.open && self.current.epoch == target {
            return;
        }
        if self.open {
            self.flush_current();
        }
        self.current = EpochSample {
            epoch: target,
            start_cycle: self.base_cycle + target * self.epoch_cycles,
            end_cycle: self.base_cycle + (target + 1) * self.epoch_cycles,
            ..EpochSample::default()
        };
        self.ticks_in_epoch = 0;
        self.depth_sum = 0;
        self.open = true;
    }

    fn flush_current(&mut self) {
        if self.ticks_in_epoch > 0 {
            self.current.queue_depth_avg = self.depth_sum as f64 / self.ticks_in_epoch as f64;
        }
        self.epochs.push(std::mem::take(&mut self.current));
    }
}

impl Recorder for EpochRecorder {
    fn on_serve(&mut self, cycle: u64, source: usize, bytes: u64, latency: u64, row: RowEvent) {
        let _ = latency;
        self.roll_to(cycle);
        *self.current.bytes_per_source.entry(source).or_insert(0) += bytes;
        self.current.served += 1;
        match row {
            RowEvent::Hit => self.current.row_hits += 1,
            RowEvent::Miss => self.current.row_misses += 1,
            RowEvent::Conflict => self.current.row_conflicts += 1,
        }
    }

    fn on_stall(&mut self, cycle: u64, kind: StallEvent) {
        self.roll_to(cycle);
        match kind {
            StallEvent::Issued => self.current.issued += 1,
            StallEvent::BusBlocked => self.current.bus_blocked += 1,
            StallEvent::NoCandidate => self.current.no_candidate += 1,
            StallEvent::Idle => self.current.idle += 1,
        }
    }

    fn on_tick(&mut self, cycle: u64, queue_depth: usize) {
        self.roll_to(cycle);
        self.ticks_in_epoch += 1;
        self.depth_sum += queue_depth as u64;
        self.current.queue_depth_max = self.current.queue_depth_max.max(queue_depth as u64);
    }

    fn on_reset(&mut self, cycle: u64) {
        self.base_cycle = cycle;
        self.epochs.clear();
        self.current = EpochSample::default();
        self.ticks_in_epoch = 0;
        self.depth_sum = 0;
        self.open = false;
    }

    fn finish(&mut self, cycle: u64) {
        let _ = cycle;
        if self.open {
            self.flush_current();
            self.open = false;
        }
    }

    fn report(&self) -> Option<TelemetryReport> {
        Some(TelemetryReport {
            epoch_cycles: self.epoch_cycles,
            base_cycle: self.base_cycle,
            epochs: self.epochs.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_boundaries_split_samples() {
        let mut r = EpochRecorder::new(100);
        r.on_serve(10, 0, 64, 5, RowEvent::Hit);
        r.on_serve(99, 1, 64, 5, RowEvent::Miss);
        r.on_serve(100, 0, 64, 5, RowEvent::Conflict);
        r.on_serve(250, 0, 64, 5, RowEvent::Hit);
        r.finish(251);
        let report = r.report().unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs[0].served, 2);
        assert_eq!(report.epochs[0].start_cycle, 0);
        assert_eq!(report.epochs[0].end_cycle, 100);
        assert_eq!(report.epochs[1].epoch, 1);
        assert_eq!(report.epochs[1].row_conflicts, 1);
        assert_eq!(report.epochs[2].epoch, 2);
        assert_eq!(report.total_bytes(), 256);
    }

    #[test]
    fn queue_depth_averages_per_epoch() {
        let mut r = EpochRecorder::new(4);
        for (cycle, depth) in [(0, 2), (1, 4), (2, 6), (3, 8), (4, 100)] {
            r.on_tick(cycle, depth);
        }
        r.finish(5);
        let report = r.report().unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].queue_depth_avg, 5.0);
        assert_eq!(report.epochs[0].queue_depth_max, 8);
        assert_eq!(report.epochs[1].queue_depth_max, 100);
    }

    #[test]
    fn reset_drops_history_and_rebases() {
        let mut r = EpochRecorder::new(50);
        r.on_serve(10, 0, 64, 1, RowEvent::Hit);
        r.on_reset(120);
        r.on_serve(130, 0, 64, 1, RowEvent::Hit);
        r.finish(200);
        let report = r.report().unwrap();
        assert_eq!(report.base_cycle, 120);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs[0].start_cycle, 120);
        assert_eq!(report.total_bytes(), 64);
    }

    #[test]
    fn zero_length_run_reports_empty() {
        let mut r = EpochRecorder::new(1000);
        r.finish(0);
        let report = r.report().unwrap();
        assert!(report.epochs.is_empty());
        assert_eq!(report.total_bytes(), 0);
        assert!(report.sources().is_empty());
    }

    #[test]
    fn merge_combines_by_epoch_index() {
        let mut a = EpochRecorder::new(100);
        a.on_serve(10, 0, 64, 1, RowEvent::Hit);
        a.on_serve(110, 0, 64, 1, RowEvent::Hit);
        a.finish(200);
        let mut b = EpochRecorder::new(100);
        b.on_serve(20, 1, 32, 1, RowEvent::Miss);
        b.finish(200);
        let mut report = a.report().unwrap();
        report.merge(&b.report().unwrap());
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].total_bytes(), 96);
        assert_eq!(report.epochs[0].row_hits, 1);
        assert_eq!(report.epochs[0].row_misses, 1);
        assert_eq!(report.sources(), vec![0, 1]);
        assert_eq!(report.total_bytes(), 160);
    }

    #[test]
    fn noop_recorder_reports_nothing() {
        let mut r = NoopRecorder;
        r.on_serve(0, 0, 64, 1, RowEvent::Hit);
        r.finish(10);
        assert!(r.report().is_none());
    }
}
