//! Prediction-audit ledger: model-accuracy observability.
//!
//! The PCCS model's whole value is predictive accuracy, yet predictions
//! and ground truth are produced in different places: models predict in
//! the experiments, the scheduling replay, and the serving runtime, while
//! achieved values come out of the co-run simulator (or the serving
//! clock). This module is where the two meet. Every prediction site
//! resolves its forecast into one [`AuditRecord`] — predicted value,
//! achieved value, the three-region operating point the prediction came
//! from, and full SoC/PU/workload/MC-policy/engine provenance — and
//! pushes it into a process-global ledger.
//!
//! On top of the ledger sit the accuracy scorecards: [`scorecard`] slices
//! the records per SoC × PU × region × policy and reports MAE, MAPE,
//! p95 absolute error, and worst-case absolute error per slice (plus an
//! `(all)` aggregate). [`jsonl`] streams raw records through the
//! standard tagged-JSONL exporter; [`render_scorecard`] is the
//! human-readable table behind `pccs audit`.
//!
//! Like the [`crate::metrics`] registry, the ledger is process-global and
//! deliberately not a hot-path structure: emitters record once per
//! resolved prediction (per co-run, per completed job, per served
//! bundle), never per cycle. It is **disabled by default** — when off,
//! [`record`] is one relaxed atomic load — and switched on by the audit
//! consumers (`pccs audit`, `repro --audit-out`, the accuracy harness),
//! which is also how the bench probe measures its overhead.

use crate::export;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn ledger() -> &'static Mutex<Vec<AuditRecord>> {
    static LEDGER: OnceLock<Mutex<Vec<AuditRecord>>> = OnceLock::new();
    LEDGER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns audit recording on or off process-wide (default: **off**). When
/// off, every [`record`] call is one relaxed atomic load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether audit recording is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One resolved (prediction, ground-truth) pair with its provenance.
/// Unknown provenance fields carry `"-"` so slicing stays total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Emitting subsystem: `"corun"`, `"sched"`, `"serve"`, `"validate"`.
    pub source: String,
    /// SoC the pair was measured on (preset slug or display name).
    pub soc: String,
    /// Processing-unit name ("CPU", "GPU", "DLA").
    pub pu: String,
    /// Kernel / benchmark / request-class label.
    pub workload: String,
    /// Three-region operating point of the prediction ("minor", "normal",
    /// "intensive"), or `"-"` when the emitter has no model view.
    pub region: String,
    /// Memory-controller or placement policy label.
    pub policy: String,
    /// Memory-engine driver ("cycle" or "event").
    pub engine: String,
    /// What the pair measures: `"rs_pct"` (relative speed, percent) or
    /// `"cycles"` (service time, memory cycles).
    pub unit: String,
    /// The model's forecast.
    pub predicted: f64,
    /// The value the simulator or replay actually achieved.
    pub achieved: f64,
}

impl AuditRecord {
    /// A record with the given pair and `"-"` provenance; fill the rest
    /// with the `with_*` builders.
    pub fn new(source: &str, unit: &str, predicted: f64, achieved: f64) -> Self {
        Self {
            source: source.to_owned(),
            soc: "-".to_owned(),
            pu: "-".to_owned(),
            workload: "-".to_owned(),
            region: "-".to_owned(),
            policy: "-".to_owned(),
            engine: "-".to_owned(),
            unit: unit.to_owned(),
            predicted,
            achieved,
        }
    }

    /// Sets the SoC label, chaining.
    pub fn with_soc(mut self, soc: &str) -> Self {
        self.soc = soc.to_owned();
        self
    }

    /// Sets the PU name, chaining.
    pub fn with_pu(mut self, pu: &str) -> Self {
        self.pu = pu.to_owned();
        self
    }

    /// Sets the workload label, chaining.
    pub fn with_workload(mut self, workload: &str) -> Self {
        self.workload = workload.to_owned();
        self
    }

    /// Sets the contention-region label, chaining.
    pub fn with_region(mut self, region: &str) -> Self {
        self.region = region.to_owned();
        self
    }

    /// Sets the policy label, chaining.
    pub fn with_policy(mut self, policy: &str) -> Self {
        self.policy = policy.to_owned();
        self
    }

    /// Sets the memory-engine label, chaining.
    pub fn with_engine(mut self, engine: &str) -> Self {
        self.engine = engine.to_owned();
        self
    }

    /// Absolute prediction error, in the record's unit.
    pub fn abs_error(&self) -> f64 {
        (self.predicted - self.achieved).abs()
    }

    /// Absolute percentage error relative to the achieved value, or `None`
    /// when the achieved value is zero.
    pub fn pct_error(&self) -> Option<f64> {
        if self.achieved == 0.0 {
            None
        } else {
            Some(100.0 * self.abs_error() / self.achieved.abs())
        }
    }
}

/// Appends one record to the ledger. A no-op (one relaxed atomic load)
/// when recording is disabled.
pub fn record(rec: AuditRecord) {
    if is_enabled() {
        ledger().lock().expect("audit ledger poisoned").push(rec);
    }
}

/// A copy of every record currently in the ledger, in emission order.
pub fn snapshot() -> Vec<AuditRecord> {
    ledger().lock().expect("audit ledger poisoned").clone()
}

/// Removes and returns every record, leaving the ledger empty.
pub fn drain() -> Vec<AuditRecord> {
    std::mem::take(&mut *ledger().lock().expect("audit ledger poisoned"))
}

/// Number of records currently held.
pub fn len() -> usize {
    ledger().lock().expect("audit ledger poisoned").len()
}

/// Empties the ledger. Used by the audit harness so a scorecard covers
/// exactly one measured run.
pub fn reset() {
    ledger().lock().expect("audit ledger poisoned").clear();
}

/// Accuracy statistics of one SoC × PU × region × policy slice (or the
/// `(all)` aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceScore {
    /// SoC label of the slice, `"(all)"` for the aggregate.
    pub soc: String,
    /// PU label of the slice.
    pub pu: String,
    /// Region label of the slice.
    pub region: String,
    /// Policy label of the slice.
    pub policy: String,
    /// Records in the slice.
    pub samples: u64,
    /// Mean absolute error (in the records' unit).
    pub mae: f64,
    /// Mean absolute percentage error vs the achieved values (records
    /// with an achieved value of zero are excluded from this mean).
    pub mape_pct: f64,
    /// 95th-percentile absolute error (nearest-rank).
    pub p95_abs_error: f64,
    /// Worst-case absolute error.
    pub worst_abs_error: f64,
}

impl SliceScore {
    fn from_errors(labels: (&str, &str, &str, &str), records: &[&AuditRecord]) -> Self {
        let mut abs: Vec<f64> = records.iter().map(|r| r.abs_error()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let n = abs.len();
        let mae = abs.iter().sum::<f64>() / n.max(1) as f64;
        let pct: Vec<f64> = records.iter().filter_map(|r| r.pct_error()).collect();
        let mape_pct = if pct.is_empty() {
            0.0
        } else {
            pct.iter().sum::<f64>() / pct.len() as f64
        };
        // Nearest-rank p95: the smallest error that bounds ≥95% of samples.
        let p95_abs_error = if n == 0 {
            0.0
        } else {
            let rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
            abs[rank - 1]
        };
        Self {
            soc: labels.0.to_owned(),
            pu: labels.1.to_owned(),
            region: labels.2.to_owned(),
            policy: labels.3.to_owned(),
            samples: n as u64,
            mae,
            mape_pct,
            p95_abs_error,
            worst_abs_error: abs.last().copied().unwrap_or(0.0),
        }
    }
}

/// A full accuracy scorecard: one [`SliceScore`] per populated
/// SoC × PU × region × policy combination (in sorted key order, so the
/// same records always render identically) plus the `(all)` aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scorecard {
    /// Per-slice scores, sorted by (soc, pu, region, policy).
    pub slices: Vec<SliceScore>,
    /// Aggregate over every record.
    pub overall: SliceScore,
}

/// Slices `records` per SoC × PU × region × policy and scores each slice.
pub fn scorecard(records: &[AuditRecord]) -> Scorecard {
    let mut groups: BTreeMap<(String, String, String, String), Vec<&AuditRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((
                r.soc.clone(),
                r.pu.clone(),
                r.region.clone(),
                r.policy.clone(),
            ))
            .or_default()
            .push(r);
    }
    let slices = groups
        .iter()
        .map(|((soc, pu, region, policy), rs)| {
            SliceScore::from_errors((soc, pu, region, policy), rs)
        })
        .collect();
    let all: Vec<&AuditRecord> = records.iter().collect();
    Scorecard {
        slices,
        overall: SliceScore::from_errors(("(all)", "(all)", "(all)", "(all)"), &all),
    }
}

/// Mean absolute error over `records`, or `0.0` when empty.
pub fn mean_abs_error<'a, I: IntoIterator<Item = &'a AuditRecord>>(records: I) -> f64 {
    let errs: Vec<f64> = records.into_iter().map(AuditRecord::abs_error).collect();
    if errs.is_empty() {
        0.0
    } else {
        errs.iter().sum::<f64>() / errs.len() as f64
    }
}

/// Renders raw records as a tagged JSONL stream (`{"type":"audit", ...}`
/// per line), composing with the other telemetry event streams.
pub fn jsonl(records: &[AuditRecord]) -> String {
    export::jsonl_records("audit", records)
}

/// Renders a scorecard as an aligned text table, slices first and the
/// `(all)` aggregate last.
pub fn render_scorecard(card: &Scorecard) -> String {
    const HEADERS: [&str; 9] = [
        "soc", "pu", "region", "policy", "n", "MAE", "MAPE%", "p95", "worst",
    ];
    let fmt_row = |s: &SliceScore| -> [String; 9] {
        [
            s.soc.clone(),
            s.pu.clone(),
            s.region.clone(),
            s.policy.clone(),
            s.samples.to_string(),
            format!("{:.2}", s.mae),
            format!("{:.2}", s.mape_pct),
            format!("{:.2}", s.p95_abs_error),
            format!("{:.2}", s.worst_abs_error),
        ]
    };
    let mut rows: Vec<[String; 9]> = card.slices.iter().map(fmt_row).collect();
    rows.push(fmt_row(&card.overall));
    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_line = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = *w));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_line(&mut out, &HEADERS.map(str::to_owned));
    for row in &rows {
        render_line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The ledger is process-global and tests run concurrently: serialize
    // every test that toggles the enable switch or drains the ledger.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: StdMutex<()> = StdMutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn rec(soc: &str, region: &str, predicted: f64, achieved: f64) -> AuditRecord {
        AuditRecord::new("test", "rs_pct", predicted, achieved)
            .with_soc(soc)
            .with_pu("GPU")
            .with_region(region)
            .with_policy("ATLAS")
            .with_engine("cycle")
    }

    #[test]
    fn ledger_records_only_when_enabled() {
        let _g = guard();
        reset();
        set_enabled(false);
        record(rec("xavier", "normal", 90.0, 88.0));
        assert_eq!(len(), 0, "disabled ledger must drop records");
        set_enabled(true);
        record(rec("xavier", "normal", 90.0, 88.0));
        assert_eq!(len(), 1);
        let drained = drain();
        set_enabled(false);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].soc, "xavier");
        assert_eq!(len(), 0, "drain empties the ledger");
    }

    #[test]
    fn snapshot_preserves_emission_order() {
        let _g = guard();
        reset();
        set_enabled(true);
        record(rec("a", "minor", 100.0, 100.0));
        record(rec("b", "normal", 80.0, 70.0));
        let snap = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].soc, "a");
        assert_eq!(snap[1].soc, "b");
    }

    #[test]
    fn record_error_accessors() {
        let r = rec("xavier", "normal", 90.0, 80.0);
        assert!((r.abs_error() - 10.0).abs() < 1e-12);
        assert!((r.pct_error().unwrap() - 12.5).abs() < 1e-12);
        let zero = AuditRecord::new("test", "cycles", 5.0, 0.0);
        assert_eq!(zero.pct_error(), None);
        assert_eq!(zero.soc, "-", "unfilled provenance defaults to '-'");
    }

    #[test]
    fn scorecard_slices_and_aggregates() {
        let records = vec![
            rec("xavier", "normal", 90.0, 80.0),    // err 10
            rec("xavier", "normal", 85.0, 80.0),    // err 5
            rec("xavier", "intensive", 50.0, 48.0), // err 2
        ];
        let card = scorecard(&records);
        assert_eq!(card.slices.len(), 2, "two populated slices");
        // BTreeMap order: "intensive" < "normal".
        assert_eq!(card.slices[0].region, "intensive");
        assert_eq!(card.slices[0].samples, 1);
        assert!((card.slices[0].mae - 2.0).abs() < 1e-12);
        let normal = &card.slices[1];
        assert_eq!(normal.samples, 2);
        assert!((normal.mae - 7.5).abs() < 1e-12);
        assert!((normal.worst_abs_error - 10.0).abs() < 1e-12);
        assert!((normal.p95_abs_error - 10.0).abs() < 1e-12);
        assert_eq!(card.overall.samples, 3);
        assert!((card.overall.mae - 17.0 / 3.0).abs() < 1e-12);
        assert!((card.overall.worst_abs_error - 10.0).abs() < 1e-12);
        // MAPE of the overall: (12.5 + 6.25 + 100*2/48) / 3.
        let expect = (12.5 + 6.25 + 100.0 * 2.0 / 48.0) / 3.0;
        assert!((card.overall.mape_pct - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_scorecard_is_total() {
        let card = scorecard(&[]);
        assert!(card.slices.is_empty());
        assert_eq!(card.overall.samples, 0);
        assert_eq!(card.overall.mae, 0.0);
        assert_eq!(card.overall.p95_abs_error, 0.0);
        assert!((mean_abs_error(Vec::new().iter())).abs() < 1e-12);
    }

    #[test]
    fn p95_uses_nearest_rank() {
        // 20 records with errors 1..=20: nearest-rank p95 is the 19th.
        let records: Vec<AuditRecord> = (1..=20)
            .map(|i| rec("x", "normal", 100.0, 100.0 - i as f64))
            .collect();
        let card = scorecard(&records);
        assert!((card.overall.p95_abs_error - 19.0).abs() < 1e-12);
        assert!((card.overall.worst_abs_error - 20.0).abs() < 1e-12);
    }

    #[test]
    fn exporters_render_records_and_tables() {
        let records = vec![rec("xavier", "normal", 90.0, 80.0)];
        let lines = jsonl(&records);
        assert!(lines.contains("\"type\":\"audit\""));
        assert!(lines.contains("\"region\":\"normal\""));
        assert!(lines.ends_with('\n'));
        let card = scorecard(&records);
        let table = render_scorecard(&card);
        assert!(table.contains("soc"), "header present");
        assert!(table.contains("(all)"), "aggregate row present");
        assert!(table.contains("xavier"));
        let back: Vec<SliceScore> =
            vec![serde_json::from_str(&serde_json::to_string(&card.overall).unwrap()).unwrap()];
        assert_eq!(back[0], card.overall, "scores round-trip through JSON");
    }
}
