//! Log-binned latency histogram.
//!
//! Bins follow the HDR scheme: values below `2^SUB_BITS` get exact
//! single-value bins, and every octave above that is split into
//! `2^SUB_BITS` sub-bins, so relative error is bounded by
//! `2^-SUB_BITS` (12.5%) at any magnitude while the whole `u64` range
//! fits in a few hundred bins.

use serde::{Deserialize, Serialize};

/// Sub-bins per octave as a power of two (8 sub-bins).
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_COUNT - 1;

/// A log-binned histogram of `u64` samples (cycles, here).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bin counts, truncated after the highest occupied bin.
    counts: Vec<u64>,
    /// Total recorded samples.
    count: u64,
    /// Sum of all samples (for exact means).
    sum: u64,
    /// Exact maximum sample.
    max: u64,
}

/// Bin index for a value.
fn bin_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    (((msb - SUB_BITS + 1) << SUB_BITS) + ((v >> shift) & SUB_MASK) as u32) as usize
}

/// Inclusive value range `[lo, hi]` covered by a bin.
fn bin_range(bin: usize) -> (u64, u64) {
    let bin = bin as u64;
    if bin < SUB_COUNT {
        return (bin, bin);
    }
    let octave = (bin >> SUB_BITS) as u32;
    let sub = bin & SUB_MASK;
    let shift = octave - 1;
    let lo = (SUB_COUNT + sub) << shift;
    (lo, lo + (1 << shift) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bin = bin_of(value);
        if self.counts.len() <= bin {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of all samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at or below which `p` percent of samples fall (`p` in
    /// `[0, 100]`), or `None` when the histogram is empty. A single-sample
    /// histogram reports the exact sample (the sum) at every percentile
    /// rather than a bin midpoint; with two or more samples the result is
    /// the upper edge of the containing bin, clamped to the exact maximum.
    pub fn try_percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            // One sample: sum *is* that sample, exactly.
            return Some(self.sum);
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bin_range(bin).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// [`LatencyHistogram::try_percentile`] with empty mapped to 0, for
    /// callers that render tables and want a numeric placeholder.
    pub fn percentile(&self, p: f64) -> u64 {
        self.try_percentile(p).unwrap_or(0)
    }

    /// Median sample (upper bin edge).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile sample (upper bin edge).
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile sample (upper bin edge).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Occupied bins as `(range_lo, range_hi, count)` triples, for export.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(bin, &c)| {
                let (lo, hi) = bin_range(bin);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bin_exactly() {
        for v in 0..16u64 {
            assert_eq!(bin_of(v) as u64, v, "value {v}");
            assert_eq!(bin_range(v as usize), (v, v));
        }
    }

    #[test]
    fn bins_are_contiguous_and_cover() {
        // Every value maps to a bin whose range contains it, and bin
        // ranges tile without gaps.
        let mut prev_hi = None;
        for bin in 0..200 {
            let (lo, hi) = bin_range(bin);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bin {bin}");
            }
            assert_eq!(bin_of(lo), bin);
            assert_eq!(bin_of(hi), bin);
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[17u64, 100, 999, 12_345, 1 << 20, (1 << 40) + 12_345] {
            let (lo, hi) = bin_range(bin_of(v));
            assert!(lo <= v && v <= hi);
            assert!((hi - lo) as f64 <= v as f64 / SUB_COUNT as f64 + 1.0);
        }
    }

    #[test]
    fn percentiles_on_uniform_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        assert!((450..=560).contains(&p50), "p50 = {p50}");
        let p95 = h.p95();
        assert!((900..=1000).contains(&p95), "p95 = {p95}");
        let p99 = h.p99();
        assert!((950..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(100.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        // try_percentile distinguishes "no data" from "zero latency".
        assert_eq!(h.try_percentile(50.0), None);
        assert_eq!(h.try_percentile(95.0), None);
        assert_eq!(h.try_percentile(99.0), None);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        // 12_345 sits in a log bin ~1.5k wide; the single-sample path must
        // report the sample itself, not a bin edge.
        h.record(12_345);
        assert_eq!(h.try_percentile(50.0), Some(12_345));
        assert_eq!(h.try_percentile(95.0), Some(12_345));
        assert_eq!(h.try_percentile(99.0), Some(12_345));
        assert_eq!(h.p50(), 12_345);
        assert_eq!(h.p99(), 12_345);
        assert_eq!(h.max(), 12_345);
    }

    #[test]
    fn two_sample_percentiles_split_by_rank() {
        let mut h = LatencyHistogram::new();
        // Two exact-bin samples (below 2^SUB_BITS each bin holds one
        // value), so bin edges are the samples themselves: p50's rank-1
        // lands on the low sample, p95/p99's rank-2 on the high one.
        h.record(3);
        h.record(7);
        assert_eq!(h.try_percentile(50.0), Some(3));
        assert_eq!(h.try_percentile(95.0), Some(7));
        assert_eq!(h.try_percentile(99.0), Some(7));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [1u64, 5, 100, 2000, 2000, 65_000] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 100, 999, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 7, 8, 63, 64, 12_345] {
            h.record(v);
        }
        let text = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
    }
}
