//! Memory-subsystem design exploration (Section 3.4, "Memory sub-system
//! parameters").
//!
//! Architects adjust channel count and I/O clock; PCCS adapts by *linear
//! parameter scaling* (Section 3.3) instead of re-running the co-located
//! calibration on every candidate: the model constructed at the nominal
//! memory configuration is scaled by the candidate-to-nominal peak-bandwidth
//! ratio, standalone demand is re-profiled (standalone profiling needs no
//! co-runs), and the scaled model predicts the co-run slowdown.

use pccs_core::{PccsModel, SlowdownModel};
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// One candidate memory configuration and its evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryDesignPoint {
    /// Channel count of the candidate.
    pub channels: usize,
    /// Memory clock relative to the nominal configuration.
    pub clock_ratio: f64,
    /// Theoretical peak of the candidate (GB/s).
    pub peak_gbps: f64,
    /// Kernel's standalone demand re-profiled on the candidate (GB/s).
    pub demand_gbps: f64,
    /// Scaled-model predicted co-run relative speed (%).
    pub predicted_rs_pct: f64,
    /// Simulated ground-truth co-run relative speed (%), when measured.
    pub actual_rs_pct: Option<f64>,
}

/// Evaluates candidate `(channels, clock_ratio)` memory configurations for
/// `kernel` on PU `pu_idx` under `external_gbps` of co-runner demand,
/// using `nominal_model` (constructed on `soc`'s nominal memory) scaled per
/// candidate. With `measure_truth`, each candidate is also co-run in the
/// simulator.
///
/// # Panics
///
/// Panics if `candidates` is empty or a candidate has zero channels or a
/// non-positive clock ratio.
#[allow(clippy::too_many_arguments)] // mirrors the exploration's knobs 1:1
pub fn explore_memory_configs(
    soc: &SocConfig,
    pu_idx: usize,
    kernel: &KernelDesc,
    nominal_model: &PccsModel,
    external_gbps: f64,
    candidates: &[(usize, f64)],
    horizon: u64,
    measure_truth: bool,
) -> Vec<MemoryDesignPoint> {
    assert!(!candidates.is_empty(), "at least one candidate required");
    let nominal_peak = soc.peak_bw_gbps();

    candidates
        .iter()
        .map(|&(channels, clock_ratio)| {
            assert!(channels > 0 && clock_ratio > 0.0, "invalid candidate");
            let dram = soc
                .dram
                .with_channels(channels)
                .with_clock_ratio(clock_ratio);
            let candidate = soc.with_dram(dram);
            let peak = candidate.peak_bw_gbps();
            let scaled = nominal_model.scale_bandwidth(peak / nominal_peak);

            let profile = CoRunSim::standalone(&candidate, pu_idx, kernel, horizon);
            let predicted = scaled.relative_speed_pct(profile.bw_gbps, external_gbps);

            let actual = measure_truth.then(|| {
                let pressure = if candidate.pus[pu_idx].name == "CPU" {
                    candidate.pu_index("GPU").expect("GPU")
                } else {
                    candidate.pu_index("CPU").expect("CPU")
                };
                let mut sim = CoRunSim::new(&candidate);
                sim.horizon(horizon);
                sim.place(Placement::kernel(pu_idx, kernel.clone()));
                sim.external_pressure(pressure, external_gbps);
                sim.execute()
                    .relative_speed_pct(pu_idx, &profile)
                    .expect("kernel PU is placed")
                    .min(102.0)
            });

            MemoryDesignPoint {
                channels,
                clock_ratio,
                peak_gbps: peak,
                demand_gbps: profile.bw_gbps,
                predicted_rs_pct: predicted,
                actual_rs_pct: actual,
            }
        })
        .collect()
}

/// Picks the cheapest candidate (lowest peak bandwidth) whose predicted
/// co-run relative speed meets `min_rs_pct`; falls back to the largest
/// candidate when none qualifies.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn select_memory_config(points: &[MemoryDesignPoint], min_rs_pct: f64) -> &MemoryDesignPoint {
    assert!(!points.is_empty(), "no candidates");
    let mut sorted: Vec<&MemoryDesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.peak_gbps.total_cmp(&b.peak_gbps));
    sorted
        .iter()
        .find(|p| p.predicted_rs_pct >= min_rs_pct)
        .copied()
        .unwrap_or_else(|| sorted.last().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SocConfig, usize, KernelDesc, PccsModel) {
        let soc = SocConfig::xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 18.0);
        // Paper-magnitude model as the nominal construction.
        let model = PccsModel::xavier_gpu_paper();
        (soc, gpu, kernel, model)
    }

    #[test]
    fn explores_and_orders_candidates() {
        let (soc, gpu, kernel, model) = setup();
        let points = explore_memory_configs(
            &soc,
            gpu,
            &kernel,
            &model,
            40.0,
            &[(4, 1.0), (8, 1.0)],
            12_000,
            false,
        );
        assert_eq!(points.len(), 2);
        assert!(points[1].peak_gbps > points[0].peak_gbps);
        for p in &points {
            assert!((0.0..=100.0).contains(&p.predicted_rs_pct));
            assert!(p.actual_rs_pct.is_none());
        }
    }

    #[test]
    fn selection_prefers_cheapest_adequate_config() {
        let mk = |peak: f64, rs: f64| MemoryDesignPoint {
            channels: 4,
            clock_ratio: 1.0,
            peak_gbps: peak,
            demand_gbps: 30.0,
            predicted_rs_pct: rs,
            actual_rs_pct: None,
        };
        let points = vec![mk(60.0, 70.0), mk(100.0, 92.0), mk(137.0, 99.0)];
        assert_eq!(select_memory_config(&points, 90.0).peak_gbps, 100.0);
        // Nothing qualifies: take the largest.
        assert_eq!(select_memory_config(&points, 99.5).peak_gbps, 137.0);
    }

    #[test]
    fn truth_measurement_populates_actual() {
        let (soc, gpu, kernel, model) = setup();
        let points =
            explore_memory_configs(&soc, gpu, &kernel, &model, 30.0, &[(8, 1.0)], 10_000, true);
        let actual = points[0].actual_rs_pct.expect("measured");
        assert!((0.0..=102.0).contains(&actual));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn rejects_empty_candidates() {
        let (soc, gpu, kernel, model) = setup();
        explore_memory_configs(&soc, gpu, &kernel, &model, 40.0, &[], 1000, false);
    }
}
