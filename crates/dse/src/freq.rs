//! PU frequency selection under a co-run slowdown constraint (Section 4.3,
//! Table 9, Figure 15).

use pccs_core::SlowdownModel;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// The standalone profile of one candidate frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPoint {
    /// The candidate PU clock in MHz.
    pub freq_mhz: f64,
    /// Standalone work rate at that clock (lines per memory cycle).
    pub standalone_rate: f64,
    /// Standalone bandwidth demand at that clock (GB/s) — the model input.
    pub demand_gbps: f64,
}

/// The outcome of a frequency selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencySelection {
    /// The chosen (lowest acceptable) frequency in MHz.
    pub chosen_mhz: f64,
    /// Per-candidate predicted co-run performance, normalized to the best
    /// candidate (1.0 = best), in ascending frequency order.
    pub perf_rel: Vec<(f64, f64)>,
}

/// Profiles `kernel` standalone on PU `pu_idx` at each candidate frequency
/// — the "standalone performance models" given to the architects.
///
/// # Panics
///
/// Panics if `freqs` is empty or contains non-positive frequencies.
pub fn profile_frequencies(
    soc: &SocConfig,
    pu_idx: usize,
    kernel: &KernelDesc,
    freqs: &[f64],
    horizon: u64,
) -> Vec<FrequencyPoint> {
    assert!(
        !freqs.is_empty(),
        "at least one candidate frequency required"
    );
    freqs
        .iter()
        .map(|&f| {
            let reclocked = soc.with_pu(pu_idx, soc.pus[pu_idx].with_frequency(f));
            let profile = CoRunSim::standalone(&reclocked, pu_idx, kernel, horizon);
            FrequencyPoint {
                freq_mhz: f,
                standalone_rate: profile.lines_per_cycle,
                demand_gbps: profile.bw_gbps,
            }
        })
        .collect()
}

/// Selects the lowest frequency whose predicted *co-run* performance is
/// within `max_slowdown` (a fraction, e.g. 0.05) of the best candidate's
/// predicted co-run performance, under `external_gbps` of external demand.
///
/// Co-run performance of a candidate is
/// `standalone_rate × model-predicted relative speed`; normalizing against
/// the best candidate captures "how much performance does the extra
/// frequency actually buy under contention".
///
/// # Panics
///
/// Panics if `points` is empty or `max_slowdown` is not in `[0, 1)`.
pub fn select_frequency<M: SlowdownModel + ?Sized>(
    points: &[FrequencyPoint],
    model: &M,
    external_gbps: f64,
    max_slowdown: f64,
) -> FrequencySelection {
    assert!(!points.is_empty(), "no candidate frequencies");
    assert!(
        (0.0..1.0).contains(&max_slowdown),
        "max slowdown must be a fraction in [0, 1)"
    );
    let mut sorted: Vec<FrequencyPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.freq_mhz.total_cmp(&b.freq_mhz));

    let perf: Vec<f64> = sorted
        .iter()
        .map(|p| p.standalone_rate * model.relative_speed_pct(p.demand_gbps, external_gbps) / 100.0)
        .collect();
    let best = perf
        .iter()
        .cloned()
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let perf_rel: Vec<(f64, f64)> = sorted
        .iter()
        .zip(&perf)
        .map(|(p, &v)| (p.freq_mhz, v / best))
        .collect();
    let chosen = perf_rel
        .iter()
        .find(|&&(_, rel)| rel >= 1.0 - max_slowdown)
        .map(|&(f, _)| f)
        .unwrap_or(sorted.last().expect("non-empty").freq_mhz);
    FrequencySelection {
        chosen_mhz: chosen,
        perf_rel,
    }
}

/// The simulated ground truth of Table 9: measures actual co-run
/// performance at every candidate frequency and applies the same
/// lowest-acceptable rule.
#[allow(clippy::too_many_arguments)] // mirrors the experiment's knobs 1:1
pub fn ground_truth_frequency(
    soc: &SocConfig,
    pu_idx: usize,
    pressure_pu: usize,
    kernel: &KernelDesc,
    freqs: &[f64],
    external_gbps: f64,
    max_slowdown: f64,
    horizon: u64,
) -> FrequencySelection {
    assert!(!freqs.is_empty(), "no candidate frequencies");
    assert!(
        (0.0..1.0).contains(&max_slowdown),
        "max slowdown is a fraction"
    );
    let mut sorted = freqs.to_vec();
    sorted.sort_by(f64::total_cmp);

    let perf: Vec<f64> = sorted
        .iter()
        .map(|&f| {
            let reclocked = soc.with_pu(pu_idx, soc.pus[pu_idx].with_frequency(f));
            let mut sim = CoRunSim::new(&reclocked);
            sim.horizon(horizon);
            sim.place(Placement::kernel(pu_idx, kernel.clone()));
            sim.external_pressure(pressure_pu, external_gbps);
            let out = sim.execute();
            out.per_pu[&pu_idx].lines_per_cycle
        })
        .collect();
    let best = perf
        .iter()
        .cloned()
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let perf_rel: Vec<(f64, f64)> = sorted
        .iter()
        .zip(&perf)
        .map(|(&f, &v)| (f, v / best))
        .collect();
    let chosen = perf_rel
        .iter()
        .find(|&&(_, rel)| rel >= 1.0 - max_slowdown)
        .map(|&(f, _)| f)
        .unwrap_or(*sorted.last().expect("non-empty"));
    FrequencySelection {
        chosen_mhz: chosen,
        perf_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_core::PccsModel;
    use pccs_gables::GablesModel;

    fn points() -> Vec<FrequencyPoint> {
        // A memory-bound kernel: standalone rate saturates above 900 MHz
        // (like streamcluster in Figure 15); demand grows with frequency
        // until saturation.
        vec![
            FrequencyPoint {
                freq_mhz: 500.0,
                standalone_rate: 0.25,
                demand_gbps: 35.0,
            },
            FrequencyPoint {
                freq_mhz: 700.0,
                standalone_rate: 0.35,
                demand_gbps: 49.0,
            },
            FrequencyPoint {
                freq_mhz: 900.0,
                standalone_rate: 0.44,
                demand_gbps: 62.0,
            },
            FrequencyPoint {
                freq_mhz: 1100.0,
                standalone_rate: 0.45,
                demand_gbps: 63.0,
            },
            FrequencyPoint {
                freq_mhz: 1377.0,
                standalone_rate: 0.45,
                demand_gbps: 63.0,
            },
        ]
    }

    #[test]
    fn gables_picks_the_same_frequency_at_any_mild_pressure() {
        // Gables predicts zero slowdown while total demand < peak, so its
        // choice cannot react to pressure (the paper's 880/880/880 row).
        let g = GablesModel::new(137.0);
        let a = select_frequency(&points(), &g, 20.0, 0.05);
        let b = select_frequency(&points(), &g, 60.0, 0.05);
        assert_eq!(a.chosen_mhz, b.chosen_mhz);
    }

    #[test]
    fn pccs_chooses_lower_frequency_under_higher_pressure() {
        let m = PccsModel::xavier_gpu_paper();
        let low = select_frequency(&points(), &m, 20.0, 0.05);
        let high = select_frequency(&points(), &m, 90.0, 0.05);
        assert!(
            high.chosen_mhz <= low.chosen_mhz,
            "pressure should never raise the useful frequency: {} vs {}",
            high.chosen_mhz,
            low.chosen_mhz
        );
    }

    #[test]
    fn looser_budget_allows_lower_frequency() {
        let m = PccsModel::xavier_gpu_paper();
        let tight = select_frequency(&points(), &m, 40.0, 0.05);
        let loose = select_frequency(&points(), &m, 40.0, 0.20);
        assert!(loose.chosen_mhz <= tight.chosen_mhz);
    }

    #[test]
    fn perf_rel_is_normalized_and_ordered() {
        let m = PccsModel::xavier_gpu_paper();
        let sel = select_frequency(&points(), &m, 40.0, 0.05);
        assert_eq!(sel.perf_rel.len(), 5);
        let max = sel.perf_rel.iter().map(|&(_, r)| r).fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(sel.perf_rel.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_slowdown_of_one() {
        let m = PccsModel::xavier_gpu_paper();
        select_frequency(&points(), &m, 40.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "no candidate")]
    fn rejects_empty_points() {
        let m = PccsModel::xavier_gpu_paper();
        select_frequency(&[], &m, 40.0, 0.05);
    }
}
