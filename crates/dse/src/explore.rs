//! Core-count and memory-subsystem exploration (the "PU-related
//! architectural changes" and "memory sub-system parameters" knobs of
//! Section 3.4).

use pccs_core::SlowdownModel;
use pccs_soc::corun::CoRunSim;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// The profile and prediction for one candidate core count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreCountPoint {
    /// Candidate core count.
    pub cores: u32,
    /// Standalone work rate (lines per memory cycle).
    pub standalone_rate: f64,
    /// Standalone bandwidth demand (GB/s).
    pub demand_gbps: f64,
    /// Model-predicted co-run relative speed (percent) under the
    /// exploration's external demand.
    pub predicted_rs_pct: f64,
    /// Predicted co-run performance normalized to the largest candidate.
    pub corun_perf_rel: f64,
}

/// Profiles `kernel` on PU `pu_idx` at each candidate core count and
/// predicts co-run performance under `external_gbps` with `model`.
///
/// Returns points in ascending core order with `corun_perf_rel` normalized
/// to the best candidate; the caller picks the smallest count meeting its
/// slowdown budget (the paper's "up to 50 % area" scenario).
///
/// # Panics
///
/// Panics if `core_counts` is empty or contains zero.
pub fn explore_core_counts<M: SlowdownModel + ?Sized>(
    soc: &SocConfig,
    pu_idx: usize,
    kernel: &KernelDesc,
    core_counts: &[u32],
    model: &M,
    external_gbps: f64,
    horizon: u64,
) -> Vec<CoreCountPoint> {
    assert!(!core_counts.is_empty(), "at least one core count required");
    let mut counts = core_counts.to_vec();
    counts.sort_unstable();
    let mut points: Vec<CoreCountPoint> = counts
        .into_iter()
        .map(|cores| {
            let resized = soc.with_pu(pu_idx, soc.pus[pu_idx].with_cores(cores));
            let profile = CoRunSim::standalone(&resized, pu_idx, kernel, horizon);
            let rs = model.relative_speed_pct(profile.bw_gbps, external_gbps);
            CoreCountPoint {
                cores,
                standalone_rate: profile.lines_per_cycle,
                demand_gbps: profile.bw_gbps,
                predicted_rs_pct: rs,
                corun_perf_rel: profile.lines_per_cycle * rs / 100.0,
            }
        })
        .collect();
    let best = points
        .iter()
        .map(|p| p.corun_perf_rel)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    for p in &mut points {
        p.corun_perf_rel /= best;
    }
    points
}

/// Picks the smallest core count whose normalized co-run performance is
/// within `max_slowdown` of the best candidate.
///
/// # Panics
///
/// Panics if `points` is empty or `max_slowdown` is not in `[0, 1)`.
pub fn select_core_count(points: &[CoreCountPoint], max_slowdown: f64) -> u32 {
    assert!(!points.is_empty(), "no candidates");
    assert!(
        (0.0..1.0).contains(&max_slowdown),
        "max slowdown is a fraction"
    );
    points
        .iter()
        .find(|p| p.corun_perf_rel >= 1.0 - max_slowdown)
        .map(|p| p.cores)
        .unwrap_or(points.last().expect("non-empty").cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_core::PccsModel;

    #[test]
    fn memory_bound_kernel_needs_few_cpu_cores_under_contention() {
        let soc = SocConfig::xavier();
        let cpu = soc.pu_index("CPU").unwrap();
        // A strongly memory-bound kernel: core count beyond memory
        // saturation buys nothing.
        let kernel = KernelDesc::memory_streaming("stream", 0.4);
        let model = PccsModel::xavier_cpu_paper();
        let points = explore_core_counts(&soc, cpu, &kernel, &[2, 4, 8], &model, 60.0, 15_000);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0].cores < w[1].cores));
        let chosen = select_core_count(&points, 0.20);
        assert!(chosen <= 8);
        // Normalization: the best candidate sits at 1.0.
        let max = points.iter().map(|p| p.corun_perf_rel).fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn select_requires_points() {
        select_core_count(&[], 0.1);
    }
}
