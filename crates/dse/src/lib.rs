//! Pre-silicon SoC design-space exploration with slowdown models
//! (Sections 3.4 and 4.3 of the PCCS paper).
//!
//! The exploration loop: for each candidate hardware configuration (PU
//! frequency, core count, memory subsystem), obtain the kernel's standalone
//! performance and bandwidth demand (by profiling a reconfigured existing
//! system — here, the simulator), feed the demand into a
//! [`SlowdownModel`](pccs_core::SlowdownModel) to predict its co-run
//! relative speed under the expected external bandwidth demand, and pick
//! the cheapest configuration whose *co-run* performance is within the
//! allowed slowdown of the best achievable. A model that overestimates
//! co-run performance (Gables under contention) makes the architect buy
//! frequency that contention then wastes; PCCS's accuracy is what avoids
//! the over-provisioning (Table 9, Figure 15).
//!
//! # Example
//!
//! ```no_run
//! use pccs_soc::{SocConfig, KernelDesc};
//! use pccs_core::PccsModel;
//! use pccs_dse::freq::{profile_frequencies, select_frequency};
//!
//! let soc = SocConfig::xavier();
//! let gpu = soc.pu_index("GPU").unwrap();
//! let kernel = KernelDesc::memory_streaming("streamcluster", 22.5);
//! let freqs: Vec<f64> = (5..=13).map(|i| i as f64 * 100.0).collect();
//! let points = profile_frequencies(&soc, gpu, &kernel, &freqs, 30_000);
//! let model = PccsModel::xavier_gpu_paper();
//! let sel = select_frequency(&points, &model, 40.0, 0.05);
//! println!("clock the GPU at {} MHz", sel.chosen_mhz);
//! ```

/// Area and power proxy models for quantifying over-provisioning.
pub mod cost;
/// Core-count and memory-subsystem exploration (the "PU-related.
pub mod explore;
/// PU frequency selection under a co-run slowdown constraint (Section 4.3,.
pub mod freq;
/// Memory-subsystem design exploration (Section 3.4, "Memory sub-system.
pub mod memory;
/// Power-budgeted frequency selection — the extension the paper's.
pub mod power_budget;

pub use cost::{area_rel, dynamic_power_rel};
pub use explore::{explore_core_counts, CoreCountPoint};
pub use freq::{
    ground_truth_frequency, profile_frequencies, select_frequency, FrequencyPoint,
    FrequencySelection,
};
pub use memory::{explore_memory_configs, select_memory_config, MemoryDesignPoint};
pub use power_budget::{select_under_power_budget, PowerBudgetedChoice};
