//! Power-budgeted frequency selection — the extension the paper's
//! Discussion sketches: "our current model could potentially work with
//! power budgeting by predicting the co-run performance under each given
//! power budget" (Section 5).
//!
//! Given candidate frequencies, an external-demand estimate and a dynamic
//! power budget (relative to a reference clock), pick the frequency that
//! maximizes *predicted co-run performance* among those within budget. A
//! contention-blind model (Gables) buys frequency that contention then
//! wastes; a contention-aware one spends the same budget where it pays.

use crate::cost::dynamic_power_rel;
use crate::freq::FrequencyPoint;
use pccs_core::SlowdownModel;
use serde::{Deserialize, Serialize};

/// The outcome of a power-budgeted selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudgetedChoice {
    /// Chosen frequency (MHz).
    pub chosen_mhz: f64,
    /// Its relative dynamic power (vs the reference clock).
    pub power_rel: f64,
    /// Its predicted co-run performance (lines per cycle).
    pub predicted_perf: f64,
    /// All candidates considered: `(freq, power_rel, predicted_perf,
    /// within_budget)`.
    pub candidates: Vec<(f64, f64, f64, bool)>,
}

/// Picks the best-performing in-budget frequency under `external_gbps` of
/// contention, as predicted by `model`.
///
/// # Panics
///
/// Panics if `points` is empty, `reference_mhz` is not positive, or
/// `power_budget_rel` is not positive.
pub fn select_under_power_budget<M: SlowdownModel + ?Sized>(
    points: &[FrequencyPoint],
    model: &M,
    external_gbps: f64,
    power_budget_rel: f64,
    reference_mhz: f64,
) -> PowerBudgetedChoice {
    assert!(!points.is_empty(), "no candidate frequencies");
    assert!(reference_mhz > 0.0, "reference clock must be positive");
    assert!(power_budget_rel > 0.0, "power budget must be positive");

    let mut candidates: Vec<(f64, f64, f64, bool)> = points
        .iter()
        .map(|p| {
            let power = dynamic_power_rel(p.freq_mhz, reference_mhz);
            let perf =
                p.standalone_rate * model.relative_speed_pct(p.demand_gbps, external_gbps) / 100.0;
            (p.freq_mhz, power, perf, power <= power_budget_rel)
        })
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

    let best = candidates
        .iter()
        .filter(|c| c.3)
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .or_else(|| candidates.first()) // nothing in budget: lowest clock
        .copied()
        .expect("non-empty candidates");

    PowerBudgetedChoice {
        chosen_mhz: best.0,
        power_rel: best.1,
        predicted_perf: best.2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_core::PccsModel;
    use pccs_gables::GablesModel;

    fn points() -> Vec<FrequencyPoint> {
        vec![
            FrequencyPoint {
                freq_mhz: 500.0,
                standalone_rate: 0.25,
                demand_gbps: 35.0,
            },
            FrequencyPoint {
                freq_mhz: 900.0,
                standalone_rate: 0.44,
                demand_gbps: 62.0,
            },
            FrequencyPoint {
                freq_mhz: 1377.0,
                standalone_rate: 0.45,
                demand_gbps: 85.0,
            },
        ]
    }

    #[test]
    fn respects_the_budget() {
        let model = PccsModel::xavier_gpu_paper();
        // Budget 0.35 of reference power excludes 1377 MHz (1.0) and allows
        // 900 MHz ((900/1377)^3 = 0.28).
        let c = select_under_power_budget(&points(), &model, 40.0, 0.35, 1377.0);
        assert_eq!(c.chosen_mhz, 900.0);
        assert!(c.power_rel <= 0.35);
    }

    #[test]
    fn unlimited_budget_takes_best_predicted_perf() {
        let model = PccsModel::xavier_gpu_paper();
        let c = select_under_power_budget(&points(), &model, 0.0, 10.0, 1377.0);
        // With no contention the top clock's extra standalone rate wins.
        assert_eq!(c.chosen_mhz, 1377.0);
    }

    #[test]
    fn contention_awareness_can_prefer_lower_clock() {
        // Under heavy contention PCCS sees the 1377 MHz point (demand 85,
        // deep in the normal region) collapse, while Gables sees no slowdown at all
        // below peak and always picks the top clock.
        let pccs = PccsModel::xavier_gpu_paper();
        let gables = GablesModel::new(137.0);
        let y = 40.0;
        let p = select_under_power_budget(&points(), &pccs, y, 10.0, 1377.0);
        let g = select_under_power_budget(&points(), &gables, y, 10.0, 1377.0);
        assert_eq!(g.chosen_mhz, 1377.0);
        assert!(p.chosen_mhz <= g.chosen_mhz);
    }

    #[test]
    fn impossible_budget_falls_back_to_lowest_clock() {
        let model = PccsModel::xavier_gpu_paper();
        let c = select_under_power_budget(&points(), &model, 40.0, 1e-6, 1377.0);
        assert_eq!(c.chosen_mhz, 500.0);
    }

    #[test]
    #[should_panic(expected = "no candidate")]
    fn rejects_empty_candidates() {
        let model = PccsModel::xavier_gpu_paper();
        select_under_power_budget(&[], &model, 40.0, 1.0, 1377.0);
    }
}
