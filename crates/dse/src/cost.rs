//! Area and power proxy models for quantifying over-provisioning.
//!
//! The paper's headline design-stage result: PCCS-guided configurations
//! save "up to 50 % area (with reduced cores) or 52.1 % power budget (with
//! reduced frequencies) over the suggested configurations by prior models"
//! (Section 1). These proxies provide the comparison metric: silicon area
//! scales with core count; dynamic power scales cubically with frequency
//! under DVFS (voltage roughly tracks frequency, `P ∝ C·V²·f ∝ f³`).

/// Relative dynamic power of clocking at `freq_mhz` versus `base_mhz`
/// under DVFS (`(f/f₀)³`).
///
/// # Panics
///
/// Panics if either frequency is not positive.
pub fn dynamic_power_rel(freq_mhz: f64, base_mhz: f64) -> f64 {
    assert!(
        freq_mhz > 0.0 && base_mhz > 0.0,
        "frequencies must be positive"
    );
    (freq_mhz / base_mhz).powi(3)
}

/// Relative core area of `cores` versus `base_cores`.
///
/// # Panics
///
/// Panics if either count is zero.
pub fn area_rel(cores: u32, base_cores: u32) -> f64 {
    assert!(cores > 0 && base_cores > 0, "core counts must be positive");
    f64::from(cores) / f64::from(base_cores)
}

/// Percentage saved by choosing `chosen` over `baseline` on a relative
/// metric (power or area); negative when `chosen` costs more.
pub fn savings_pct(chosen_rel: f64, baseline_rel: f64) -> f64 {
    assert!(baseline_rel > 0.0, "baseline must be positive");
    100.0 * (1.0 - chosen_rel / baseline_rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_cubic() {
        assert!((dynamic_power_rel(500.0, 1000.0) - 0.125).abs() < 1e-12);
        assert!((dynamic_power_rel(1000.0, 1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_is_linear() {
        assert!((area_rel(4, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn savings_of_paper_magnitude() {
        // Picking 650 MHz where a mispredicting model picks 880 MHz saves
        // ~60 % dynamic power — the order of the paper's 52.1 % claim.
        let pccs = dynamic_power_rel(650.0, 1377.0);
        let gables = dynamic_power_rel(880.0, 1377.0);
        let saved = savings_pct(pccs, gables);
        assert!((40.0..80.0).contains(&saved), "saved {saved:.1}%");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_frequency() {
        dynamic_power_rel(0.0, 1000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cores() {
        area_rel(0, 8);
    }
}
