//! Property-based tests of the Gables baseline.

use pccs_core::SlowdownModel;
use pccs_gables::GablesModel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn relative_speed_is_bounded(
        peak in 1.0f64..500.0,
        x in 0.0f64..500.0,
        y in 0.0f64..500.0,
    ) {
        let g = GablesModel::new(peak);
        let rs = g.relative_speed_pct(x, y);
        prop_assert!((0.0..=100.0).contains(&rs));
    }

    #[test]
    fn no_slowdown_below_peak(
        peak in 10.0f64..500.0,
        frac_x in 0.01f64..0.99,
        frac_y in 0.0f64..0.99,
    ) {
        let x = peak * frac_x;
        let y = (peak - x) * frac_y;
        let g = GablesModel::new(peak);
        // Floating arithmetic can land x + y a few ulps over the peak.
        prop_assert!(g.relative_speed_pct(x, y) > 99.999);
    }

    #[test]
    fn granted_bandwidth_conserves_peak(
        peak in 10.0f64..500.0,
        x in 0.0f64..1000.0,
        y in 0.0f64..1000.0,
    ) {
        let g = GablesModel::new(peak);
        let granted = g.granted_bw_gbps(x, y);
        prop_assert!(granted <= x + 1e-9, "never granted more than requested");
        prop_assert!(granted <= peak + 1e-9, "never granted more than peak");
    }

    #[test]
    fn monotone_non_increasing_in_pressure(
        peak in 10.0f64..500.0,
        x in 0.1f64..500.0,
        y in 0.0f64..500.0,
        dy in 0.0f64..100.0,
    ) {
        let g = GablesModel::new(peak);
        prop_assert!(g.relative_speed_pct(x, y + dy) <= g.relative_speed_pct(x, y) + 1e-9);
    }

    #[test]
    fn proportional_share_at_saturation(
        peak in 10.0f64..500.0,
        x in 1.0f64..500.0,
        y in 1.0f64..500.0,
    ) {
        prop_assume!(x + y > peak);
        let g = GablesModel::new(peak);
        let expected = 100.0 * peak / (x + y);
        prop_assert!((g.relative_speed_pct(x, y) - expected).abs() < 1e-6);
    }
}
