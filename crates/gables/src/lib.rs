//! Gables-style baseline slowdown model (Hill & Reddi, "Gables: A Roofline
//! Model for Mobile SoCs", HPCA 2019) — the state-of-the-art comparison
//! point of the PCCS paper.
//!
//! The Gables memory-contention assumption, as characterized in the paper
//! (Section 4.1.1, "Baseline"):
//!
//! > "the effective bandwidth of a processor under contention is not
//! > reduced as long as the total BW requested is smaller than the SoC peak
//! > BW. Otherwise, the effective BW is calculated by pro-rating the
//! > requested BW to the available BW."
//!
//! For a memory-bound kernel the relative speed tracks the granted share of
//! its requested bandwidth; a compute-bound kernel is unaffected. This is
//! exactly the proportional-distribution assumption PCCS's measurements
//! contradict (Figure 2 / Figure 3) — reproducing its failure modes is the
//! point of carrying it through every experiment.
//!
//! # Example
//!
//! ```
//! use pccs_gables::GablesModel;
//! use pccs_core::SlowdownModel;
//!
//! let gables = GablesModel::new(137.0);
//! // Total demand below peak: Gables predicts no slowdown at all.
//! assert_eq!(gables.relative_speed_pct(60.0, 40.0), 100.0);
//! // Over-subscribed: pro-rated share.
//! assert!(gables.relative_speed_pct(100.0, 100.0) < 100.0);
//! ```

use pccs_core::SlowdownModel;
use serde::{Deserialize, Serialize};

/// The Gables proportional-share contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GablesModel {
    /// Peak bandwidth of the SoC (GB/s).
    pub peak_bw: f64,
}

impl GablesModel {
    /// Creates the model for an SoC with the given peak bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `peak_bw` is not positive and finite.
    pub fn new(peak_bw: f64) -> Self {
        assert!(
            peak_bw > 0.0 && peak_bw.is_finite(),
            "peak bandwidth must be positive and finite"
        );
        Self { peak_bw }
    }

    /// The effective bandwidth Gables grants a kernel demanding
    /// `demand_gbps` against `external_gbps` of competing demand.
    pub fn granted_bw_gbps(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        assert!(demand_gbps >= 0.0 && external_gbps >= 0.0);
        let total = demand_gbps + external_gbps;
        if total <= self.peak_bw {
            demand_gbps
        } else {
            // Pro-rate the peak across requesters by their demands.
            self.peak_bw * demand_gbps / total
        }
    }
}

impl SlowdownModel for GablesModel {
    fn name(&self) -> &'static str {
        "Gables"
    }

    fn relative_speed_pct(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        if demand_gbps <= 0.0 {
            return 100.0;
        }
        let granted = self.granted_bw_gbps(demand_gbps, external_gbps);
        (100.0 * granted / demand_gbps).clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_peak_no_slowdown() {
        let g = GablesModel::new(137.0);
        assert_eq!(g.relative_speed_pct(60.0, 70.0), 100.0);
        assert_eq!(g.granted_bw_gbps(60.0, 70.0), 60.0);
    }

    #[test]
    fn above_peak_pro_rates() {
        let g = GablesModel::new(100.0);
        // 100 + 100 demanded over 100 peak: each gets half.
        assert!((g.relative_speed_pct(100.0, 100.0) - 50.0).abs() < 1e-9);
        assert!((g.granted_bw_gbps(100.0, 100.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn exact_peak_boundary_is_lossless() {
        let g = GablesModel::new(100.0);
        assert_eq!(g.relative_speed_pct(40.0, 60.0), 100.0);
    }

    #[test]
    fn zero_demand_kernel_never_slows() {
        let g = GablesModel::new(100.0);
        assert_eq!(g.relative_speed_pct(0.0, 500.0), 100.0);
    }

    #[test]
    fn monotone_in_external_demand() {
        let g = GablesModel::new(137.0);
        let mut prev = f64::INFINITY;
        for step in 0..40 {
            let y = step as f64 * 5.0;
            let rs = g.relative_speed_pct(90.0, y);
            assert!(rs <= prev + 1e-12);
            prev = rs;
        }
    }

    #[test]
    fn slowdown_trait_integration() {
        let g = GablesModel::new(100.0);
        assert!((g.slowdown(100.0, 100.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_peak() {
        GablesModel::new(0.0);
    }
}
