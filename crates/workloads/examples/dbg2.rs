use pccs_dram::request::SourceId;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::dnn::DnnModel;
use pccs_workloads::rodinia::RodiniaBenchmark;
fn main() {
    let soc = SocConfig::xavier();
    let cpu = soc.pu_index("CPU").unwrap();
    let gpu = soc.pu_index("GPU").unwrap();
    let dla = soc.pu_index("DLA").unwrap();
    // CPU victim vs GPU pressure
    let k = RodiniaBenchmark::Streamcluster.kernel(PuKind::Cpu);
    let prof = CoRunSim::standalone_averaged(&soc, cpu, &k, 30_000, 2);
    print!("CPU streamcluster x={:.1}: ", prof.bw_gbps);
    for y in [14.0, 27.0, 55.0, 82.0, 110.0, 137.0] {
        let mut sim = CoRunSim::new(&soc);
        sim.horizon(30_000);
        sim.repeats(2);
        sim.place(Placement::kernel(cpu, k.clone()));
        sim.external_pressure(gpu, y);
        let out = sim.execute();
        let act: f64 = soc
            .source_range(gpu)
            .map(|s| out.memory.source_bw_gbps(SourceId(s)))
            .sum();
        print!(
            "{:5.1}({:4.0})",
            out.relative_speed_pct(cpu, &prof).unwrap(),
            act
        );
    }
    println!();
    // DLA victim vs CPU pressure
    let k = DnnModel::Resnet50.kernel();
    let prof = CoRunSim::standalone_averaged(&soc, dla, &k, 30_000, 2);
    print!("DLA resnet x={:.1}:        ", prof.bw_gbps);
    for y in [14.0, 27.0, 55.0, 82.0, 110.0, 137.0] {
        let mut sim = CoRunSim::new(&soc);
        sim.horizon(30_000);
        sim.repeats(2);
        sim.place(Placement::kernel(dla, k.clone()));
        sim.external_pressure(cpu, y);
        let out = sim.execute();
        print!("{:5.1}      ", out.relative_speed_pct(dla, &prof).unwrap());
    }
    println!();
}
