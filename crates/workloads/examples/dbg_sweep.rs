use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::calibrator_kernel;
fn main() {
    let soc = SocConfig::xavier();
    for pu_name in ["CPU", "GPU", "DLA"] {
        let pu = soc.pu_index(pu_name).unwrap();
        for d in [10.0, 30.0, 50.0, 70.0, 90.0, 110.0, 130.0] {
            let k = calibrator_kernel(&soc, pu, d);
            let p = CoRunSim::standalone_averaged(&soc, pu, &k, 40_000, 2);
            println!(
                "{pu_name} demand {d:6.1} -> achieved {:7.2} GB/s",
                p.bw_gbps
            );
        }
    }
    // co-run curve: GPU 60GB/s kernel vs CPU pressure sweep
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    for (xd, label) in [(20.0, "low"), (60.0, "med"), (110.0, "high")] {
        let k = calibrator_kernel(&soc, gpu, xd);
        let prof = CoRunSim::standalone_averaged(&soc, gpu, &k, 40_000, 2);
        print!("GPU {label} x={:5.1}: ", prof.bw_gbps);
        for y in [
            10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0,
        ] {
            let mut sim = CoRunSim::new(&soc);
            sim.horizon(40_000);
            sim.repeats(2);
            sim.place(Placement::kernel(gpu, k.clone()));
            sim.external_pressure(cpu, y);
            let out = sim.execute();
            print!("{:5.1}", out.relative_speed_pct(gpu, &prof).unwrap());
        }
        println!();
    }
}
