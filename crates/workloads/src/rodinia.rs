//! Rodinia benchmark traffic proxies.
//!
//! Each proxy assigns a benchmark the operational intensity (per PU class),
//! row locality and write mix that reproduce the bandwidth-demand class the
//! paper reports: three compute-intensive kernels (hotspot, leukocyte,
//! heartwall) and seven memory-intensive ones (streamcluster, pathfinder,
//! srad, k-means, b+tree, cfd, bfs). Intensities differ per PU class
//! because the CPU and GPU implementations of a Rodinia benchmark are
//! different programs with different standalone demands — the paper
//! likewise measures per-PU demands as model inputs.

use pccs_core::PhasedWorkload;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ten Rodinia benchmarks used in the paper's evaluation (Section 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RodiniaBenchmark {
    /// hotspot (HS) — compute intensive.
    Hotspot,
    /// leukocyte (LC) — compute intensive.
    Leukocyte,
    /// heartwall (HW) — compute intensive.
    Heartwall,
    /// streamcluster (SC) — memory intensive.
    Streamcluster,
    /// pathfinder (PF) — memory intensive.
    Pathfinder,
    /// srad — memory intensive.
    Srad,
    /// k-means (KM) — memory intensive.
    Kmeans,
    /// b+tree (BT) — memory intensive, irregular.
    Btree,
    /// CFD — memory intensive, multi-phase.
    Cfd,
    /// BFS — memory intensive, poor locality.
    Bfs,
}

impl RodiniaBenchmark {
    /// All ten benchmarks, paper order.
    pub fn all() -> [RodiniaBenchmark; 10] {
        use RodiniaBenchmark::*;
        [
            Hotspot,
            Leukocyte,
            Heartwall,
            Streamcluster,
            Pathfinder,
            Srad,
            Kmeans,
            Btree,
            Cfd,
            Bfs,
        ]
    }

    /// The five benchmarks the paper validates on the CPUs (Figures 9/11).
    pub fn cpu_suite() -> [RodiniaBenchmark; 5] {
        use RodiniaBenchmark::*;
        [Hotspot, Streamcluster, Pathfinder, Kmeans, Srad]
    }

    /// Short name used in the paper's figures.
    pub fn label(&self) -> &'static str {
        use RodiniaBenchmark::*;
        match self {
            Hotspot => "hotspot",
            Leukocyte => "leukocyte",
            Heartwall => "heartwall",
            Streamcluster => "streamcluster",
            Pathfinder => "pathfinder",
            Srad => "srad",
            Kmeans => "k-means",
            Btree => "b+tree",
            Cfd => "cfd",
            Bfs => "bfs",
        }
    }

    /// Whether the paper classes the benchmark as compute-intensive.
    pub fn is_compute_intensive(&self) -> bool {
        use RodiniaBenchmark::*;
        matches!(self, Hotspot | Leukocyte | Heartwall)
    }

    /// Parses a paper label (case-insensitive).
    pub fn from_label(label: &str) -> Option<RodiniaBenchmark> {
        let l = label.to_ascii_lowercase();
        Self::all()
            .into_iter()
            .find(|b| b.label() == l || b.short_code().eq_ignore_ascii_case(&l))
    }

    /// Two-letter code used in the paper's text (HS, LC, …).
    pub fn short_code(&self) -> &'static str {
        use RodiniaBenchmark::*;
        match self {
            Hotspot => "HS",
            Leukocyte => "LC",
            Heartwall => "HW",
            Streamcluster => "SC",
            Pathfinder => "PF",
            Srad => "SRAD",
            Kmeans => "KM",
            Btree => "BT",
            Cfd => "CFD",
            Bfs => "BFS",
        }
    }

    /// (ops-per-byte, row-locality, write-fraction) of the proxy on a PU
    /// class. Intensities are chosen so the Xavier-GPU demands land at the
    /// small (<38 GB/s), medium (40–90 GB/s) or large (>90 GB/s) levels the
    /// paper's classification implies, and the CPU demands span the CPU's
    /// minor/normal regions.
    fn traits_for(&self, pu: PuKind) -> (f64, f64, f64) {
        use RodiniaBenchmark::*;
        match pu {
            PuKind::Gpu => match self {
                Hotspot => (56.0, 0.93, 0.20),
                Leukocyte => (80.0, 0.90, 0.10),
                Heartwall => (46.0, 0.90, 0.15),
                // Calibrated so the kernel is memory-bound at the GPU's top
                // frequencies, matching the paper's Figure 15 observation
                // that streamcluster's standalone performance saturates
                // above ~900 MHz.
                Streamcluster => (15.0, 0.92, 0.25),
                Pathfinder => (25.5, 0.93, 0.30),
                Srad => (20.0, 0.91, 0.33),
                Kmeans => (18.5, 0.88, 0.25),
                Btree => (21.5, 0.62, 0.15),
                Cfd => (17.5, 0.90, 0.33),
                Bfs => (16.5, 0.38, 0.15),
            },
            PuKind::Cpu => match self {
                Hotspot => (9.0, 0.93, 0.20),
                Leukocyte => (6.5, 0.90, 0.10),
                Heartwall => (5.2, 0.90, 0.15),
                Streamcluster => (3.0, 0.92, 0.25),
                Pathfinder => (3.4, 0.93, 0.30),
                Srad => (2.9, 0.91, 0.33),
                Kmeans => (2.6, 0.88, 0.25),
                Btree => (3.2, 0.62, 0.15),
                Cfd => (2.5, 0.90, 0.33),
                Bfs => (2.4, 0.38, 0.15),
            },
            // The DLA does not run Rodinia in the paper; the proxy exists so
            // exploratory placements do not panic.
            PuKind::Dla => match self {
                b if b.is_compute_intensive() => (400.0, 0.9, 0.1),
                _ => (60.0, 0.85, 0.2),
            },
        }
    }

    /// The proxy kernel of this benchmark on a PU class.
    pub fn kernel(&self, pu: PuKind) -> KernelDesc {
        let (ops_per_byte, locality, writes) = self.traits_for(pu);
        KernelDesc::new(self.label(), ops_per_byte, locality, writes, 1.0)
    }

    /// CFD's phase structure (Section 4.1.2): one high-bandwidth kernel
    /// (K1) and three medium-bandwidth kernels (K2–K4), with standalone
    /// time shares. Demands are expressed per PU class via the per-phase
    /// kernels from [`RodiniaBenchmark::cfd_phase_kernels`].
    pub fn cfd_phase_weights() -> [f64; 4] {
        [0.34, 0.24, 0.22, 0.20]
    }

    /// The four phase kernels of CFD on a PU class: K1 is high-bandwidth,
    /// K2–K4 medium.
    pub fn cfd_phase_kernels(pu: PuKind) -> [KernelDesc; 4] {
        let scale = match pu {
            PuKind::Gpu => 1.0,
            PuKind::Cpu => 14.0,
            PuKind::Dla => 0.25,
        };
        let make = |name: &str, opb_gpu: f64, loc: f64| {
            KernelDesc::new(name, opb_gpu / scale, loc, 0.33, 1.0)
        };
        [
            // K1 demands enough bandwidth to sit deep in the intensive
            // region; K2-K4 are mid-normal-region kernels. The spread is
            // what makes the average-BW prediction underestimate the
            // slowdown (Figure 13's point).
            make("cfd-k1", 11.0, 0.90),
            make("cfd-k2", 24.0, 0.91),
            make("cfd-k3", 26.5, 0.91),
            make("cfd-k4", 22.0, 0.90),
        ]
    }

    /// CFD as a [`PhasedWorkload`] given the measured per-phase standalone
    /// demands (GB/s), in phase order.
    pub fn cfd_phased(demands_gbps: [f64; 4]) -> PhasedWorkload {
        let w = Self::cfd_phase_weights();
        let phases: Vec<(f64, f64)> = demands_gbps.into_iter().zip(w).collect();
        PhasedWorkload::new("cfd", &phases)
    }
}

impl fmt::Display for RodiniaBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_present_with_unique_labels() {
        let all = RodiniaBenchmark::all();
        assert_eq!(all.len(), 10);
        let labels: std::collections::HashSet<_> = all.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn compute_intensive_classification_matches_paper() {
        let compute: Vec<_> = RodiniaBenchmark::all()
            .into_iter()
            .filter(|b| b.is_compute_intensive())
            .collect();
        assert_eq!(compute.len(), 3);
    }

    #[test]
    fn compute_intensive_kernels_have_higher_intensity() {
        for pu in [PuKind::Cpu, PuKind::Gpu] {
            let hotspot = RodiniaBenchmark::Hotspot.kernel(pu);
            let sc = RodiniaBenchmark::Streamcluster.kernel(pu);
            assert!(hotspot.ops_per_byte > 2.0 * sc.ops_per_byte, "{pu:?}");
        }
    }

    #[test]
    fn bfs_has_poor_locality() {
        let bfs = RodiniaBenchmark::Bfs.kernel(PuKind::Gpu);
        let pf = RodiniaBenchmark::Pathfinder.kernel(PuKind::Gpu);
        assert!(bfs.row_locality < 0.5);
        assert!(pf.row_locality > 0.85);
    }

    #[test]
    fn from_label_round_trips() {
        for b in RodiniaBenchmark::all() {
            assert_eq!(RodiniaBenchmark::from_label(b.label()), Some(b));
            assert_eq!(RodiniaBenchmark::from_label(b.short_code()), Some(b));
        }
        assert_eq!(RodiniaBenchmark::from_label("nonesuch"), None);
    }

    #[test]
    fn cfd_k1_is_the_high_bandwidth_phase() {
        let ks = RodiniaBenchmark::cfd_phase_kernels(PuKind::Gpu);
        for k in &ks[1..] {
            assert!(
                ks[0].ops_per_byte < k.ops_per_byte,
                "K1 must demand the most bandwidth"
            );
        }
    }

    #[test]
    fn cfd_phase_weights_sum_to_one() {
        let s: f64 = RodiniaBenchmark::cfd_phase_weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cfd_phased_builds() {
        let w = RodiniaBenchmark::cfd_phased([110.0, 55.0, 50.0, 60.0]);
        assert_eq!(w.phases().len(), 4);
        assert!(w.average_demand_gbps() > 50.0);
    }

    #[test]
    fn cpu_suite_is_subset_of_all() {
        for b in RodiniaBenchmark::cpu_suite() {
            assert!(RodiniaBenchmark::all().contains(&b));
        }
    }
}
