//! Workload proxies and the processor-centric calibration pipeline.
//!
//! The paper evaluates PCCS on Rodinia benchmarks (CPU/GPU) and ImageNet
//! CNN inference (DLA), and constructs its models with roofline-toolkit
//! calibrator kernels. None of those binaries can run on the simulated SoC
//! substrate, so this crate provides *traffic proxies*: per-benchmark
//! operational intensity, row locality and write mix chosen so each proxy
//! lands in the bandwidth-demand class the paper reports for it
//! (compute-intensive: hotspot, leukocyte, heartwall; memory-intensive:
//! streamcluster, pathfinder, srad, k-means, b+tree, cfd, bfs). PCCS only
//! consumes a kernel's standalone bandwidth demand (plus per-phase split),
//! so demand-class fidelity is the property that matters.
//!
//! The [`calibrate`] module implements Section 3.2's construction loop:
//! sweep calibrators × external pressures on the simulator, collect the
//! `rela[i][j]` matrix, and hand it to
//! [`pccs_core::ModelBuilder`].
//!
//! # Example
//!
//! ```no_run
//! use pccs_soc::SocConfig;
//! use pccs_workloads::calibrate::{CalibrationConfig, build_model};
//!
//! let soc = SocConfig::xavier();
//! let gpu = soc.pu_index("GPU").unwrap();
//! let cpu = soc.pu_index("CPU").unwrap();
//! let (model, _data) = build_model(&soc, gpu, cpu, &CalibrationConfig::default())?;
//! println!("GPU normal BW boundary: {:.1} GB/s", model.normal_bw);
//! # Ok::<(), pccs_core::ModelBuildError>(())
//! ```

/// The processor-centric model-construction pipeline (Section 3.2).
pub mod calibrate;
/// DNN inference traffic proxies for the DLA.
pub mod dnn;
/// DNN layer graphs: per-layer compute and traffic accounting.
pub mod layers;
/// The eleven three-PU co-run workloads of Table 8.
pub mod mixes;
/// Phase detection over bandwidth time series.
pub mod phases;
/// Rodinia benchmark traffic proxies.
pub mod rodinia;

pub use calibrate::{build_model, CalibrationConfig};
pub use dnn::DnnModel;
pub use mixes::{WorkloadMix, TABLE8_MIXES};
pub use rodinia::RodiniaBenchmark;
