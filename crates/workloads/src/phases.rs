//! Phase detection over bandwidth time series.
//!
//! The paper applies PCCS to multi-phase programs by predicting each phase
//! separately (Section 3.2, Figure 13) and cites phase-shift detection as a
//! well-studied, orthogonal ingredient. This module supplies the missing
//! piece for trace-driven use: segmenting a sampled bandwidth-demand series
//! into stable phases that can feed
//! [`PhasedWorkload`].
//!
//! The detector is a deliberately simple online change-point rule: a new
//! phase opens when `min_run` consecutive samples deviate from the current
//! phase's running mean by more than `threshold`. Simplicity keeps it
//! deterministic and easy to reason about in tests; fancier detectors plug
//! in at the same interface.

use pccs_core::PhasedWorkload;
use serde::{Deserialize, Serialize};

/// One detected phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSegment {
    /// Index of the first sample in the phase.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Mean bandwidth demand over the phase (same unit as the series).
    pub mean_bw: f64,
}

impl PhaseSegment {
    /// Number of samples in the phase.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the phase holds no samples (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Detects phases in a bandwidth series.
///
/// * `threshold` — absolute deviation (GB/s) that counts as "out of phase";
/// * `min_run` — consecutive deviating samples required to open a new
///   phase (suppresses single-sample spikes).
///
/// Returns at least one segment for a non-empty series; segments tile the
/// series exactly.
///
/// # Panics
///
/// Panics if `threshold` is not positive or `min_run` is zero.
pub fn detect_phases(series: &[f64], threshold: f64, min_run: usize) -> Vec<PhaseSegment> {
    assert!(threshold > 0.0, "threshold must be positive");
    assert!(min_run > 0, "min_run must be positive");
    if series.is_empty() {
        return Vec::new();
    }

    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut sum = series[0];
    let mut count = 1usize;
    let mut deviating = 0usize;

    for (i, &v) in series.iter().enumerate().skip(1) {
        let mean = sum / count as f64;
        if (v - mean).abs() > threshold {
            deviating += 1;
            if deviating >= min_run {
                // Close the current phase before the deviation run began.
                let cut = i + 1 - deviating;
                if cut > start {
                    let seg_sum: f64 = series[start..cut].iter().sum();
                    segments.push(PhaseSegment {
                        start,
                        end: cut,
                        mean_bw: seg_sum / (cut - start) as f64,
                    });
                }
                start = cut;
                sum = series[start..=i].iter().sum();
                count = i - start + 1;
                deviating = 0;
                continue;
            }
        } else {
            deviating = 0;
        }
        sum += v;
        count += 1;
    }
    let seg_sum: f64 = series[start..].iter().sum();
    segments.push(PhaseSegment {
        start,
        end: series.len(),
        mean_bw: seg_sum / (series.len() - start) as f64,
    });
    segments
}

/// Converts detected phases into a [`PhasedWorkload`] weighted by phase
/// duration.
///
/// # Panics
///
/// Panics if `segments` is empty.
pub fn to_phased_workload(name: impl Into<String>, segments: &[PhaseSegment]) -> PhasedWorkload {
    assert!(!segments.is_empty(), "at least one phase required");
    let phases: Vec<(f64, f64)> = segments
        .iter()
        .map(|s| (s.mean_bw.max(0.0), s.len() as f64))
        .collect();
    PhasedWorkload::new(name, &phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series() -> Vec<f64> {
        let mut v = vec![20.0; 40];
        v.extend(vec![80.0; 60]);
        v.extend(vec![45.0; 40]);
        v
    }

    #[test]
    fn detects_clean_steps() {
        let phases = detect_phases(&step_series(), 10.0, 3);
        assert_eq!(phases.len(), 3);
        assert!((phases[0].mean_bw - 20.0).abs() < 1.0);
        assert!((phases[1].mean_bw - 80.0).abs() < 1.0);
        assert!((phases[2].mean_bw - 45.0).abs() < 1.0);
    }

    #[test]
    fn segments_tile_the_series() {
        let series = step_series();
        let phases = detect_phases(&series, 10.0, 3);
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases.last().unwrap().end, series.len());
        for w in phases.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn spikes_shorter_than_min_run_are_ignored() {
        let mut series = vec![30.0; 50];
        series[20] = 100.0; // single-sample spike
        series[21] = 100.0;
        let phases = detect_phases(&series, 10.0, 3);
        assert_eq!(phases.len(), 1);
    }

    #[test]
    fn noise_below_threshold_keeps_one_phase() {
        let series: Vec<f64> = (0..100).map(|i| 50.0 + ((i % 7) as f64 - 3.0)).collect();
        let phases = detect_phases(&series, 8.0, 3);
        assert_eq!(phases.len(), 1);
        assert!((phases[0].mean_bw - 50.0).abs() < 2.0);
    }

    #[test]
    fn empty_series_yields_no_phases() {
        assert!(detect_phases(&[], 5.0, 2).is_empty());
    }

    #[test]
    fn converts_to_phased_workload_with_duration_weights() {
        let phases = detect_phases(&step_series(), 10.0, 3);
        let w = to_phased_workload("stepper", &phases);
        assert_eq!(w.phases().len(), 3);
        // The 60-sample phase carries the largest weight.
        let max = w
            .phases()
            .iter()
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
            .unwrap();
        assert!((max.demand_gbps - 80.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        detect_phases(&[1.0], 0.0, 1);
    }

    #[test]
    fn segment_len_helpers() {
        let s = PhaseSegment {
            start: 3,
            end: 10,
            mean_bw: 1.0,
        };
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
    }
}
