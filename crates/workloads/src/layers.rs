//! DNN layer graphs: per-layer compute and traffic accounting.
//!
//! The paper runs whole networks on the DLA and characterizes them by their
//! aggregate bandwidth demand. This module derives those aggregates from
//! first principles — per-layer multiply–accumulate counts and tensor
//! footprints (fp16) — for the four networks the paper uses, and can also
//! expose a network as a [`PhasedWorkload`] whose phases are the layers
//! (weighted by their estimated execution-time share), connecting the DLA
//! experiments to the multi-phase machinery of Section 3.2.

use pccs_core::PhasedWorkload;
use pccs_soc::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

/// Bytes per tensor element (fp16 inference).
const ELEM_BYTES: f64 = 2.0;

/// One layer of a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// A 2-D convolution.
    Conv {
        /// Square filter size.
        k: u32,
        /// Input channels.
        c_in: u32,
        /// Output channels.
        c_out: u32,
        /// Output spatial height (= width; square feature maps).
        out_hw: u32,
        /// How many times this layer repeats consecutively.
        repeat: u32,
    },
    /// A fully connected layer.
    Fc {
        /// Input features.
        inputs: u32,
        /// Output features.
        outputs: u32,
    },
}

impl Layer {
    /// Arithmetic operations (2 × multiply–accumulates), including repeats.
    pub fn flops(&self) -> f64 {
        match *self {
            Layer::Conv {
                k,
                c_in,
                c_out,
                out_hw,
                repeat,
            } => {
                2.0 * f64::from(k)
                    * f64::from(k)
                    * f64::from(c_in)
                    * f64::from(c_out)
                    * f64::from(out_hw)
                    * f64::from(out_hw)
                    * f64::from(repeat)
            }
            Layer::Fc { inputs, outputs } => 2.0 * f64::from(inputs) * f64::from(outputs),
        }
    }

    /// DRAM traffic in bytes: weights plus input and output activations
    /// (weights stream once; activation reuse inside the conv buffer is
    /// assumed — the DLA's 512 KB convolution buffer holds the working
    /// set, so each tensor moves once).
    pub fn bytes(&self) -> f64 {
        match *self {
            Layer::Conv {
                k,
                c_in,
                c_out,
                out_hw,
                repeat,
            } => {
                let weights = f64::from(k) * f64::from(k) * f64::from(c_in) * f64::from(c_out);
                let out_act = f64::from(c_out) * f64::from(out_hw) * f64::from(out_hw);
                // Input activations approximated by the output size of the
                // previous repeat (same shape within a repeated block).
                let in_act = f64::from(c_in) * f64::from(out_hw) * f64::from(out_hw);
                (weights + in_act + out_act) * ELEM_BYTES * f64::from(repeat)
            }
            Layer::Fc { inputs, outputs } => {
                (f64::from(inputs) * f64::from(outputs) + f64::from(inputs) + f64::from(outputs))
                    * ELEM_BYTES
            }
        }
    }

    /// Operational intensity of the layer (flops per byte).
    pub fn ops_per_byte(&self) -> f64 {
        self.flops() / self.bytes()
    }
}

/// A whole network as a layer sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGraph {
    /// Network name.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl LayerGraph {
    /// ResNet-50 (ImageNet, 224×224): the stem plus the four bottleneck
    /// stages and the classifier head.
    pub fn resnet50() -> Self {
        use Layer::*;
        Self {
            name: "Resnet-50".into(),
            layers: vec![
                Conv {
                    k: 7,
                    c_in: 3,
                    c_out: 64,
                    out_hw: 112,
                    repeat: 1,
                },
                // Stage 2 (3 bottlenecks at 56×56).
                Conv {
                    k: 1,
                    c_in: 64,
                    c_out: 64,
                    out_hw: 56,
                    repeat: 3,
                },
                Conv {
                    k: 3,
                    c_in: 64,
                    c_out: 64,
                    out_hw: 56,
                    repeat: 3,
                },
                Conv {
                    k: 1,
                    c_in: 64,
                    c_out: 256,
                    out_hw: 56,
                    repeat: 3,
                },
                // Stage 3 (4 bottlenecks at 28×28).
                Conv {
                    k: 1,
                    c_in: 256,
                    c_out: 128,
                    out_hw: 28,
                    repeat: 4,
                },
                Conv {
                    k: 3,
                    c_in: 128,
                    c_out: 128,
                    out_hw: 28,
                    repeat: 4,
                },
                Conv {
                    k: 1,
                    c_in: 128,
                    c_out: 512,
                    out_hw: 28,
                    repeat: 4,
                },
                // Stage 4 (6 bottlenecks at 14×14).
                Conv {
                    k: 1,
                    c_in: 512,
                    c_out: 256,
                    out_hw: 14,
                    repeat: 6,
                },
                Conv {
                    k: 3,
                    c_in: 256,
                    c_out: 256,
                    out_hw: 14,
                    repeat: 6,
                },
                Conv {
                    k: 1,
                    c_in: 256,
                    c_out: 1024,
                    out_hw: 14,
                    repeat: 6,
                },
                // Stage 5 (3 bottlenecks at 7×7).
                Conv {
                    k: 1,
                    c_in: 1024,
                    c_out: 512,
                    out_hw: 7,
                    repeat: 3,
                },
                Conv {
                    k: 3,
                    c_in: 512,
                    c_out: 512,
                    out_hw: 7,
                    repeat: 3,
                },
                Conv {
                    k: 1,
                    c_in: 512,
                    c_out: 2048,
                    out_hw: 7,
                    repeat: 3,
                },
                Fc {
                    inputs: 2048,
                    outputs: 1000,
                },
            ],
        }
    }

    /// VGG-19 (ImageNet): sixteen 3×3 convolutions plus three FC layers.
    pub fn vgg19() -> Self {
        use Layer::*;
        Self {
            name: "VGG-19".into(),
            layers: vec![
                Conv {
                    k: 3,
                    c_in: 3,
                    c_out: 64,
                    out_hw: 224,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 64,
                    c_out: 64,
                    out_hw: 224,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 64,
                    c_out: 128,
                    out_hw: 112,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 128,
                    c_out: 128,
                    out_hw: 112,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 128,
                    c_out: 256,
                    out_hw: 56,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 256,
                    c_out: 256,
                    out_hw: 56,
                    repeat: 3,
                },
                Conv {
                    k: 3,
                    c_in: 256,
                    c_out: 512,
                    out_hw: 28,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 512,
                    c_out: 512,
                    out_hw: 28,
                    repeat: 3,
                },
                Conv {
                    k: 3,
                    c_in: 512,
                    c_out: 512,
                    out_hw: 14,
                    repeat: 4,
                },
                Fc {
                    inputs: 25_088,
                    outputs: 4096,
                },
                Fc {
                    inputs: 4096,
                    outputs: 4096,
                },
                Fc {
                    inputs: 4096,
                    outputs: 1000,
                },
            ],
        }
    }

    /// AlexNet (ImageNet): five convolutions plus three FC layers.
    pub fn alexnet() -> Self {
        use Layer::*;
        Self {
            name: "Alexnet".into(),
            layers: vec![
                Conv {
                    k: 11,
                    c_in: 3,
                    c_out: 96,
                    out_hw: 55,
                    repeat: 1,
                },
                Conv {
                    k: 5,
                    c_in: 96,
                    c_out: 256,
                    out_hw: 27,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 256,
                    c_out: 384,
                    out_hw: 13,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 384,
                    c_out: 384,
                    out_hw: 13,
                    repeat: 1,
                },
                Conv {
                    k: 3,
                    c_in: 384,
                    c_out: 256,
                    out_hw: 13,
                    repeat: 1,
                },
                Fc {
                    inputs: 9216,
                    outputs: 4096,
                },
                Fc {
                    inputs: 4096,
                    outputs: 4096,
                },
                Fc {
                    inputs: 4096,
                    outputs: 1000,
                },
            ],
        }
    }

    /// The small MNIST CNN the paper calibrates the DLA with.
    pub fn mnist() -> Self {
        use Layer::*;
        Self {
            name: "MNIST".into(),
            layers: vec![
                Conv {
                    k: 5,
                    c_in: 1,
                    c_out: 32,
                    out_hw: 28,
                    repeat: 1,
                },
                Conv {
                    k: 5,
                    c_in: 32,
                    c_out: 64,
                    out_hw: 14,
                    repeat: 1,
                },
                Fc {
                    inputs: 3136,
                    outputs: 128,
                },
                Fc {
                    inputs: 128,
                    outputs: 10,
                },
            ],
        }
    }

    /// Total arithmetic operations of one inference.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Total DRAM traffic of one inference, in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.layers.iter().map(Layer::bytes).sum()
    }

    /// Aggregate operational intensity (flops per byte).
    pub fn aggregate_intensity(&self) -> f64 {
        self.total_flops() / self.total_bytes()
    }

    /// Splits the network into coarse execution phases for scheduling: the
    /// convolutional body (high operational intensity, modest bandwidth
    /// demand) followed by the fully connected head (weight streaming at
    /// ~1 flop/byte — effectively a memory-saturating phase). Each group
    /// is returned as an aggregate kernel plus its DRAM traffic in bytes;
    /// groups with no layers are omitted, so a conv-only network yields a
    /// single phase.
    pub fn phase_split(&self) -> Vec<(KernelDesc, f64)> {
        let mut groups: Vec<(KernelDesc, f64)> = Vec::new();
        let mut push = |label: &str, layers: Vec<&Layer>, locality: f64, writes: f64| {
            let bytes: f64 = layers.iter().map(|l| l.bytes()).sum();
            if bytes <= 0.0 {
                return;
            }
            let flops: f64 = layers.iter().map(|l| l.flops()).sum();
            groups.push((
                KernelDesc::new(
                    format!("{}/{label}", self.name),
                    flops / bytes,
                    locality,
                    writes,
                    1.0,
                ),
                bytes,
            ));
        };
        let (convs, fcs): (Vec<&Layer>, Vec<&Layer>) = self
            .layers
            .iter()
            .partition(|l| matches!(l, Layer::Conv { .. }));
        push("conv", convs, 0.9, 0.25);
        // FC weights stream sequentially once: near-perfect row locality,
        // almost no writes.
        push("fc", fcs, 0.95, 0.05);
        groups
    }

    /// The network as a phased workload: each layer is a phase whose
    /// standalone bandwidth demand follows from its intensity on an engine
    /// retiring `flops_per_mem_cycle`, weighted by its estimated time share
    /// `max(compute time, memory time)`.
    ///
    /// # Panics
    ///
    /// Panics if `flops_per_mem_cycle` or `peak_bytes_per_cycle` is not
    /// positive.
    pub fn to_phased(&self, flops_per_mem_cycle: f64, peak_bytes_per_cycle: f64) -> PhasedWorkload {
        assert!(flops_per_mem_cycle > 0.0, "compute rate must be positive");
        assert!(peak_bytes_per_cycle > 0.0, "memory rate must be positive");
        let phases: Vec<(f64, f64)> = self
            .layers
            .iter()
            .map(|layer| {
                let compute_cycles = layer.flops() / flops_per_mem_cycle;
                let memory_cycles = layer.bytes() / peak_bytes_per_cycle;
                let time = compute_cycles.max(memory_cycles);
                let demand_bpc = layer.bytes() / time.max(f64::MIN_POSITIVE);
                (demand_bpc, time)
            })
            .collect();
        PhasedWorkload::new(self.name.clone(), &phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_magnitudes_are_right() {
        let g = LayerGraph::resnet50();
        // ~6-8 Gflop per 224x224 inference (the canonical figure is
        // 7.7 Gflop; shortcut convolutions are not modelled).
        let gflop = g.total_flops() / 1e9;
        assert!((5.0..10.0).contains(&gflop), "ResNet-50 {gflop:.1} Gflop");
        // ~25 M parameters -> ~70 MB fp16 weights + activations.
        let mb = g.total_bytes() / 1e6;
        assert!((40.0..120.0).contains(&mb), "ResNet-50 traffic {mb:.0} MB");
    }

    #[test]
    fn vgg19_is_heavier_than_resnet() {
        // VGG-19 is ~19.6 Gflop — 2.5x ResNet-50.
        assert!(LayerGraph::vgg19().total_flops() > 2.0 * LayerGraph::resnet50().total_flops());
    }

    #[test]
    fn alexnet_is_small_but_fc_heavy() {
        let a = LayerGraph::alexnet();
        assert!((1.5..3.5).contains(&(a.total_flops() / 1e9)), "~2.3 Gflop");
        // Its three FC layers dominate the traffic, dragging the aggregate
        // intensity far below the conv-dominated networks'.
        assert!(a.aggregate_intensity() < LayerGraph::resnet50().aggregate_intensity());
    }

    #[test]
    fn conv_layers_have_much_higher_intensity_than_fc() {
        let conv = Layer::Conv {
            k: 3,
            c_in: 256,
            c_out: 256,
            out_hw: 28,
            repeat: 1,
        };
        let fc = Layer::Fc {
            inputs: 4096,
            outputs: 4096,
        };
        assert!(conv.ops_per_byte() > 50.0 * fc.ops_per_byte());
        // FC layers stream weights once: intensity ≈ 1 flop/byte.
        assert!((0.5..2.0).contains(&fc.ops_per_byte()));
    }

    #[test]
    fn aggregate_intensities_match_the_calibrated_proxies_in_magnitude() {
        // The conv-dominated networks' derived aggregates agree with the
        // hand-calibrated DnnModel intensities (88–108 ops/byte) within a
        // small factor; FC-heavy AlexNet diverges because fp16 weight
        // streaming dominates its byte count (batch-1 inference), which the
        // DLA hides behind weight compression — hence its calibrated proxy
        // sits higher.
        for (graph, lo, hi) in [
            (LayerGraph::resnet50(), 40.0, 250.0),
            (LayerGraph::vgg19(), 40.0, 400.0),
            (LayerGraph::alexnet(), 10.0, 60.0),
        ] {
            let i = graph.aggregate_intensity();
            assert!(
                (lo..hi).contains(&i),
                "{}: aggregate intensity {i:.0} outside [{lo}, {hi}]",
                graph.name
            );
        }
    }

    #[test]
    fn phased_form_has_one_phase_per_layer() {
        let g = LayerGraph::mnist();
        let w = g.to_phased(1339.0, 64.0);
        assert_eq!(w.phases().len(), g.layers.len());
        let total_weight: f64 = w.phases().iter().map(|p| p.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_split_separates_conv_from_fc() {
        let g = LayerGraph::vgg19();
        let phases = g.phase_split();
        assert_eq!(phases.len(), 2);
        let (conv, conv_bytes) = &phases[0];
        let (fc, fc_bytes) = &phases[1];
        assert!(conv.name.ends_with("/conv"));
        assert!(fc.name.ends_with("/fc"));
        // The conv body is compute-dense; the FC head streams weights.
        assert!(conv.ops_per_byte > 50.0 * fc.ops_per_byte);
        assert!((0.5..3.0).contains(&fc.ops_per_byte));
        // The two groups account for all traffic.
        assert!((conv_bytes + fc_bytes - g.total_bytes()).abs() < 1.0);
    }

    #[test]
    fn repeats_scale_flops_linearly() {
        let one = Layer::Conv {
            k: 3,
            c_in: 64,
            c_out: 64,
            out_hw: 56,
            repeat: 1,
        };
        let three = Layer::Conv {
            k: 3,
            c_in: 64,
            c_out: 64,
            out_hw: 56,
            repeat: 3,
        };
        assert!((three.flops() / one.flops() - 3.0).abs() < 1e-12);
        assert!((three.bytes() / one.bytes() - 3.0).abs() < 1e-12);
    }
}
