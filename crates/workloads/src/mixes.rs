//! The eleven three-PU co-run workloads of Table 8.

use crate::dnn::DnnModel;
use crate::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// One co-run workload: a Rodinia benchmark on the CPU and GPU plus a DNN
/// on the DLA (Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Workload letter (A–K).
    pub id: char,
    /// Benchmark on the CPU.
    pub cpu: RodiniaBenchmark,
    /// Benchmark on the GPU.
    pub gpu: RodiniaBenchmark,
    /// Network on the DLA.
    pub dla: DnnModel,
}

/// Table 8's eleven representative workloads.
pub const TABLE8_MIXES: [WorkloadMix; 11] = {
    use DnnModel::*;
    use RodiniaBenchmark::*;
    [
        WorkloadMix {
            id: 'A',
            cpu: Streamcluster,
            gpu: Pathfinder,
            dla: Resnet50,
        },
        WorkloadMix {
            id: 'B',
            cpu: Streamcluster,
            gpu: Pathfinder,
            dla: Vgg19,
        },
        WorkloadMix {
            id: 'C',
            cpu: Streamcluster,
            gpu: Leukocyte,
            dla: Alexnet,
        },
        WorkloadMix {
            id: 'D',
            cpu: Streamcluster,
            gpu: Srad,
            dla: Resnet50,
        },
        WorkloadMix {
            id: 'E',
            cpu: Pathfinder,
            gpu: Streamcluster,
            dla: Vgg19,
        },
        WorkloadMix {
            id: 'F',
            cpu: Pathfinder,
            gpu: Heartwall,
            dla: Alexnet,
        },
        WorkloadMix {
            id: 'G',
            cpu: Kmeans,
            gpu: Btree,
            dla: Resnet50,
        },
        WorkloadMix {
            id: 'H',
            cpu: Kmeans,
            gpu: Srad,
            dla: Vgg19,
        },
        WorkloadMix {
            id: 'I',
            cpu: Hotspot,
            gpu: Bfs,
            dla: Alexnet,
        },
        WorkloadMix {
            id: 'J',
            cpu: Srad,
            gpu: Pathfinder,
            dla: Resnet50,
        },
        WorkloadMix {
            id: 'K',
            cpu: Srad,
            gpu: Leukocyte,
            dla: Vgg19,
        },
    ]
};

impl WorkloadMix {
    /// Looks a mix up by its letter.
    pub fn by_id(id: char) -> Option<WorkloadMix> {
        TABLE8_MIXES
            .iter()
            .copied()
            .find(|m| m.id == id.to_ascii_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_mixes_with_unique_ids() {
        assert_eq!(TABLE8_MIXES.len(), 11);
        let ids: std::collections::HashSet<_> = TABLE8_MIXES.iter().map(|m| m.id).collect();
        assert_eq!(ids.len(), 11);
        assert!(ids.contains(&'A') && ids.contains(&'K'));
    }

    #[test]
    fn lookup_by_id_is_case_insensitive() {
        let a = WorkloadMix::by_id('a').unwrap();
        assert_eq!(a.cpu, RodiniaBenchmark::Streamcluster);
        assert_eq!(a.gpu, RodiniaBenchmark::Pathfinder);
        assert_eq!(a.dla, DnnModel::Resnet50);
        assert!(WorkloadMix::by_id('z').is_none());
    }

    #[test]
    fn table8_matches_paper_rows() {
        // Spot-check a few table entries against the paper.
        let e = WorkloadMix::by_id('E').unwrap();
        assert_eq!(e.cpu, RodiniaBenchmark::Pathfinder);
        assert_eq!(e.gpu, RodiniaBenchmark::Streamcluster);
        let i = WorkloadMix::by_id('I').unwrap();
        assert_eq!(i.cpu, RodiniaBenchmark::Hotspot);
        assert_eq!(i.gpu, RodiniaBenchmark::Bfs);
        assert_eq!(i.dla, DnnModel::Alexnet);
    }
}
