//! DNN inference traffic proxies for the DLA.
//!
//! The paper runs ImageNet inference (ResNet-50, VGG-19, AlexNet) and MNIST
//! on Xavier's DLA, observing that "the DLA can only achieve 20–30 GB/s
//! bandwidth in most standalone runs" (§4.1.2). The proxies here assign
//! each network an aggregate arithmetic intensity that lands its standalone
//! demand in that range, and the DLA calibrators vary the convolution
//! filter size to sweep operational intensity — exactly the paper's model
//! construction knob ("for DLA, we use MNIST neural network and control its
//! operational intensities by varying convolution filter sizes", §4.1.1).

use crate::layers::LayerGraph;
use pccs_soc::kernel::KernelDesc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The neural networks used in the paper's DLA experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnnModel {
    /// ResNet-50 on ImageNet.
    Resnet50,
    /// VGG-19 on ImageNet.
    Vgg19,
    /// AlexNet on ImageNet.
    Alexnet,
    /// The small MNIST CNN used for calibration.
    Mnist,
}

impl DnnModel {
    /// The three ImageNet networks of Table 8 / Figure 12.
    pub fn imagenet() -> [DnnModel; 3] {
        [DnnModel::Resnet50, DnnModel::Vgg19, DnnModel::Alexnet]
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            DnnModel::Resnet50 => "Resnet-50",
            DnnModel::Vgg19 => "VGG-19",
            DnnModel::Alexnet => "Alexnet",
            DnnModel::Mnist => "MNIST",
        }
    }

    /// Parses a paper label (case- and punctuation-insensitive).
    pub fn from_label(label: &str) -> Option<DnnModel> {
        let l: String = label
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match l.as_str() {
            "resnet50" => Some(DnnModel::Resnet50),
            "vgg19" => Some(DnnModel::Vgg19),
            "alexnet" => Some(DnnModel::Alexnet),
            "mnist" => Some(DnnModel::Mnist),
            _ => None,
        }
    }

    /// Aggregate operational intensity of the network's inference pass on a
    /// DLA-class engine (ops per byte of DRAM traffic). Dense convolutional
    /// networks (VGG) stream more activations per weight-reuse than
    /// residual networks; AlexNet's large early filters give it the highest
    /// reuse of this set.
    pub fn ops_per_byte(&self) -> f64 {
        match self {
            DnnModel::Resnet50 => 108.0,
            DnnModel::Vgg19 => 88.0,
            DnnModel::Alexnet => 140.0,
            DnnModel::Mnist => 300.0,
        }
    }

    /// The proxy kernel of this network on the DLA.
    pub fn kernel(&self) -> KernelDesc {
        // Inference streams activations/weights with regular layout: high
        // row locality, a modest write stream (output activations).
        KernelDesc::new(self.label(), self.ops_per_byte(), 0.9, 0.25, 1.0)
    }

    /// The network's layer graph (per-layer flops/bytes accounting; see
    /// [`crate::layers`]).
    pub fn layer_graph(&self) -> LayerGraph {
        match self {
            DnnModel::Resnet50 => LayerGraph::resnet50(),
            DnnModel::Vgg19 => LayerGraph::vgg19(),
            DnnModel::Alexnet => LayerGraph::alexnet(),
            DnnModel::Mnist => LayerGraph::mnist(),
        }
    }

    /// A DLA calibrator built from the MNIST network with an adjusted
    /// convolution filter size: intensity grows with the filter area
    /// (`k × k` multiply–accumulates per loaded input element).
    pub fn mnist_calibrator(filter_size: u32) -> KernelDesc {
        assert!(
            (1..=16).contains(&filter_size),
            "filter size must be in 1..=16"
        );
        let ops_per_byte = 4.0 * f64::from(filter_size * filter_size);
        KernelDesc::new(
            format!("mnist-conv{filter_size}x{filter_size}"),
            ops_per_byte,
            0.9,
            0.25,
            1.0,
        )
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_soc::pu::PuConfig;

    #[test]
    fn labels_round_trip() {
        for m in [
            DnnModel::Resnet50,
            DnnModel::Vgg19,
            DnnModel::Alexnet,
            DnnModel::Mnist,
        ] {
            assert_eq!(DnnModel::from_label(m.label()), Some(m));
        }
        assert_eq!(DnnModel::from_label("VGG-19"), Some(DnnModel::Vgg19));
        assert_eq!(DnnModel::from_label("bert"), None);
    }

    #[test]
    fn dla_demands_land_in_paper_range() {
        // Compute-limited demand of each ImageNet network on the Xavier DLA
        // should fall in the paper's observed 10–35 GB/s band.
        let dla = PuConfig::xavier_dla();
        let mem_clock = 2133.0;
        for m in DnnModel::imagenet() {
            let k = m.kernel();
            let bpc = k.compute_limited_demand(dla.flops_per_mem_cycle(mem_clock), 64);
            let gbps = bpc * mem_clock * 1e6 / 1e9;
            assert!(
                (8.0..40.0).contains(&gbps),
                "{m}: compute-limited demand {gbps:.1} GB/s"
            );
        }
    }

    #[test]
    fn layer_graphs_resolve_per_network() {
        for m in DnnModel::imagenet() {
            let g = m.layer_graph();
            assert_eq!(g.name, m.label());
            assert!(g.total_flops() > 1e9);
        }
        assert!(DnnModel::Mnist.layer_graph().total_flops() < 1e9);
    }

    #[test]
    fn filter_size_sweeps_intensity() {
        let small = DnnModel::mnist_calibrator(1);
        let large = DnnModel::mnist_calibrator(8);
        assert!(large.ops_per_byte > 30.0 * small.ops_per_byte);
    }

    #[test]
    #[should_panic(expected = "filter size")]
    fn zero_filter_panics() {
        DnnModel::mnist_calibrator(0);
    }
}
