//! Property-based tests of the serving layer's invariants: strict
//! admission never admits a request it predicts to finish late, and the
//! arrival generator is a deterministic, ordered function of its seed.

use pccs_core::PccsModel;
use pccs_core::SlowdownModel;
use pccs_serve::admission::{AdmissionController, CandidateService, PuLoad};
use pccs_serve::arrivals::ArrivalProcess;
use pccs_serve::request::contended_classes;
use pccs_serve::AdmissionPolicy;
use proptest::prelude::*;

fn paper_pair() -> Vec<Box<dyn SlowdownModel>> {
    vec![
        Box::new(PccsModel::xavier_cpu_paper()),
        Box::new(PccsModel::xavier_gpu_paper()),
    ]
}

fn arb_candidates() -> impl Strategy<Value = Vec<CandidateService>> {
    prop::collection::vec((0usize..2, 1_000.0f64..500_000.0, 0.1f64..40.0), 1..4).prop_map(|raw| {
        raw.into_iter()
            .map(
                |(pu_idx, standalone_cycles, demand_gbps)| CandidateService {
                    pu_idx,
                    standalone_cycles,
                    demand_gbps,
                },
            )
            .collect()
    })
}

fn arb_loads() -> impl Strategy<Value = Vec<PuLoad>> {
    prop::collection::vec((0.0f64..2_000_000.0, 0.0f64..60.0), 2..3).prop_map(|raw| {
        raw.into_iter()
            .map(|(busy_until, external_gbps)| PuLoad {
                busy_until,
                external_gbps,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn strict_admission_never_admits_a_predicted_miss(
        candidates in arb_candidates(),
        mut loads in arb_loads(),
        now in 0.0f64..1_000_000.0,
        deadline_slack in 1u64..2_000_000,
    ) {
        // Candidates index into the load table; pad it to cover them.
        while loads.len() < 2 {
            loads.push(PuLoad { busy_until: 0.0, external_gbps: 0.0 });
        }
        let admission = AdmissionController::new(AdmissionPolicy::Strict, paper_pair());
        let deadline = now as u64 + deadline_slack;
        let decision = admission.assess(now, Some(deadline), &candidates, &loads);
        if decision.admit {
            prop_assert!(
                decision.predicted_finish <= deadline as f64,
                "strict admission admitted a predicted miss: finish {} > deadline {}",
                decision.predicted_finish,
                deadline
            );
        }
        // Deadline-free requests are always admitted under strict.
        let free = admission.assess(now, None, &candidates, &loads);
        prop_assert!(free.admit);
    }

    #[test]
    fn miss_prob_threshold_is_monotone(
        candidates in arb_candidates(),
        loads in arb_loads(),
        deadline_slack in 1u64..2_000_000,
    ) {
        let strict_tau = AdmissionController::new(
            AdmissionPolicy::MissProb(0.05), paper_pair());
        let loose_tau = AdmissionController::new(
            AdmissionPolicy::MissProb(0.5), paper_pair());
        let decision_strict = strict_tau.assess(0.0, Some(deadline_slack), &candidates, &loads);
        let decision_loose = loose_tau.assess(0.0, Some(deadline_slack), &candidates, &loads);
        // Anything a 5% threshold admits, a 50% threshold must also admit.
        prop_assert!(
            !decision_strict.admit || decision_loose.admit,
            "tightening the miss threshold admitted more"
        );
        prop_assert!((0.0..=1.0).contains(&decision_strict.predicted_miss));
    }

    #[test]
    fn arrivals_are_seed_deterministic_and_ordered(
        seed in 0u64..1_000,
        rate in 0.5f64..50.0,
    ) {
        let classes = contended_classes();
        let process = ArrivalProcess::Poisson { rate_per_mcycle: rate };
        let a = process.generate(&classes, 200_000, seed).unwrap();
        let b = process.generate(&classes, 200_000, seed).unwrap();
        prop_assert_eq!(&a, &b, "same seed produced different arrival streams");
        for pair in a.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "arrivals out of order");
        }
        for event in &a {
            prop_assert!(event.at < 200_000);
            prop_assert!(event.class_idx < classes.len());
        }
    }
}
