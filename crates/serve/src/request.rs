//! Request classes: the unit of arrival in the serving loop.
//!
//! A request class is a job template — phases, eligibility, a relative
//! deadline — plus a sampling weight. The arrival process draws classes by
//! weight and stamps each draw with a unique id and an arrival cycle,
//! producing an ordinary `pccs-sched` [`Job`] the placement policies
//! already understand.

use pccs_sched::job::Job;
use pccs_soc::pu::PuKind;
use pccs_workloads::layers::LayerGraph;
use pccs_workloads::RodiniaBenchmark;

/// Work per background `srad` request, in lines — a bandwidth hog long
/// enough (~660k cycles) that the CPU keeps near-constant pressure on the
/// bus at moderate arrival rates, which is what springs the DLA trap.
const SRAD_REQUEST_LINES: f64 = 240_000.0;

/// Inferences' worth of traffic per `alexnet` request. FC-heavy: the DLA
/// and GPU are nearly tied standalone, but the DLA collapses under CPU
/// bandwidth pressure — the placement trap PCCS sees and greedy does not.
const ALEXNET_REQUEST_SCALE: f64 = 0.02;

/// Inferences' worth of traffic per `mnist` request (tiny network; the
/// scale batches many inferences into one request). On Xavier the DLA
/// edges out the GPU standalone but slows ~1.7x under CPU bandwidth
/// pressure while the GPU barely moves — the placement trap PCCS sees
/// and the oblivious greedy walks into.
const MNIST_REQUEST_SCALE: f64 = 2.0;

/// Relative deadline of an `alexnet` request, cycles after arrival.
const ALEXNET_DEADLINE: u64 = 200_000;

/// Relative deadline of an `mnist` request, cycles after arrival.
const MNIST_DEADLINE: u64 = 170_000;

/// A weighted request template the arrival process draws from.
#[derive(Debug, Clone)]
pub struct RequestClass {
    /// Class name, used in SLO accounting and trace replay.
    pub name: String,
    /// The job template; its `id` and `arrival` are placeholders
    /// overwritten by [`RequestClass::request`].
    pub template: Job,
    /// Deadline relative to arrival, if the class has an SLO.
    pub relative_deadline: Option<u64>,
    /// Sampling weight among classes (need not sum to 1).
    pub weight: f64,
}

impl RequestClass {
    /// A class from a job template.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive.
    pub fn new(
        name: impl Into<String>,
        template: Job,
        relative_deadline: Option<u64>,
        weight: f64,
    ) -> Self {
        assert!(weight > 0.0, "class weight must be positive");
        Self {
            name: name.into(),
            template,
            relative_deadline,
            weight,
        }
    }

    /// Stamps one concrete request from the template.
    pub fn request(&self, id: usize, arrival: u64) -> Job {
        let mut job = self.template.clone();
        job.id = id;
        job.arrival = arrival;
        job.deadline = self.relative_deadline.map(|d| arrival + d);
        job
    }

    /// Whether the class can run on a PU of class `kind`.
    pub fn runs_on(&self, kind: PuKind) -> bool {
        self.template.runs_on(kind)
    }
}

/// The contended serving workload, mirroring the `contended` scheduling
/// mix at request granularity: a CPU-pinned `srad` bandwidth hog, an
/// FC-heavy `alexnet` class whose best placement flips under pressure,
/// and a latency-sensitive `mnist` class whose best placement flips under
/// pressure.
pub fn contended_classes() -> Vec<RequestClass> {
    vec![
        RequestClass::new(
            "srad",
            Job::rodinia(0, RodiniaBenchmark::Srad, 0, SRAD_REQUEST_LINES)
                .with_eligible(vec![PuKind::Cpu]),
            None,
            0.2,
        ),
        RequestClass::new(
            "alexnet",
            Job::dnn(0, &LayerGraph::alexnet(), 0, ALEXNET_REQUEST_SCALE),
            Some(ALEXNET_DEADLINE),
            0.4,
        ),
        RequestClass::new(
            "mnist",
            Job::dnn(0, &LayerGraph::mnist(), 0, MNIST_REQUEST_SCALE),
            Some(MNIST_DEADLINE),
            0.4,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_requests_carry_absolute_deadlines() {
        let classes = contended_classes();
        let alexnet = classes.iter().find(|c| c.name == "alexnet").unwrap();
        let job = alexnet.request(17, 1_000);
        assert_eq!(job.id, 17);
        assert_eq!(job.arrival, 1_000);
        assert_eq!(job.deadline, Some(1_000 + ALEXNET_DEADLINE));
        assert_eq!(job.name, alexnet.template.name);
    }

    #[test]
    fn contended_classes_cover_the_trap() {
        let classes = contended_classes();
        assert_eq!(classes.len(), 3);
        let srad = &classes[0];
        assert!(srad.runs_on(PuKind::Cpu));
        assert!(!srad.runs_on(PuKind::Dla));
        assert!(srad.relative_deadline.is_none());
        let alexnet = &classes[1];
        assert!(alexnet.runs_on(PuKind::Dla) && alexnet.runs_on(PuKind::Gpu));
        assert!(alexnet.relative_deadline.is_some());
    }
}
