//! Typed failures of the serving loop.

use std::fmt;

/// A failure configuring or running the serving loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The serving loop was started with no request classes.
    EmptyClasses,
    /// A request class cannot run on any PU of the SoC preset.
    UnschedulableClass {
        /// The class name.
        class: String,
        /// The SoC the class was validated against.
        soc: String,
    },
    /// A trace-replay line names a class that does not exist.
    UnknownTraceClass {
        /// The class named in the trace.
        class: String,
        /// The classes the run does have.
        available: Vec<String>,
    },
    /// A trace-replay line could not be parsed.
    BadTrace {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// An arrival or admission parameter is outside its valid range.
    BadConfig {
        /// What was wrong.
        detail: String,
    },
    /// Offline model calibration against the SoC failed.
    Calibration {
        /// The underlying build error, rendered.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyClasses => write!(f, "serving needs at least one request class"),
            Self::UnschedulableClass { class, soc } => {
                write!(f, "request class '{class}' cannot run on any PU of {soc}")
            }
            Self::UnknownTraceClass { class, available } => write!(
                f,
                "trace names unknown request class '{class}' (available: {})",
                available.join(", ")
            ),
            Self::BadTrace { line, detail } => write!(f, "trace line {line}: {detail}"),
            Self::BadConfig { detail } => write!(f, "invalid serving config: {detail}"),
            Self::Calibration { detail } => write!(f, "model calibration failed: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = ServeError::UnknownTraceClass {
            class: "resnet".into(),
            available: vec!["mnist".into(), "alexnet".into()],
        };
        let text = e.to_string();
        assert!(text.contains("resnet"));
        assert!(text.contains("mnist, alexnet"));
        assert!(ServeError::BadTrace {
            line: 4,
            detail: "missing class".into()
        }
        .to_string()
        .contains("line 4"));
    }
}
