//! Incremental recalibration: track observed-vs-predicted drift per PU.
//!
//! The admission controller and the PCCS placement policy both trust
//! per-PU slowdown models calibrated offline. When the served mix drifts
//! away from the calibration conditions, predictions go stale. The drift
//! monitor watches the ratio of observed to predicted bundle service time
//! over a sliding window per PU; when the window's mean ratio strays from
//! the correction currently in force by more than a bound, it refreshes
//! the correction (a multiplicative service-time factor the admission
//! controller applies) and counts a recalibration.
//!
//! The monitor is a *windowed view over the prediction-audit ledger*
//! (`pccs_telemetry::audit`): the serving engine resolves each completed
//! bundle into one [`AuditRecord`] and feeds it through
//! [`DriftMonitor::observe_audited`], which writes the pair to the
//! process-global ledger and folds it into the sliding window in one
//! step. What the offline scorecards slice after a run is exactly the
//! stream the monitor reacted to online.

use pccs_telemetry::audit::{self, AuditRecord};
use pccs_telemetry::metrics;
use std::collections::VecDeque;

/// Sliding-window drift tracking for the per-PU models.
#[derive(Debug)]
pub struct DriftMonitor {
    /// Per-PU windows of observed/predicted service-time ratios.
    windows: Vec<VecDeque<f64>>,
    /// Per-PU corrections currently in force.
    corrections: Vec<f64>,
    /// Window length in observations.
    window: usize,
    /// Relative drift that triggers a recalibration (e.g. `0.25` = the
    /// window mean strayed 25% from the correction in force).
    bound: f64,
    recalibrations: u64,
}

impl DriftMonitor {
    /// A monitor for `pus` processing units.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `bound` is not positive.
    pub fn new(pus: usize, window: usize, bound: f64) -> Self {
        assert!(window > 0, "drift window must be non-empty");
        assert!(bound > 0.0, "drift bound must be positive");
        Self {
            windows: (0..pus).map(|_| VecDeque::with_capacity(window)).collect(),
            corrections: vec![1.0; pus],
            window,
            bound,
            recalibrations: 0,
        }
    }

    /// Feeds one completed bundle's predicted and observed service time on
    /// PU `pu_idx`. Returns the refreshed correction when this observation
    /// pushed the window past the drift bound, `None` otherwise.
    pub fn observe(&mut self, pu_idx: usize, predicted: f64, observed: f64) -> Option<f64> {
        if predicted <= 0.0 || observed <= 0.0 {
            return None;
        }
        let window = self.windows.get_mut(pu_idx)?;
        if window.len() == self.window {
            window.pop_front();
        }
        window.push_back(observed / predicted);
        if window.len() < self.window {
            return None;
        }
        // The ratio is measured against *corrected* predictions, so the
        // target correction compounds the one already in force.
        let mean: f64 = window.iter().sum::<f64>() / window.len() as f64;
        if (mean - 1.0).abs() <= self.bound {
            return None;
        }
        let refreshed = (self.corrections[pu_idx] * mean).clamp(0.1, 10.0);
        self.corrections[pu_idx] = refreshed;
        window.clear();
        self.recalibrations += 1;
        // Only published when drift actually trips, so the bench baselines
        // (drift-free replays) never carry it; keep it out of the registry.
        // pccs-lint: allow(metrics-registry-drift)
        metrics::add("serve.recalibrations", 1);
        Some(refreshed)
    }

    /// Feeds one resolved prediction as an audit record: the record is
    /// written to the process-global ledger (when auditing is enabled)
    /// and its (predicted, achieved) pair drives the drift window exactly
    /// like [`DriftMonitor::observe`].
    pub fn observe_audited(&mut self, pu_idx: usize, rec: AuditRecord) -> Option<f64> {
        let (predicted, achieved) = (rec.predicted, rec.achieved);
        audit::record(rec);
        self.observe(pu_idx, predicted, achieved)
    }

    /// The correction currently in force for PU `pu_idx`.
    pub fn correction(&self, pu_idx: usize) -> f64 {
        self.corrections.get(pu_idx).copied().unwrap_or(1.0)
    }

    /// Recalibrations triggered so far.
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_predictions_never_trigger() {
        let mut mon = DriftMonitor::new(2, 4, 0.25);
        for _ in 0..20 {
            assert!(mon.observe(0, 1_000.0, 1_050.0).is_none());
        }
        assert_eq!(mon.recalibrations(), 0);
        assert_eq!(mon.correction(0), 1.0);
    }

    #[test]
    fn sustained_underprediction_refreshes_the_correction() {
        let mut mon = DriftMonitor::new(1, 4, 0.25);
        let mut refreshed = None;
        for _ in 0..4 {
            refreshed = mon.observe(0, 1_000.0, 2_000.0);
        }
        let factor = refreshed.expect("four 2x observations fill the window");
        assert!((factor - 2.0).abs() < 1e-9);
        assert_eq!(mon.recalibrations(), 1);
        assert_eq!(mon.correction(0), factor);
        // The window restarts after a refresh: no immediate re-trigger.
        assert!(mon.observe(0, 1_000.0, 2_000.0).is_none());
    }

    #[test]
    fn corrections_compound_across_refreshes() {
        let mut mon = DriftMonitor::new(1, 2, 0.1);
        for _ in 0..2 {
            mon.observe(0, 1_000.0, 1_500.0);
        }
        assert!((mon.correction(0) - 1.5).abs() < 1e-9);
        for _ in 0..2 {
            mon.observe(0, 1_000.0, 1_500.0);
        }
        assert!((mon.correction(0) - 2.25).abs() < 1e-9);
        assert_eq!(mon.recalibrations(), 2);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut mon = DriftMonitor::new(1, 1, 0.1);
        assert!(mon.observe(0, 0.0, 100.0).is_none());
        assert!(mon.observe(0, 100.0, 0.0).is_none());
        assert!(mon.observe(5, 100.0, 100.0).is_none()); // out of range
        assert_eq!(mon.recalibrations(), 0);
    }

    #[test]
    fn empty_window_reports_identity_correction() {
        let mon = DriftMonitor::new(3, 4, 0.25);
        for pu in 0..3 {
            assert_eq!(mon.correction(pu), 1.0);
        }
        assert_eq!(mon.correction(99), 1.0, "out-of-range PU reads identity");
        assert_eq!(mon.recalibrations(), 0);
    }

    #[test]
    fn single_sample_window_triggers_immediately() {
        let mut mon = DriftMonitor::new(1, 1, 0.25);
        // One drifting observation fills a window of one and triggers.
        let factor = mon.observe(0, 1_000.0, 3_000.0).expect("window of one");
        assert!((factor - 3.0).abs() < 1e-9);
        assert_eq!(mon.recalibrations(), 1);
        // An in-bound single observation does not.
        assert!(mon.observe(0, 1_000.0, 1_100.0).is_none());
    }

    #[test]
    fn window_boundary_evicts_the_oldest_sample() {
        let mut mon = DriftMonitor::new(1, 2, 0.25);
        // A 4x outlier enters first but never pairs with a full window.
        assert!(mon.observe(0, 1_000.0, 4_000.0).is_none());
        // Two accurate samples evict it: means are (4.0+1.0)/2 = 2.5
        // (trigger), then after the refresh-clear the window refills.
        let refreshed = mon.observe(0, 1_000.0, 1_000.0).expect("mean 2.5 drifts");
        assert!((refreshed - 2.5).abs() < 1e-9);
        // Post-refresh, only new samples count: two accurate ones stay
        // quiet because the outlier is gone from the window.
        assert!(mon.observe(0, 1_000.0, 1_000.0).is_none());
        assert!(mon.observe(0, 1_000.0, 1_000.0).is_none());
        assert_eq!(mon.recalibrations(), 1);
        // Eviction keeps the window at its bound: a third consecutive
        // sample pops the first, so the mean tracks the last two only.
        let mut mon = DriftMonitor::new(1, 2, 0.25);
        assert!(mon.observe(0, 1_000.0, 4_000.0).is_none());
        assert_eq!(mon.windows[0].len(), 1);
        mon.observe(0, 1_000.0, 4_000.0);
        assert_eq!(mon.windows[0].len(), 0, "trigger clears the window");
        assert!(mon.observe(0, 1_000.0, 1_000.0).is_none());
        assert!(mon.observe(0, 1_000.0, 1_000.0).is_none());
        assert_eq!(mon.windows[0].len(), 2, "window capped at its length");
        mon.observe(0, 1_000.0, 1_000.0);
        assert_eq!(mon.windows[0].len(), 2, "boundary eviction pops the front");
    }

    #[test]
    fn audited_observations_land_in_the_ledger() {
        let mut mon = DriftMonitor::new(1, 1, 0.25);
        audit::set_enabled(true);
        let refreshed = mon.observe_audited(
            0,
            AuditRecord::new("serve", "cycles", 1_000.0, 2_000.0)
                .with_soc("xavier")
                .with_workload("drift-unit-test"),
        );
        audit::set_enabled(false);
        assert!((refreshed.expect("2x drift on a window of one") - 2.0).abs() < 1e-9);
        let recs: Vec<_> = audit::snapshot()
            .into_iter()
            .filter(|r| r.workload == "drift-unit-test")
            .collect();
        assert_eq!(recs.len(), 1, "the monitor writes through to the ledger");
        assert_eq!(recs[0].source, "serve");
        assert!((recs[0].achieved - 2_000.0).abs() < 1e-12);
    }
}
