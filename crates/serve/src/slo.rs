//! SLO accounting: per-class latency histograms and deadline-miss rates.
//!
//! The accountant records every request's fate into per-class
//! `pccs-telemetry` latency histograms and, at every epoch boundary of
//! the serving loop, publishes the counters accumulated since the last
//! boundary into the process-global metrics registry (`serve.*`). The
//! final per-class summaries become the [`ClassSlo`] rows of the run
//! report.

use crate::report::ClassSlo;
use pccs_telemetry::{metrics, LatencyHistogram};
use std::collections::BTreeMap;

/// Per-class tallies.
#[derive(Debug, Default)]
struct ClassStats {
    latency: LatencyHistogram,
    offered: usize,
    admitted: usize,
    shed: usize,
    completed: usize,
    missed: usize,
}

/// Records request fates and publishes SLO metrics at epoch boundaries.
#[derive(Debug)]
pub struct SloAccountant {
    classes: BTreeMap<String, ClassStats>,
    /// Counter values already published to the metrics registry, so each
    /// epoch publishes only the delta.
    published: [usize; 5],
    epochs: u64,
    /// Metric-name prefix (`"serve"` in production; tests use a unique
    /// prefix because the registry is process-global).
    prefix: String,
}

impl Default for SloAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl SloAccountant {
    /// An empty accountant publishing under the `serve.*` metric names.
    pub fn new() -> Self {
        Self::with_prefix("serve")
    }

    /// An empty accountant publishing under `<prefix>.*` metric names.
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        Self {
            classes: BTreeMap::new(),
            published: [0; 5],
            epochs: 0,
            prefix: prefix.into(),
        }
    }

    /// Records an arrival of class `class`.
    pub fn offered(&mut self, class: &str) {
        self.stats(class).offered += 1;
    }

    /// Records the admission verdict for a request of class `class`.
    pub fn admitted(&mut self, class: &str, admit: bool) {
        let stats = self.stats(class);
        if admit {
            stats.admitted += 1;
        } else {
            stats.shed += 1;
        }
    }

    /// Records a completion: latency in cycles and whether the deadline
    /// was missed.
    pub fn completed(&mut self, class: &str, latency: f64, missed: bool) {
        let stats = self.stats(class);
        stats.completed += 1;
        stats.latency.record(latency.max(0.0) as u64);
        if missed {
            stats.missed += 1;
        }
    }

    /// Publishes the counters accumulated since the last boundary to the
    /// metrics registry, plus the worst per-class p99 seen so far as a
    /// max-gauge. Called by the engine at every epoch boundary and once at
    /// the end of the run.
    pub fn publish_epoch(&mut self) {
        // Metric names are built from `self.prefix` (`serve.` in
        // production), so the registry-drift rule can't see them at the
        // call sites below; the directive declares them instead.
        // pccs-lint: publishes(serve.offered, serve.admitted, serve.shed, serve.completed, serve.missed, serve.epochs, serve.p99_latency)
        self.epochs += 1;
        let totals = self.totals();
        let names = ["offered", "admitted", "shed", "completed", "missed"];
        for (i, name) in names.iter().enumerate() {
            metrics::add(
                &format!("{}.{name}", self.prefix),
                (totals[i] - self.published[i]) as u64,
            );
        }
        self.published = totals;
        metrics::add(&format!("{}.epochs", self.prefix), 1);
        let worst_p99 = self
            .classes
            .values()
            .filter(|s| s.latency.count() > 0)
            .map(|s| s.latency.p99())
            .max()
            .unwrap_or(0);
        metrics::observe_max(&format!("{}.p99_latency", self.prefix), worst_p99);
    }

    /// Epoch boundaries published so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `[offered, admitted, shed, completed, missed]` across classes.
    pub fn totals(&self) -> [usize; 5] {
        let mut t = [0; 5];
        for s in self.classes.values() {
            t[0] += s.offered;
            t[1] += s.admitted;
            t[2] += s.shed;
            t[3] += s.completed;
            t[4] += s.missed;
        }
        t
    }

    /// The latency histogram of all classes merged.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for s in self.classes.values() {
            merged.merge(&s.latency);
        }
        merged
    }

    /// Final per-class SLO rows, in `class_order` order (classes that saw
    /// no traffic still get a row).
    pub fn summaries(&self, class_order: &[String]) -> Vec<ClassSlo> {
        class_order
            .iter()
            .map(|name| {
                let empty = ClassStats::default();
                let s = self.classes.get(name).unwrap_or(&empty);
                ClassSlo {
                    class: name.clone(),
                    offered: s.offered,
                    admitted: s.admitted,
                    shed: s.shed,
                    completed: s.completed,
                    missed: s.missed,
                    p50_latency: s.latency.try_percentile(50.0).unwrap_or(0),
                    p95_latency: s.latency.try_percentile(95.0).unwrap_or(0),
                    p99_latency: s.latency.try_percentile(99.0).unwrap_or(0),
                    mean_latency: s.latency.mean(),
                    miss_rate_pct: miss_rate_pct(s.offered, s.missed, s.shed),
                }
            })
            .collect()
    }

    fn stats(&mut self, class: &str) -> &mut ClassStats {
        self.classes.entry(class.to_owned()).or_default()
    }
}

/// Deadline misses plus sheds as a percentage of offered requests: a shed
/// request never meets its SLO, so it counts against the miss rate.
pub fn miss_rate_pct(offered: usize, missed: usize, shed: usize) -> f64 {
    if offered == 0 {
        return 0.0;
    }
    100.0 * (missed + shed) as f64 / offered as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_flow_into_summaries() {
        let mut slo = SloAccountant::new();
        for _ in 0..4 {
            slo.offered("mnist");
        }
        slo.admitted("mnist", true);
        slo.admitted("mnist", true);
        slo.admitted("mnist", true);
        slo.admitted("mnist", false);
        slo.completed("mnist", 1_000.0, false);
        slo.completed("mnist", 3_000.0, true);
        let rows = slo.summaries(&["mnist".into(), "alexnet".into()]);
        assert_eq!(rows.len(), 2);
        let m = &rows[0];
        assert_eq!((m.offered, m.admitted, m.shed), (4, 3, 1));
        assert_eq!((m.completed, m.missed), (2, 1));
        assert!(m.p50_latency >= 1_000 && m.p99_latency >= m.p50_latency);
        // 1 miss + 1 shed out of 4 offered.
        assert!((m.miss_rate_pct - 50.0).abs() < 1e-9);
        let a = &rows[1];
        assert_eq!(a.offered, 0);
        assert_eq!(a.miss_rate_pct, 0.0);
    }

    #[test]
    fn epoch_publishing_emits_deltas_not_totals() {
        // A unique prefix keeps this test isolated from concurrent tests
        // publishing into the process-global registry.
        let mut slo = SloAccountant::with_prefix("test.slo.unit");
        slo.offered("a");
        slo.admitted("a", true);
        slo.publish_epoch();
        assert_eq!(metrics::counter("test.slo.unit.offered").get(), 1);
        slo.offered("a");
        slo.admitted("a", false);
        slo.publish_epoch();
        assert_eq!(metrics::counter("test.slo.unit.offered").get(), 2);
        assert_eq!(metrics::counter("test.slo.unit.shed").get(), 1);
        assert_eq!(metrics::counter("test.slo.unit.epochs").get(), 2);
        assert_eq!(slo.epochs(), 2);
    }

    #[test]
    fn merged_latency_spans_classes() {
        let mut slo = SloAccountant::new();
        slo.completed("a", 100.0, false);
        slo.completed("b", 5_000.0, false);
        let merged = slo.merged_latency();
        assert_eq!(merged.count(), 2);
        assert!(merged.max() >= 5_000);
    }
}
