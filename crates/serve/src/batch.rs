//! Request batching: coalesce same-class requests into bundles.
//!
//! Serving accelerators one tiny inference at a time wastes placement
//! decisions and probe work. The batcher re-forms bundles from the pending
//! queue at every decision round: same-class requests arriving within a
//! batching window merge, up to a maximum batch size, into a single job
//! whose phases carry the combined traffic. Members share the bundle's
//! placement and complete together; bundles that do not get placed simply
//! dissolve back into the pending queue and re-form next round, so
//! batching never strands a request.

use crate::request::RequestClass;
use pccs_sched::job::Job;

/// Batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most requests a bundle may carry (1 disables batching).
    pub max_batch: usize,
    /// Only requests whose arrivals fall within this many cycles of the
    /// bundle's first member may join it.
    pub window: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 4,
            window: 50_000,
        }
    }
}

/// An admitted request waiting for placement.
#[derive(Debug, Clone)]
pub struct PendingRequest {
    /// Request id (arrival order, unique per run).
    pub id: usize,
    /// Index into the run's class list.
    pub class_idx: usize,
    /// The stamped job (absolute arrival and deadline).
    pub job: Job,
}

/// A coalesced group of same-class requests, placed as one job.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// The combined job: member traffic summed, earliest member deadline,
    /// id of the first member.
    pub job: Job,
    /// Member request ids, in arrival order.
    pub members: Vec<usize>,
    /// Index into the run's class list.
    pub class_idx: usize,
}

/// Forms bundles from the pending queue.
///
/// `pending` must be in arrival order (the engine's queue is). Grouping is
/// per class, greedy in arrival order, so the result is a deterministic
/// function of the queue.
pub fn form_bundles(
    pending: &[PendingRequest],
    classes: &[RequestClass],
    cfg: &BatchConfig,
) -> Vec<Bundle> {
    let max_batch = cfg.max_batch.max(1);
    let mut bundles: Vec<Bundle> = Vec::new();
    for class_idx in 0..classes.len() {
        let mut group: Vec<&PendingRequest> = Vec::new();
        for req in pending.iter().filter(|r| r.class_idx == class_idx) {
            let fits = group.len() < max_batch
                && group
                    .first()
                    .is_none_or(|f| req.job.arrival.saturating_sub(f.job.arrival) <= cfg.window);
            if !fits {
                bundles.push(seal(&group, class_idx));
                group.clear();
            }
            group.push(req);
        }
        if !group.is_empty() {
            bundles.push(seal(&group, class_idx));
        }
    }
    // Oldest bundle first, so the policy's service order sees the queue in
    // arrival order across classes.
    bundles.sort_by_key(|b| (b.job.arrival, b.job.id));
    bundles
}

/// Seals a non-empty group of same-class requests into a bundle.
fn seal(group: &[&PendingRequest], class_idx: usize) -> Bundle {
    let first = group.first().expect("seal is called on non-empty groups");
    let mut job = first.job.clone();
    let n = group.len() as f64;
    for phase in &mut job.phases {
        phase.work_lines *= n;
    }
    // The bundle inherits the most urgent member's deadline and the latest
    // member's arrival (it cannot start before everyone it carries exists).
    job.deadline = group.iter().filter_map(|r| r.job.deadline).min();
    job.arrival = group
        .iter()
        .map(|r| r.job.arrival)
        .max()
        .unwrap_or(first.job.arrival);
    Bundle {
        job,
        members: group.iter().map(|r| r.id).collect(),
        class_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::contended_classes;

    fn pend(classes: &[RequestClass], id: usize, class_idx: usize, arrival: u64) -> PendingRequest {
        PendingRequest {
            id,
            class_idx,
            job: classes[class_idx].request(id, arrival),
        }
    }

    #[test]
    fn same_class_requests_coalesce_up_to_max_batch() {
        let classes = contended_classes();
        let pending: Vec<PendingRequest> = (0..5)
            .map(|i| pend(&classes, i, 1, i as u64 * 10))
            .collect();
        let cfg = BatchConfig {
            max_batch: 4,
            window: 1_000,
        };
        let bundles = form_bundles(&pending, &classes, &cfg);
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].members, vec![0, 1, 2, 3]);
        assert_eq!(bundles[1].members, vec![4]);
        // Traffic sums: 4 members carry 4x the single-request lines.
        let single = classes[1].template.total_lines();
        assert!((bundles[0].job.total_lines() - 4.0 * single).abs() < 1e-6);
        assert!((bundles[1].job.total_lines() - single).abs() < 1e-6);
    }

    #[test]
    fn the_window_splits_distant_arrivals() {
        let classes = contended_classes();
        let pending = vec![
            pend(&classes, 0, 1, 0),
            pend(&classes, 1, 1, 10),
            pend(&classes, 2, 1, 5_000),
        ];
        let cfg = BatchConfig {
            max_batch: 8,
            window: 100,
        };
        let bundles = form_bundles(&pending, &classes, &cfg);
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].members, vec![0, 1]);
        assert_eq!(bundles[1].members, vec![2]);
    }

    #[test]
    fn bundles_take_the_most_urgent_deadline_and_latest_arrival() {
        let classes = contended_classes();
        let pending = vec![pend(&classes, 0, 2, 100), pend(&classes, 1, 2, 300)];
        let cfg = BatchConfig::default();
        let bundles = form_bundles(&pending, &classes, &cfg);
        assert_eq!(bundles.len(), 1);
        let b = &bundles[0];
        assert_eq!(b.job.arrival, 300);
        let rel = classes[2].relative_deadline.unwrap();
        assert_eq!(b.job.deadline, Some(100 + rel));
        assert_eq!(b.job.id, 0);
    }

    #[test]
    fn classes_never_mix_and_order_is_by_arrival() {
        let classes = contended_classes();
        let pending = vec![
            pend(&classes, 0, 2, 50),
            pend(&classes, 1, 1, 0),
            pend(&classes, 2, 2, 60),
        ];
        let bundles = form_bundles(&pending, &classes, &BatchConfig::default());
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].class_idx, 1); // arrival 0 first
        assert_eq!(bundles[1].members, vec![0, 2]);
    }

    #[test]
    fn max_batch_one_disables_batching() {
        let classes = contended_classes();
        let pending: Vec<PendingRequest> = (0..3).map(|i| pend(&classes, i, 1, 0)).collect();
        let cfg = BatchConfig {
            max_batch: 1,
            window: 1_000,
        };
        let bundles = form_bundles(&pending, &classes, &cfg);
        assert_eq!(bundles.len(), 3);
        assert!(bundles.iter().all(|b| b.members.len() == 1));
    }
}
