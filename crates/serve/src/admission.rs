//! Admission control: shed requests the SoC cannot serve in time.
//!
//! At every arrival the controller predicts, with the per-PU PCCS models,
//! when the request would finish on its best eligible PU given the queued
//! backlog and the bandwidth pressure of the current residents. Requests
//! predicted to blow their deadline (`strict`), or whose predicted miss
//! probability exceeds a threshold (`p<frac>`), are shed at the door —
//! protecting the latency of the requests already admitted.

use pccs_core::SlowdownModel;

/// Floor on predicted relative speed, percent (guards divisions).
const MIN_RS_PCT: f64 = 0.5;

/// Steepness of the logistic mapping headroom → miss probability.
const MISS_STEEPNESS: f64 = 4.0;

/// When to shed a request at arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit everything (no shedding; SLO reflects placement alone).
    Open,
    /// Shed when the predicted finish exceeds the deadline.
    Strict,
    /// Shed when the predicted deadline-miss probability exceeds the
    /// threshold in `[0, 1]`.
    MissProb(f64),
}

impl AdmissionPolicy {
    /// A one-word description for reports (`"open"`, `"strict"`,
    /// `"p0.10"`).
    pub fn describe(&self) -> String {
        match self {
            Self::Open => "open".into(),
            Self::Strict => "strict".into(),
            Self::MissProb(p) => format!("p{p:.2}"),
        }
    }
}

/// The scheduling state of one PU as admission control sees it.
#[derive(Debug, Clone, Copy)]
pub struct PuLoad {
    /// Absolute cycle the PU's committed work (running plus queued-for-it)
    /// is predicted to drain.
    pub busy_until: f64,
    /// Bandwidth demand of the *other* PUs' residents, GB/s — the external
    /// pressure this PU's next job would run under.
    pub external_gbps: f64,
}

/// One eligible placement of the candidate request.
#[derive(Debug, Clone, Copy)]
pub struct CandidateService {
    /// The PU this estimate is for, indexed like `SocConfig::pus`.
    pub pu_idx: usize,
    /// Standalone execution time on that PU, cycles.
    pub standalone_cycles: f64,
    /// Mean bandwidth demand of the request on that PU, GB/s.
    pub demand_gbps: f64,
}

/// What admission control decided about one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionDecision {
    /// Whether the request was admitted.
    pub admit: bool,
    /// Predicted finish on the best eligible PU, absolute cycles.
    pub predicted_finish: f64,
    /// Predicted deadline-miss probability in `[0, 1]` (0 when the request
    /// has no deadline).
    pub predicted_miss: f64,
}

/// PCCS-model-driven admission controller.
pub struct AdmissionController {
    policy: AdmissionPolicy,
    models: Vec<Box<dyn SlowdownModel>>,
    /// Per-PU multiplicative correction on predicted service time,
    /// maintained by the drift monitor (1.0 = trust the model as-is).
    correction: Vec<f64>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("policy", &self.policy)
            .field("models", &self.models.len())
            .field("correction", &self.correction)
            .finish()
    }
}

impl AdmissionController {
    /// A controller over one slowdown model per PU.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(policy: AdmissionPolicy, models: Vec<Box<dyn SlowdownModel>>) -> Self {
        assert!(!models.is_empty(), "one model per PU required");
        let correction = vec![1.0; models.len()];
        Self {
            policy,
            models,
            correction,
        }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The contention-region label of a standalone demand on PU `pu_idx`
    /// under the admission models, for audit-ledger provenance.
    pub fn region_label(&self, pu_idx: usize, demand_gbps: f64) -> &'static str {
        self.models
            .get(pu_idx)
            .map_or("-", |m| m.region_label(demand_gbps))
    }

    /// Applies a drift-corrected service-time multiplier for PU `pu_idx`.
    pub fn set_correction(&mut self, pu_idx: usize, factor: f64) {
        if let Some(c) = self.correction.get_mut(pu_idx) {
            *c = factor.max(0.1);
        }
    }

    /// The current correction factor for PU `pu_idx`.
    pub fn correction(&self, pu_idx: usize) -> f64 {
        self.correction.get(pu_idx).copied().unwrap_or(1.0)
    }

    /// Predicted contended service time of `candidate` under `load`,
    /// cycles: the PCCS model's slowdown applied to the standalone time,
    /// scaled by the PU's drift correction.
    pub fn predicted_service(&self, candidate: &CandidateService, load: &PuLoad) -> f64 {
        let rs = self.models[candidate.pu_idx]
            .relative_speed_pct(candidate.demand_gbps, load.external_gbps)
            .max(MIN_RS_PCT);
        candidate.standalone_cycles * (100.0 / rs) * self.correction(candidate.pu_idx)
    }

    /// Assesses one request at `now`: predicted finish on the best eligible
    /// PU, miss probability against `deadline`, and the admit/shed verdict
    /// under the configured policy.
    ///
    /// With no eligible candidates the request is shed outright (miss
    /// probability 1).
    pub fn assess(
        &self,
        now: f64,
        deadline: Option<u64>,
        candidates: &[CandidateService],
        loads: &[PuLoad],
    ) -> AdmissionDecision {
        let mut best: Option<(f64, f64)> = None; // (finish, service)
        for cand in candidates {
            let Some(load) = loads.get(cand.pu_idx) else {
                continue;
            };
            let wait = (load.busy_until - now).max(0.0);
            let service = self.predicted_service(cand, load);
            let finish = now + wait + service;
            if best.is_none_or(|(f, _)| finish < f) {
                best = Some((finish, service));
            }
        }
        let Some((finish, service)) = best else {
            return AdmissionDecision {
                admit: false,
                predicted_finish: f64::INFINITY,
                predicted_miss: 1.0,
            };
        };
        let miss = match deadline {
            None => 0.0,
            Some(d) => {
                // Logistic in the normalized headroom: 0.5 exactly at the
                // deadline, → 0 with slack, → 1 when hopeless.
                let headroom = (d as f64 - finish) / service.max(1.0);
                1.0 / (1.0 + (MISS_STEEPNESS * headroom).exp())
            }
        };
        let admit = match self.policy {
            AdmissionPolicy::Open => true,
            AdmissionPolicy::Strict => deadline.is_none_or(|d| finish <= d as f64),
            AdmissionPolicy::MissProb(tau) => miss <= tau,
        };
        AdmissionDecision {
            admit,
            predicted_finish: finish,
            predicted_miss: miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_core::PccsModel;

    fn controller(policy: AdmissionPolicy) -> AdmissionController {
        let models: Vec<Box<dyn SlowdownModel>> = vec![
            Box::new(PccsModel::xavier_cpu_paper()),
            Box::new(PccsModel::xavier_gpu_paper()),
        ];
        AdmissionController::new(policy, models)
    }

    fn idle_loads() -> Vec<PuLoad> {
        vec![
            PuLoad {
                busy_until: 0.0,
                external_gbps: 0.0,
            },
            PuLoad {
                busy_until: 0.0,
                external_gbps: 0.0,
            },
        ]
    }

    fn quick_candidate() -> CandidateService {
        CandidateService {
            pu_idx: 1,
            standalone_cycles: 10_000.0,
            demand_gbps: 5.0,
        }
    }

    #[test]
    fn strict_sheds_predicted_late_requests() {
        let ctrl = controller(AdmissionPolicy::Strict);
        let loads = idle_loads();
        let easy = ctrl.assess(0.0, Some(1_000_000), &[quick_candidate()], &loads);
        assert!(easy.admit);
        assert!(easy.predicted_finish <= 1_000_000.0);
        let hopeless = ctrl.assess(0.0, Some(1_000), &[quick_candidate()], &loads);
        assert!(!hopeless.admit);
        assert!(hopeless.predicted_finish > 1_000.0);
        assert!(hopeless.predicted_miss > 0.5);
    }

    #[test]
    fn open_admits_everything_even_hopeless() {
        let ctrl = controller(AdmissionPolicy::Open);
        let d = ctrl.assess(0.0, Some(1), &[quick_candidate()], &idle_loads());
        assert!(d.admit);
        assert!(d.predicted_miss > 0.9);
    }

    #[test]
    fn miss_prob_threshold_orders_with_headroom() {
        let ctrl = controller(AdmissionPolicy::MissProb(0.1));
        let loads = idle_loads();
        let slack = ctrl.assess(0.0, Some(10_000_000), &[quick_candidate()], &loads);
        assert!(slack.admit);
        assert!(slack.predicted_miss < 0.1);
        let tight = ctrl.assess(0.0, Some(9_000), &[quick_candidate()], &loads);
        assert!(!tight.admit, "miss {:.3}", tight.predicted_miss);
    }

    #[test]
    fn backlog_and_pressure_push_the_prediction_out() {
        let ctrl = controller(AdmissionPolicy::Open);
        let idle = ctrl.assess(0.0, None, &[quick_candidate()], &idle_loads());
        let busy_loads = vec![
            PuLoad {
                busy_until: 0.0,
                external_gbps: 0.0,
            },
            PuLoad {
                busy_until: 50_000.0,
                external_gbps: 40.0,
            },
        ];
        let busy = ctrl.assess(0.0, None, &[quick_candidate()], &busy_loads);
        assert!(busy.predicted_finish > idle.predicted_finish + 50_000.0 - 1.0);
    }

    #[test]
    fn corrections_scale_predicted_service() {
        let mut ctrl = controller(AdmissionPolicy::Open);
        let load = PuLoad {
            busy_until: 0.0,
            external_gbps: 0.0,
        };
        let base = ctrl.predicted_service(&quick_candidate(), &load);
        ctrl.set_correction(1, 2.0);
        let doubled = ctrl.predicted_service(&quick_candidate(), &load);
        assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_candidates_means_shed() {
        let ctrl = controller(AdmissionPolicy::Open);
        let d = ctrl.assess(0.0, Some(1_000), &[], &idle_loads());
        assert!(!d.admit);
        assert_eq!(d.predicted_miss, 1.0);
    }
}
