//! The serving loop: a discrete-event scheduler for open-loop request
//! streams.
//!
//! Each run is a pipeline of arrivals → admission → batching → placement →
//! SLO accounting, replayed against the `pccs-soc` co-run simulator the
//! same way the offline `pccs-sched` engine replays a job list:
//!
//! 1. the arrival process is expanded up front from its seed;
//! 2. at every arrival, admission control predicts the request's finish
//!    with the per-PU PCCS models and sheds it if the policy says so;
//! 3. pending requests coalesce into same-class bundles;
//! 4. a `pccs-sched` placement policy decides where bundles run, probing
//!    the co-run simulator through the shared rate cache;
//! 5. completions feed per-class latency histograms, the epoch-boundary
//!    metric publishes, and the drift monitor that recalibrates the
//!    admission model when predictions go stale.
//!
//! Everything downstream of the seed is deterministic, so a run is a pure
//! function of `(soc, classes, config)` — the property the byte-identical
//! JSONL tests pin down.

use crate::admission::{AdmissionController, AdmissionPolicy, CandidateService, PuLoad};
use crate::arrivals::ArrivalProcess;
use crate::batch::{form_bundles, BatchConfig, Bundle, PendingRequest};
use crate::error::ServeError;
use crate::recalibrate::DriftMonitor;
use crate::report::{RequestOutcome, ServeReport};
use crate::request::RequestClass;
use crate::slo::{miss_rate_pct, SloAccountant};
use pccs_core::{PccsModel, SlowdownModel};
use pccs_sched::engine::SimProbe;
use pccs_sched::policy::{
    DecisionInput, PendingJob, PhaseEstimate, PlacementOption, Policy, Probe, PuSlot, Resident,
};
use pccs_soc::corun::CoRunConfig;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_telemetry::audit::AuditRecord;
use pccs_telemetry::{Profiler, TraceLog};
use pccs_workloads::calibrate::{build_model, CalibrationConfig};

/// Floor for measured rates, lines per cycle.
const MIN_RATE: f64 = 1e-9;

/// Work below this many lines counts as finished.
const WORK_EPSILON: f64 = 1e-6;

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The arrival process driving the run.
    pub arrivals: ArrivalProcess,
    /// Cycles of arrivals to generate; in-flight work drains past this.
    pub duration: u64,
    /// Arrival-process seed (the run's only randomness).
    pub seed: u64,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Request batching parameters.
    pub batch: BatchConfig,
    /// SLO metrics publish period, cycles.
    pub epoch: u64,
    /// Measurement configuration of the co-run rate probes.
    pub probe: CoRunConfig,
    /// Upper bound on serving events before the engine declares a
    /// livelock (defensive; never reached by the bundled policies).
    pub max_events: usize,
    /// Drift-monitor sliding-window length, observations per PU.
    pub drift_window: usize,
    /// Relative drift that triggers a recalibration.
    pub drift_bound: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson {
                rate_per_mcycle: 8.0,
            },
            duration: 2_000_000,
            seed: 42,
            admission: AdmissionPolicy::Open,
            batch: BatchConfig::default(),
            epoch: 250_000,
            probe: CoRunConfig::probe(),
            max_events: 1_000_000,
            drift_window: 8,
            drift_bound: 0.3,
        }
    }
}

impl ServeConfig {
    /// A faster preset for tests and smoke runs: shorter duration and
    /// probe horizon.
    pub fn quick() -> Self {
        Self {
            duration: 600_000,
            epoch: 100_000,
            probe: CoRunConfig::probe().with_horizon(8_000),
            ..Self::default()
        }
    }
}

/// Per-(class, PU) standalone estimates, computed once per run — request
/// classes are templates, so every request of a class shares them.
struct ClassProfile {
    /// `[class_idx][pu_idx]` → (standalone cycles, mean demand GB/s), or
    /// `None` when the class cannot run there.
    table: Vec<Vec<Option<(f64, f64)>>>,
}

impl ClassProfile {
    fn build(probe: &mut SimProbe, soc: &SocConfig, classes: &[RequestClass]) -> Self {
        let table = classes
            .iter()
            .map(|class| {
                soc.pus
                    .iter()
                    .enumerate()
                    .map(|(pu_idx, pu)| {
                        if !class.template.runs_on(pu.kind) {
                            return None;
                        }
                        let mut std_cycles = 0.0;
                        let mut weighted_bw = 0.0;
                        for ph in &class.template.phases {
                            let kernel = ph.kernel_for(pu.kind)?;
                            let (rate, bw) = probe.standalone(pu_idx, kernel);
                            let t = ph.work_lines / rate.max(MIN_RATE);
                            std_cycles += t;
                            weighted_bw += bw * t;
                        }
                        let demand = if std_cycles > 0.0 {
                            weighted_bw / std_cycles
                        } else {
                            0.0
                        };
                        Some((std_cycles, demand))
                    })
                    .collect()
            })
            .collect();
        Self { table }
    }

    /// Admission candidates for one request of `class_idx`.
    fn candidates(&self, class_idx: usize) -> Vec<CandidateService> {
        self.table[class_idx]
            .iter()
            .enumerate()
            .filter_map(|(pu_idx, entry)| {
                entry.map(|(standalone_cycles, demand_gbps)| CandidateService {
                    pu_idx,
                    standalone_cycles,
                    demand_gbps,
                })
            })
            .collect()
    }

    /// One queued request's standalone time spread over its eligible PUs —
    /// the optimistic backlog share admission charges for pending work.
    fn backlog_share(&self, class_idx: usize) -> Vec<(usize, f64)> {
        let eligible: Vec<(usize, f64)> = self.table[class_idx]
            .iter()
            .enumerate()
            .filter_map(|(pu, e)| e.map(|(std, _)| (pu, std)))
            .collect();
        let n = eligible.len().max(1) as f64;
        eligible
            .into_iter()
            .map(|(pu, std)| (pu, std / n))
            .collect()
    }
}

/// A bundle in flight.
struct RunningBundle {
    bundle: Bundle,
    pu_idx: usize,
    phase: usize,
    remaining_lines: f64,
    start: f64,
    /// Admission-model predicted contended service time at placement,
    /// compared with observed residence by the drift monitor.
    predicted_service: f64,
}

impl RunningBundle {
    fn kernel<'k>(&'k self, soc: &SocConfig) -> &'k KernelDesc {
        self.bundle.job.phases[self.phase]
            .kernel_for(soc.pus[self.pu_idx].kind)
            .expect("placement was validated against eligibility")
    }
}

/// One slowdown model per PU, calibrated against the co-run simulator
/// (the paper's §4.1 profiling step applied to serving).
///
/// # Errors
///
/// Returns [`ServeError::Calibration`] when a sweep fails validation — on
/// the bundled SoC presets it does not.
///
/// # Panics
///
/// Panics if `soc` lacks a CPU or GPU (every bundled preset has both).
pub fn calibrated_models(
    soc: &SocConfig,
    cfg: &CalibrationConfig,
) -> Result<Vec<PccsModel>, ServeError> {
    let cpu = soc.pu_index("CPU").expect("SoC has a CPU");
    let gpu = soc.pu_index("GPU").expect("SoC has a GPU");
    soc.pus
        .iter()
        .enumerate()
        .map(|(pu_idx, _)| {
            // The paper's pressure-PU convention: the CPU model is
            // calibrated under GPU pressure, every other PU under CPU.
            let pressure = if pu_idx == cpu { gpu } else { cpu };
            build_model(soc, pu_idx, pressure, cfg)
                .map(|(model, _)| model)
                .map_err(|e| ServeError::Calibration {
                    detail: format!("{}/PU{pu_idx}: {e}", soc.name),
                })
        })
        .collect()
}

/// One slowdown model per PU from the paper's published Xavier parameters
/// (Table 7), mapped by PU class — no calibration cost, suitable for
/// benchmarks.
pub fn paper_models(soc: &SocConfig) -> Vec<PccsModel> {
    use pccs_soc::pu::PuKind;
    soc.pus
        .iter()
        .map(|pu| match pu.kind {
            PuKind::Cpu => PccsModel::xavier_cpu_paper(),
            PuKind::Gpu => PccsModel::xavier_gpu_paper(),
            PuKind::Dla => PccsModel::xavier_dla_paper(),
        })
        .collect()
}

/// Boxes concrete models for the admission controller or a
/// [`pccs_sched::policy::PccsPolicy`].
pub fn boxed_models(models: &[PccsModel]) -> Vec<Box<dyn SlowdownModel>> {
    models
        .iter()
        .map(|m| {
            let b: Box<dyn SlowdownModel> = Box::new(m.clone());
            b
        })
        .collect()
}

/// Builds the policy's decision input from the current bundles and
/// residents (mirrors the offline engine's input construction).
fn build_input(
    probe: &mut SimProbe,
    soc: &SocConfig,
    now: f64,
    bundles: &[Bundle],
    running: &[RunningBundle],
) -> DecisionInput {
    let slots: Vec<PuSlot> = soc
        .pus
        .iter()
        .enumerate()
        .map(|(pu_idx, pu)| {
            let resident = running.iter().find(|r| r.pu_idx == pu_idx);
            let est_free_in = resident.map_or(0.0, |r| {
                let kernel = r.kernel(soc);
                let (rate, _) = probe.standalone(pu_idx, kernel);
                let mut left = r.remaining_lines / rate.max(MIN_RATE);
                for ph in &r.bundle.job.phases[r.phase + 1..] {
                    let k = ph
                        .kernel_for(pu.kind)
                        .expect("placement was validated against eligibility");
                    let (rate, _) = probe.standalone(pu_idx, k);
                    left += ph.work_lines / rate.max(MIN_RATE);
                }
                left
            });
            PuSlot {
                pu_idx,
                kind: pu.kind,
                name: pu.name.clone(),
                free: resident.is_none(),
                est_free_in,
            }
        })
        .collect();
    let queue: Vec<PendingJob> = bundles
        .iter()
        .map(|bundle| {
            let job = &bundle.job;
            let options: Vec<PlacementOption> = soc
                .pus
                .iter()
                .enumerate()
                .filter(|(_, pu)| job.runs_on(pu.kind))
                .map(|(pu_idx, pu)| {
                    let phases: Vec<PhaseEstimate> = job
                        .phases
                        .iter()
                        .map(|ph| {
                            let kernel = ph.kernel_for(pu.kind).expect("runs_on checked").clone();
                            let (rate, bw) = probe.standalone(pu_idx, &kernel);
                            PhaseEstimate {
                                kernel,
                                work_lines: ph.work_lines,
                                standalone_rate: rate,
                                demand_gbps: bw,
                            }
                        })
                        .collect();
                    let standalone_cycles = phases
                        .iter()
                        .map(|p| p.work_lines / p.standalone_rate.max(MIN_RATE))
                        .sum();
                    PlacementOption {
                        pu_idx,
                        standalone_cycles,
                        phases,
                    }
                })
                .collect();
            PendingJob {
                job_id: job.id,
                name: job.name.clone(),
                arrival: job.arrival,
                deadline: job.deadline,
                priority: job.priority,
                options,
            }
        })
        .collect();
    let residents: Vec<Resident> = running
        .iter()
        .map(|r| {
            let kernel = r.kernel(soc).clone();
            let (rate, bw) = probe.standalone(r.pu_idx, &kernel);
            Resident {
                pu_idx: r.pu_idx,
                job_id: r.bundle.job.id,
                kernel,
                demand_gbps: bw,
                standalone_rate: rate,
                remaining_lines: r.remaining_lines,
            }
        })
        .collect();
    DecisionInput {
        now,
        slots,
        queue,
        residents,
    }
}

/// The bandwidth pressure residents on *other* PUs put on `pu_idx`.
fn external_pressure(
    probe: &mut SimProbe,
    soc: &SocConfig,
    running: &[RunningBundle],
    pu_idx: usize,
) -> f64 {
    running
        .iter()
        .filter(|r| r.pu_idx != pu_idx)
        .map(|r| {
            let kernel = r.kernel(soc).clone();
            let (_, bw) = probe.standalone(r.pu_idx, &kernel);
            bw
        })
        .sum()
}

/// Moves a bundle from pending to running on `pu_idx`, recording the
/// admission model's service prediction for the drift monitor.
fn place_bundle(
    bundle: Bundle,
    pu_idx: usize,
    now: f64,
    predicted_service: f64,
    pending: &mut Vec<PendingRequest>,
    running: &mut Vec<RunningBundle>,
) {
    pending.retain(|p| !bundle.members.contains(&p.id));
    let remaining_lines = bundle.job.phases[0].work_lines;
    running.push(RunningBundle {
        bundle,
        pu_idx,
        phase: 0,
        remaining_lines,
        start: now,
        predicted_service,
    });
}

/// Serves the request classes on `soc` under `policy`, with admission
/// control driven by `models` (one per PU).
///
/// # Errors
///
/// Returns a [`ServeError`] when the class list is empty, a class cannot
/// run anywhere on `soc`, or the arrival process is misconfigured.
///
/// # Panics
///
/// Panics if `models` does not cover every PU or the engine exceeds
/// [`ServeConfig::max_events`] without finishing (defensive livelock
/// bound).
pub fn run_serve(
    soc: &SocConfig,
    classes: &[RequestClass],
    policy: &mut dyn Policy,
    models: Vec<Box<dyn SlowdownModel>>,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    if classes.is_empty() {
        return Err(ServeError::EmptyClasses);
    }
    assert!(
        models.len() >= soc.pus.len(),
        "one admission model per PU required"
    );
    for class in classes {
        if !soc.pus.iter().any(|pu| class.runs_on(pu.kind)) {
            return Err(ServeError::UnschedulableClass {
                class: class.name.clone(),
                soc: soc.name.clone(),
            });
        }
    }
    let arrivals = cfg.arrivals.generate(classes, cfg.duration, cfg.seed)?;
    let _prof = Profiler::scope("serve.run");
    let mut span = TraceLog::span("serve.run");
    span.counter("arrivals", arrivals.len() as f64);

    let mut probe = SimProbe::new(soc, cfg.probe.clone());
    let profile = ClassProfile::build(&mut probe, soc, classes);
    let mut admission = AdmissionController::new(cfg.admission, models);
    let mut drift = DriftMonitor::new(soc.pus.len(), cfg.drift_window, cfg.drift_bound);
    let mut slo = SloAccountant::new();
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(arrivals.len());
    let mut pending: Vec<PendingRequest> = Vec::new();
    let mut running: Vec<RunningBundle> = Vec::new();
    let mut arrival_cursor = 0usize;
    let mut decisions = 0usize;
    let mut now = 0.0_f64;
    let epoch = cfg.epoch.max(1) as f64;
    let mut next_epoch = epoch;
    let mut steps = 0usize;

    while arrival_cursor < arrivals.len() || !pending.is_empty() || !running.is_empty() {
        steps += 1;
        assert!(
            steps <= cfg.max_events,
            "serving loop exceeded {} events without finishing (policy {})",
            cfg.max_events,
            policy.name()
        );
        // Admit arrivals due by now.
        while arrivals
            .get(arrival_cursor)
            .is_some_and(|a| (a.at as f64) <= now)
        {
            let event = arrivals[arrival_cursor];
            arrival_cursor += 1;
            let id = outcomes.len();
            let class = &classes[event.class_idx];
            slo.offered(&class.name);
            let job = class.request(id, event.at);
            // What admission sees: per-PU drain time of committed work
            // (residents plus an optimistic share of the pending backlog)
            // and the external bandwidth pressure on each PU.
            let mut loads: Vec<PuLoad> = (0..soc.pus.len())
                .map(|pu_idx| {
                    let busy_until = running
                        .iter()
                        .find(|r| r.pu_idx == pu_idx)
                        .map_or(now, |r| {
                            let kernel = r.kernel(soc).clone();
                            let (rate, _) = probe.standalone(pu_idx, &kernel);
                            let mut left = r.remaining_lines / rate.max(MIN_RATE);
                            for ph in &r.bundle.job.phases[r.phase + 1..] {
                                let k = ph
                                    .kernel_for(soc.pus[pu_idx].kind)
                                    .expect("placement was validated");
                                let (rate, _) = probe.standalone(pu_idx, k);
                                left += ph.work_lines / rate.max(MIN_RATE);
                            }
                            now + left
                        });
                    let external_gbps = external_pressure(&mut probe, soc, &running, pu_idx);
                    PuLoad {
                        busy_until,
                        external_gbps,
                    }
                })
                .collect();
            for req in &pending {
                for (pu, share) in profile.backlog_share(req.class_idx) {
                    loads[pu].busy_until += share;
                }
            }
            let candidates = profile.candidates(event.class_idx);
            let decision = admission.assess(now, job.deadline, &candidates, &loads);
            slo.admitted(&class.name, decision.admit);
            outcomes.push(RequestOutcome {
                id,
                class: class.name.clone(),
                arrival: event.at,
                admitted: decision.admit,
                predicted_finish: decision.predicted_finish,
                predicted_miss: decision.predicted_miss,
                finish: 0.0,
                latency: 0.0,
                deadline: job.deadline,
                missed: false,
                pu: "-".to_owned(),
                batch_size: 0,
            });
            if decision.admit {
                pending.push(PendingRequest {
                    id,
                    class_idx: event.class_idx,
                    job,
                });
            }
        }
        // Batch pending requests and let the policy place bundles.
        let any_free = soc
            .pus
            .iter()
            .enumerate()
            .any(|(i, _)| running.iter().all(|r| r.pu_idx != i));
        if !pending.is_empty() && any_free {
            let bundles = form_bundles(&pending, classes, &cfg.batch);
            let input = build_input(&mut probe, soc, now, &bundles, &running);
            let assignments = policy.decide(&input, &mut probe);
            let mut placed_any = false;
            for a in assignments {
                let Some(pos) = bundles.iter().position(|b| b.job.id == a.job_id) else {
                    continue; // unknown bundle; ignore
                };
                let bundle = &bundles[pos];
                let valid = a.pu_idx < soc.pus.len()
                    && running.iter().all(|r| r.pu_idx != a.pu_idx)
                    && bundle.job.runs_on(soc.pus[a.pu_idx].kind)
                    // Guard double-assignment of one bundle in a round.
                    && bundle.members.iter().all(|id| pending.iter().any(|p| p.id == *id));
                if !valid {
                    continue;
                }
                let predicted = bundle_service_prediction(
                    &admission, &profile, &mut probe, soc, &running, bundle, a.pu_idx,
                );
                place_bundle(
                    bundle.clone(),
                    a.pu_idx,
                    now,
                    predicted,
                    &mut pending,
                    &mut running,
                );
                decisions += 1;
                placed_any = true;
            }
            // Progress guarantee: an idle machine with pending work must
            // run something.
            if running.is_empty() && !placed_any && !pending.is_empty() {
                let qi = input.service_order()[0];
                let job_id = input.queue[qi].job_id;
                let pos = bundles
                    .iter()
                    .position(|b| b.job.id == job_id)
                    .expect("input queue mirrors bundles");
                let pu_idx = input.queue[qi]
                    .options
                    .iter()
                    .min_by(|a, b| a.standalone_cycles.total_cmp(&b.standalone_cycles))
                    .expect("eligibility was validated up front")
                    .pu_idx;
                let bundle = &bundles[pos];
                let predicted = bundle_service_prediction(
                    &admission, &profile, &mut probe, soc, &running, bundle, pu_idx,
                );
                place_bundle(
                    bundle.clone(),
                    pu_idx,
                    now,
                    predicted,
                    &mut pending,
                    &mut running,
                );
                decisions += 1;
            }
        }
        if running.is_empty() {
            // Nothing executing: jump to the next arrival.
            let Some(next) = arrivals.get(arrival_cursor) else {
                break;
            };
            now = now.max(next.at as f64);
            while now >= next_epoch {
                slo.publish_epoch();
                next_epoch += epoch;
            }
            continue;
        }
        // Measure the sustained rates of the current placement.
        let placements: Vec<(usize, KernelDesc)> = running
            .iter()
            .map(|r| (r.pu_idx, r.kernel(soc).clone()))
            .collect();
        let rates = probe.corun_rates(&placements);
        // Advance to the next event: completion, arrival, or epoch.
        let mut dt = f64::INFINITY;
        for r in &running {
            let rate = rates.get(&r.pu_idx).copied().unwrap_or(0.0).max(MIN_RATE);
            dt = dt.min(r.remaining_lines / rate);
        }
        if let Some(next) = arrivals.get(arrival_cursor) {
            let until = next.at as f64 - now;
            if until > 0.0 {
                dt = dt.min(until);
            }
        }
        let until_epoch = next_epoch - now;
        if until_epoch > 0.0 {
            dt = dt.min(until_epoch);
        }
        now += dt;
        while now >= next_epoch {
            slo.publish_epoch();
            next_epoch += epoch;
        }
        let mut idx = 0;
        while idx < running.len() {
            let rate = rates
                .get(&running[idx].pu_idx)
                .copied()
                .unwrap_or(0.0)
                .max(MIN_RATE);
            running[idx].remaining_lines -= rate * dt;
            if running[idx].remaining_lines > WORK_EPSILON {
                idx += 1;
                continue;
            }
            // Phase boundary or completion.
            let r = &mut running[idx];
            if r.phase + 1 < r.bundle.job.phases.len() {
                r.phase += 1;
                r.remaining_lines = r.bundle.job.phases[r.phase].work_lines;
                idx += 1;
                continue;
            }
            let done = running.remove(idx);
            let observed = (now - done.start).max(1.0);
            let pu_name = soc.pus[done.pu_idx].name.clone();
            let class_name = classes[done.bundle.class_idx].name.clone();
            // Resolve the admission prediction into an audit pair; the
            // drift monitor is the windowed view over the same stream.
            let demand =
                profile.table[done.bundle.class_idx][done.pu_idx].map_or(0.0, |(_, bw)| bw);
            let rec = AuditRecord::new("serve", "cycles", done.predicted_service, observed)
                .with_soc(&soc.slug())
                .with_pu(&pu_name)
                .with_workload(&class_name)
                .with_region(admission.region_label(done.pu_idx, demand))
                .with_policy(policy.name())
                .with_engine(cfg.probe.engine.label());
            if let Some(factor) = drift.observe_audited(done.pu_idx, rec) {
                admission.set_correction(done.pu_idx, factor);
            }
            let batch_size = done.bundle.members.len();
            for &member in &done.bundle.members {
                let o = &mut outcomes[member];
                o.finish = now;
                o.latency = now - o.arrival as f64;
                o.missed = o.deadline.is_some_and(|d| now > d as f64);
                o.pu = pu_name.clone();
                o.batch_size = batch_size;
                slo.completed(&class_name, o.latency, o.missed);
            }
        }
    }
    // A final epoch flushes whatever the last boundary missed.
    slo.publish_epoch();
    span.counter("events", steps as f64);
    span.counter("decisions", decisions as f64);
    span.counter("recalibrations", drift.recalibrations() as f64);

    let makespan = outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
    let totals = slo.totals();
    let merged = slo.merged_latency();
    let class_names: Vec<String> = classes.iter().map(|c| c.name.clone()).collect();
    Ok(ServeReport {
        soc: soc.name.clone(),
        policy: policy.name().to_owned(),
        admission: admission.policy().describe(),
        arrivals: cfg.arrivals.describe(),
        seed: cfg.seed,
        duration: cfg.duration,
        makespan,
        offered: totals[0],
        admitted: totals[1],
        shed: totals[2],
        completed: totals[3],
        missed: totals[4],
        decisions,
        recalibrations: drift.recalibrations(),
        throughput_per_mcycle: if makespan > 0.0 {
            totals[3] as f64 * 1.0e6 / makespan
        } else {
            0.0
        },
        p50_latency: merged.try_percentile(50.0).unwrap_or(0),
        p95_latency: merged.try_percentile(95.0).unwrap_or(0),
        p99_latency: merged.try_percentile(99.0).unwrap_or(0),
        miss_rate_pct: miss_rate_pct(totals[0], totals[4], totals[2]),
        classes: slo.summaries(&class_names),
        outcomes,
    })
}

/// The admission model's contended-service prediction for `bundle` on
/// `pu_idx` under the current residents' pressure — linear in the batch
/// size because bundle traffic is member traffic summed.
fn bundle_service_prediction(
    admission: &AdmissionController,
    profile: &ClassProfile,
    probe: &mut SimProbe,
    soc: &SocConfig,
    running: &[RunningBundle],
    bundle: &Bundle,
    pu_idx: usize,
) -> f64 {
    let Some((std_one, demand)) = profile.table[bundle.class_idx][pu_idx] else {
        return 0.0;
    };
    let candidate = CandidateService {
        pu_idx,
        standalone_cycles: std_one * bundle.members.len() as f64,
        demand_gbps: demand,
    };
    let load = PuLoad {
        busy_until: 0.0,
        external_gbps: external_pressure(probe, soc, running, pu_idx),
    };
    admission.predicted_service(&candidate, &load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::contended_classes;
    use pccs_sched::policy::ObliviousGreedy;

    fn quick_cfg(rate: f64, duration: u64) -> ServeConfig {
        ServeConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_per_mcycle: rate,
            },
            duration,
            ..ServeConfig::quick()
        }
    }

    #[test]
    fn every_offered_request_is_accounted_for() {
        let soc = SocConfig::xavier();
        let classes = contended_classes();
        let mut policy = ObliviousGreedy;
        let report = run_serve(
            &soc,
            &classes,
            &mut policy,
            boxed_models(&paper_models(&soc)),
            &quick_cfg(6.0, 400_000),
        )
        .unwrap();
        assert!(report.offered > 0, "no arrivals in 400k cycles at rate 6");
        assert_eq!(report.offered, report.admitted + report.shed);
        assert_eq!(report.admitted, report.completed); // open admission drains
        assert_eq!(report.outcomes.len(), report.offered);
        for o in &report.outcomes {
            if o.admitted {
                assert!(
                    o.finish >= o.arrival as f64,
                    "request {} time-travels",
                    o.id
                );
                assert!(o.batch_size >= 1);
                assert_ne!(o.pu, "-");
            }
        }
        assert!(report.makespan > 0.0);
        assert!(report.p99_latency >= report.p50_latency);
    }

    #[test]
    fn unschedulable_class_is_a_typed_error() {
        use pccs_soc::pu::PuKind;
        let soc = SocConfig::snapdragon855();
        let mut classes = contended_classes();
        // Pin a class to the DLA, which the Snapdragon preset lacks.
        classes[1].template = classes[1].template.clone().with_eligible(vec![PuKind::Dla]);
        let mut policy = ObliviousGreedy;
        let err = run_serve(
            &soc,
            &classes,
            &mut policy,
            boxed_models(&paper_models(&soc)),
            &ServeConfig::quick(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::UnschedulableClass { .. }));
        assert!(err.to_string().contains("alexnet"));
    }

    #[test]
    fn empty_class_list_is_a_typed_error() {
        let soc = SocConfig::xavier();
        let mut policy = ObliviousGreedy;
        let err = run_serve(
            &soc,
            &[],
            &mut policy,
            boxed_models(&paper_models(&soc)),
            &ServeConfig::quick(),
        )
        .unwrap_err();
        assert_eq!(err, ServeError::EmptyClasses);
    }

    #[test]
    fn strict_admission_only_admits_requests_predicted_in_time() {
        let soc = SocConfig::xavier();
        let classes = contended_classes();
        let mut policy = ObliviousGreedy;
        let cfg = ServeConfig {
            admission: AdmissionPolicy::Strict,
            ..quick_cfg(30.0, 400_000)
        };
        let report = run_serve(
            &soc,
            &classes,
            &mut policy,
            boxed_models(&paper_models(&soc)),
            &cfg,
        )
        .unwrap();
        for o in &report.outcomes {
            if o.admitted {
                if let Some(d) = o.deadline {
                    assert!(
                        o.predicted_finish <= d as f64,
                        "request {} admitted with predicted finish {} past deadline {}",
                        o.id,
                        o.predicted_finish,
                        d
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_byte_identical_reports() {
        let soc = SocConfig::xavier();
        let classes = contended_classes();
        let cfg = quick_cfg(8.0, 300_000);
        let run = || {
            let mut policy = ObliviousGreedy;
            run_serve(
                &soc,
                &classes,
                &mut policy,
                boxed_models(&paper_models(&soc)),
                &cfg,
            )
            .unwrap()
        };
        let a = serde_json::to_string(&run()).unwrap();
        let b = serde_json::to_string(&run()).unwrap();
        assert_eq!(a, b);
    }
}
