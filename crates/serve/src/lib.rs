//! `pccs-serve` — online, event-driven inference serving on heterogeneous
//! SoCs, with PCCS-guided admission control, batching, and SLO accounting.
//!
//! Where `pccs-sched` replays a fixed job mix offline, this crate serves an
//! *open-loop* request stream: arrivals keep coming whether or not the
//! machine keeps up, so the interesting quantities are tail latency and
//! deadline-miss rate as functions of the offered rate. The pipeline:
//!
//! - [`arrivals`] expands an [`ArrivalProcess`] (Poisson, bursty MMPP, or a
//!   replayed trace file) into a deterministic event list from a seed;
//! - [`admission`] predicts each request's finish with per-PU PCCS slowdown
//!   models and sheds requests its policy expects to miss their deadline;
//! - [`batch`] coalesces admitted same-class requests into bundles;
//! - the [`engine`] places bundles with any `pccs-sched` [`Policy`] against
//!   the `pccs-soc` co-run simulator;
//! - [`slo`] keeps per-class latency histograms and publishes `serve.*`
//!   metrics at epoch boundaries;
//! - [`recalibrate`] watches observed-vs-predicted service drift and
//!   refreshes the admission model's correction factors online.
//!
//! ```
//! use pccs_serve::{boxed_models, paper_models, run_serve, ServeConfig};
//! use pccs_serve::request::contended_classes;
//! use pccs_sched::policy::ObliviousGreedy;
//! use pccs_soc::soc::SocConfig;
//!
//! let soc = SocConfig::xavier();
//! let classes = contended_classes();
//! let mut policy = ObliviousGreedy;
//! let models = boxed_models(&paper_models(&soc));
//! let report = run_serve(&soc, &classes, &mut policy, models, &ServeConfig::quick())
//!     .expect("bundled classes are servable on Xavier");
//! assert_eq!(report.offered, report.admitted + report.shed);
//! ```
//!
//! [`ArrivalProcess`]: arrivals::ArrivalProcess
//! [`Policy`]: pccs_sched::policy::Policy

/// Deadline-aware admission control on PCCS finish predictions.
pub mod admission;
/// Deterministic open-loop arrival processes (Poisson, bursty, trace).
pub mod arrivals;
/// Same-class request batching into placement bundles.
pub mod batch;
/// The discrete-event serving loop and its configuration.
pub mod engine;
/// Typed serving failures.
pub mod error;
/// Online observed-vs-predicted drift tracking and recalibration.
pub mod recalibrate;
/// Serving reports: per-request outcomes and per-class SLO summaries.
pub mod report;
/// The bundled request classes and their deadlines.
pub mod request;
/// Per-class latency accounting and `serve.*` metric publication.
pub mod slo;

pub use admission::{AdmissionController, AdmissionPolicy};
pub use arrivals::ArrivalProcess;
pub use batch::BatchConfig;
pub use engine::{boxed_models, calibrated_models, paper_models, run_serve, ServeConfig};
pub use error::ServeError;
pub use recalibrate::DriftMonitor;
pub use report::{ClassSlo, RequestOutcome, ServeReport};
pub use request::RequestClass;
pub use slo::SloAccountant;
