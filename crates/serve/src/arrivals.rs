//! Open-loop arrival processes: who shows up, and when.
//!
//! The serving loop is *open-loop* — arrivals do not wait for completions
//! — so the whole arrival stream can be generated up front from a seed.
//! That is what makes runs reproducible: the stream depends only on the
//! process, the classes, the duration, and the seed, never on scheduling
//! timing or worker count.

use crate::error::ServeError;
use crate::request::RequestClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One arrival: a request class drawn at a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival cycle.
    pub at: u64,
    /// Index into the run's class list.
    pub class_idx: usize,
}

/// An open-loop arrival process.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times at a constant
    /// rate, classes drawn by weight.
    Poisson {
        /// Mean arrivals per million cycles.
        rate_per_mcycle: f64,
    },
    /// Bursty arrivals: a two-state Markov-modulated Poisson process that
    /// alternates between a calm phase at the base rate and bursts at
    /// `burst_factor` times the base rate.
    Bursty {
        /// Mean arrivals per million cycles in the calm phase.
        rate_per_mcycle: f64,
        /// Rate multiplier during bursts (> 1).
        burst_factor: f64,
        /// Mean calm-phase sojourn in cycles.
        calm_cycles: f64,
        /// Mean burst-phase sojourn in cycles.
        burst_cycles: f64,
    },
    /// Replay of an explicit `(cycle, class name)` trace.
    Trace {
        /// The trace events, in file order.
        events: Vec<(u64, String)>,
    },
}

impl ArrivalProcess {
    /// A bursty preset: 4× bursts, calm 200k cycles, bursting 50k.
    pub fn bursty(rate_per_mcycle: f64) -> Self {
        Self::Bursty {
            rate_per_mcycle,
            burst_factor: 4.0,
            calm_cycles: 200_000.0,
            burst_cycles: 50_000.0,
        }
    }

    /// A one-line description for reports (`"poisson(8/Mcycle)"`).
    pub fn describe(&self) -> String {
        match self {
            Self::Poisson { rate_per_mcycle } => format!("poisson({rate_per_mcycle}/Mcycle)"),
            Self::Bursty {
                rate_per_mcycle,
                burst_factor,
                ..
            } => format!("bursty({rate_per_mcycle}/Mcycle x{burst_factor})"),
            Self::Trace { events } => format!("trace({} events)", events.len()),
        }
    }

    /// Generates the full arrival stream for `classes` over `duration`
    /// cycles, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for non-positive rates and
    /// [`ServeError::UnknownTraceClass`] when a trace event names a class
    /// not in `classes`.
    pub fn generate(
        &self,
        classes: &[RequestClass],
        duration: u64,
        seed: u64,
    ) -> Result<Vec<ArrivalEvent>, ServeError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Self::Poisson { rate_per_mcycle } => {
                let lambda = per_cycle_rate(*rate_per_mcycle)?;
                let mut events = Vec::new();
                let mut t = exp_sample(&mut rng, lambda);
                while (t as u64) < duration {
                    events.push(ArrivalEvent {
                        at: t as u64,
                        class_idx: draw_class(&mut rng, classes),
                    });
                    t += exp_sample(&mut rng, lambda);
                }
                Ok(events)
            }
            Self::Bursty {
                rate_per_mcycle,
                burst_factor,
                calm_cycles,
                burst_cycles,
            } => {
                let base = per_cycle_rate(*rate_per_mcycle)?;
                if *burst_factor <= 1.0 {
                    return Err(ServeError::BadConfig {
                        detail: format!("burst factor must exceed 1 (got {burst_factor})"),
                    });
                }
                if *calm_cycles <= 0.0 || *burst_cycles <= 0.0 {
                    return Err(ServeError::BadConfig {
                        detail: "burst/calm sojourns must be positive".into(),
                    });
                }
                let mut events = Vec::new();
                let mut t = 0.0_f64;
                let mut bursting = false;
                // Next phase switch; exponential sojourns keep the process
                // memoryless within each phase.
                let mut switch_at = exp_sample(&mut rng, 1.0 / calm_cycles);
                loop {
                    let rate = if bursting { base * burst_factor } else { base };
                    let next = t + exp_sample(&mut rng, rate);
                    if next < switch_at {
                        t = next;
                        if (t as u64) >= duration {
                            break;
                        }
                        events.push(ArrivalEvent {
                            at: t as u64,
                            class_idx: draw_class(&mut rng, classes),
                        });
                    } else {
                        t = switch_at;
                        if (t as u64) >= duration {
                            break;
                        }
                        bursting = !bursting;
                        let mean = if bursting {
                            *burst_cycles
                        } else {
                            *calm_cycles
                        };
                        switch_at = t + exp_sample(&mut rng, 1.0 / mean);
                    }
                }
                Ok(events)
            }
            Self::Trace { events } => {
                let mut out = Vec::with_capacity(events.len());
                for (at, name) in events {
                    let Some(class_idx) = classes.iter().position(|c| &c.name == name) else {
                        return Err(ServeError::UnknownTraceClass {
                            class: name.clone(),
                            available: classes.iter().map(|c| c.name.clone()).collect(),
                        });
                    };
                    if *at < duration {
                        out.push(ArrivalEvent { at: *at, class_idx });
                    }
                }
                out.sort_by_key(|e| e.at);
                Ok(out)
            }
        }
    }
}

/// Parses a trace file body: one `<cycle> <class>` pair per line, `#`
/// comments and blank lines ignored.
///
/// # Errors
///
/// Returns [`ServeError::BadTrace`] naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<ArrivalProcess, ServeError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(cycle), Some(class)) = (parts.next(), parts.next()) else {
            return Err(ServeError::BadTrace {
                line: i + 1,
                detail: format!("expected '<cycle> <class>', got '{line}'"),
            });
        };
        let at: u64 = cycle.parse().map_err(|_| ServeError::BadTrace {
            line: i + 1,
            detail: format!("bad cycle count '{cycle}'"),
        })?;
        events.push((at, class.to_owned()));
    }
    Ok(ArrivalProcess::Trace { events })
}

/// Converts a per-Mcycle rate to a per-cycle rate, validating positivity.
fn per_cycle_rate(rate_per_mcycle: f64) -> Result<f64, ServeError> {
    if rate_per_mcycle <= 0.0 {
        return Err(ServeError::BadConfig {
            detail: format!("arrival rate must be positive (got {rate_per_mcycle})"),
        });
    }
    Ok(rate_per_mcycle / 1.0e6)
}

/// An exponential inter-arrival sample with rate `lambda` per cycle.
fn exp_sample(rng: &mut SmallRng, lambda: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / lambda
}

/// Draws a class index by weight.
fn draw_class(rng: &mut SmallRng, classes: &[RequestClass]) -> usize {
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    let mut pick: f64 = rng.gen_range(0.0..total);
    for (i, class) in classes.iter().enumerate() {
        pick -= class.weight;
        if pick < 0.0 {
            return i;
        }
    }
    classes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::contended_classes;

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let classes = contended_classes();
        let p = ArrivalProcess::Poisson {
            rate_per_mcycle: 50.0,
        };
        let events = p.generate(&classes, 10_000_000, 7).unwrap();
        // Expect ~500 arrivals; a Poisson count is within ±20% w.h.p.
        assert!(
            (400..=600).contains(&events.len()),
            "got {} arrivals",
            events.len()
        );
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let classes = contended_classes();
        let p = ArrivalProcess::bursty(40.0);
        let a = p.generate(&classes, 2_000_000, 42).unwrap();
        let b = p.generate(&classes, 2_000_000, 42).unwrap();
        let c = p.generate(&classes, 2_000_000, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn class_weights_bias_the_draw() {
        let classes = contended_classes();
        let p = ArrivalProcess::Poisson {
            rate_per_mcycle: 100.0,
        };
        let events = p.generate(&classes, 10_000_000, 3).unwrap();
        let srad = events.iter().filter(|e| e.class_idx == 0).count();
        // srad weighs 0.2 of 1.0: expect ~20% of draws.
        let frac = srad as f64 / events.len() as f64;
        assert!((0.1..0.35).contains(&frac), "srad fraction {frac}");
    }

    #[test]
    fn trace_parses_and_validates_class_names() {
        let classes = contended_classes();
        let trace = parse_trace("# demo\n100 mnist\n50 alexnet\n\n900 srad\n").unwrap();
        let events = trace.generate(&classes, 1_000, 0).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, 50); // sorted by cycle
        let bad = parse_trace("100 resnet").unwrap();
        let err = bad.generate(&classes, 1_000, 0).unwrap_err();
        assert!(matches!(err, ServeError::UnknownTraceClass { .. }));
    }

    #[test]
    fn malformed_traces_are_rejected_with_line_numbers() {
        let err = parse_trace("100 mnist\nnonsense").unwrap_err();
        assert!(matches!(err, ServeError::BadTrace { line: 2, .. }));
        let err = parse_trace("x mnist").unwrap_err();
        assert!(matches!(err, ServeError::BadTrace { line: 1, .. }));
    }

    #[test]
    fn zero_rate_is_a_typed_error() {
        let classes = contended_classes();
        let p = ArrivalProcess::Poisson {
            rate_per_mcycle: 0.0,
        };
        assert!(matches!(
            p.generate(&classes, 1_000, 0),
            Err(ServeError::BadConfig { .. })
        ));
    }
}
