//! Serving outcome artifacts: per-request records, per-class SLO
//! summaries, and the whole-run report.
//!
//! Everything here serializes through `serde` so the CLI can stream
//! requests into the JSONL telemetry file and `repro serve` can embed the
//! report in its `--metrics-out` artifact. Field order is declaration
//! order, so two runs with the same seed serialize byte-identically.

use serde::{Deserialize, Serialize};

/// The fate of one request, from arrival to completion or shedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Unique request id (arrival order).
    pub id: usize,
    /// The request class this request was drawn from.
    pub class: String,
    /// Arrival time in memory cycles.
    pub arrival: u64,
    /// Whether admission control let the request in.
    pub admitted: bool,
    /// Admission-time predicted finish, cycles (absolute).
    pub predicted_finish: f64,
    /// Admission-time predicted deadline-miss probability in `[0, 1]`.
    pub predicted_miss: f64,
    /// Completion time in cycles; `0.0` for shed requests.
    pub finish: f64,
    /// `finish - arrival` for completed requests; `0.0` for shed ones.
    pub latency: f64,
    /// Completion deadline, if the class carries one.
    pub deadline: Option<u64>,
    /// Whether the request finished after its deadline.
    pub missed: bool,
    /// The PU that served the bundle, or `"-"` for shed requests.
    pub pu: String,
    /// How many requests shared the bundle this one rode in.
    pub batch_size: usize,
}

/// Per-class SLO accounting over a whole serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSlo {
    /// Request class name.
    pub class: String,
    /// Requests the arrival process offered.
    pub offered: usize,
    /// Requests admission control let in.
    pub admitted: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Admitted requests that completed.
    pub completed: usize,
    /// Completed requests that missed their deadline.
    pub missed: usize,
    /// Median completion latency in cycles (0 when nothing completed).
    pub p50_latency: u64,
    /// 95th-percentile completion latency in cycles.
    pub p95_latency: u64,
    /// 99th-percentile completion latency in cycles.
    pub p99_latency: u64,
    /// Mean completion latency in cycles.
    pub mean_latency: f64,
    /// Deadline misses as a percentage of *offered* requests — shedding a
    /// request counts against the SLO just like finishing it late.
    pub miss_rate_pct: f64,
}

/// The merged artifact of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// SoC preset served.
    pub soc: String,
    /// Placement policy name.
    pub policy: String,
    /// Admission policy, rendered (`"open"`, `"strict"`, `"p0.10"`).
    pub admission: String,
    /// Arrival process, rendered (`"poisson(8.0/Mcycle)"`, …).
    pub arrivals: String,
    /// Arrival-process seed.
    pub seed: u64,
    /// Requested serving duration in cycles (arrivals stop here; in-flight
    /// work drains past it).
    pub duration: u64,
    /// Cycle the last bundle finished.
    pub makespan: f64,
    /// Requests offered across classes.
    pub offered: usize,
    /// Requests admitted across classes.
    pub admitted: usize,
    /// Requests shed at admission across classes.
    pub shed: usize,
    /// Requests completed across classes.
    pub completed: usize,
    /// Completed requests that missed their deadline.
    pub missed: usize,
    /// Placement decisions the policy made (bundles placed).
    pub decisions: usize,
    /// Sliding-window model recalibrations triggered by drift.
    pub recalibrations: u64,
    /// Completed requests per million cycles of makespan.
    pub throughput_per_mcycle: f64,
    /// Overall median latency in cycles.
    pub p50_latency: u64,
    /// Overall 95th-percentile latency in cycles.
    pub p95_latency: u64,
    /// Overall 99th-percentile latency in cycles.
    pub p99_latency: u64,
    /// Deadline misses plus sheds as a percentage of offered requests.
    pub miss_rate_pct: f64,
    /// Per-class SLO summaries, in class declaration order.
    pub classes: Vec<ClassSlo>,
    /// Per-request outcomes, in request-id order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// Requests per million cycles the run sustained, counting only
    /// completed requests.
    pub fn goodput_per_mcycle(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completed as f64 * 1.0e6 / self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_handles_empty_runs() {
        let report = ServeReport {
            soc: "Xavier".into(),
            policy: "greedy".into(),
            admission: "open".into(),
            arrivals: "poisson(1/Mcycle)".into(),
            seed: 1,
            duration: 0,
            makespan: 0.0,
            offered: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            missed: 0,
            decisions: 0,
            recalibrations: 0,
            throughput_per_mcycle: 0.0,
            p50_latency: 0,
            p95_latency: 0,
            p99_latency: 0,
            miss_rate_pct: 0.0,
            classes: vec![],
            outcomes: vec![],
        };
        assert_eq!(report.goodput_per_mcycle(), 0.0);
    }
}
