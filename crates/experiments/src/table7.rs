//! Table 7: constructed PCCS model parameters for every PU of both SoCs.
//!
//! Absolute values differ from the paper's (our substrate is a simulator
//! with its own effective bandwidths), but the qualitative relations the
//! paper highlights should hold: different PUs on the same SoC get
//! different parameters; GPUs tolerate more demand before contention but
//! react more steeply; the DLA has no minor contention region
//! (`Normal BW = 0`, `MRMC = NA`).

use crate::context::Context;
use crate::error::Result;
use crate::table::TextTable;
use pccs_core::PccsModel;
use serde::{Deserialize, Serialize};

/// One PU's constructed parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PuParameters {
    /// SoC name.
    pub soc: String,
    /// PU name.
    pub pu: String,
    /// The constructed model.
    pub model: PccsModel,
}

/// The Table 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7 {
    /// Parameters for Xavier CPU/GPU/DLA and Snapdragon CPU/GPU.
    pub rows: Vec<PuParameters>,
}

/// Constructs all five models (cached in the context).
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Table7> {
    let mut rows = Vec::new();
    let xavier = ctx.xavier.clone();
    for pu_name in ["CPU", "GPU", "DLA"] {
        let pu = Context::require_pu(&xavier, pu_name)?;
        rows.push(PuParameters {
            soc: "Xavier".to_owned(),
            pu: pu_name.to_owned(),
            model: ctx.pccs_model(&xavier, pu),
        });
    }
    let snapdragon = ctx.snapdragon.clone();
    for pu_name in ["CPU", "GPU"] {
        let pu = Context::require_pu(&snapdragon, pu_name)?;
        rows.push(PuParameters {
            soc: "Snapdragon".to_owned(),
            pu: pu_name.to_owned(),
            model: ctx.pccs_model(&snapdragon, pu),
        });
    }
    Ok(Table7 { rows })
}

impl Table7 {
    /// Renders the parameter table (paper layout: parameters × PUs).
    pub fn format(&self) -> String {
        let mut header = vec!["Parameter".to_owned()];
        for r in &self.rows {
            header.push(format!("{} {}", r.soc, r.pu));
        }
        let mut t = TextTable::new(header);
        let param = |name: &str, f: &dyn Fn(&PccsModel) -> String| -> Vec<String> {
            let mut row = vec![name.to_owned()];
            row.extend(self.rows.iter().map(|r| f(&r.model)));
            row
        };
        t.row(param("Normal BW (GB/s)", &|m| {
            format!("{:.1}", m.normal_bw)
        }));
        t.row(param("Intensive BW (GB/s)", &|m| {
            format!("{:.1}", m.intensive_bw)
        }));
        t.row(param("MRMC (%)", &|m| {
            m.mrmc.map_or("NA".to_owned(), |v| format!("{v:.1}"))
        }));
        t.row(param("CBP (GB/s)", &|m| format!("{:.1}", m.cbp)));
        t.row(param("TBWDC (GB/s)", &|m| format!("{:.1}", m.tbwdc)));
        t.row(param("Rate^N (%/GBps)", &|m| format!("{:.2}", m.rate_n)));
        t.row(param("Rate^I (%/GBps)", &|m| {
            format!("{:.2}", m.rate_i_representative())
        }));
        format!("Table 7 — constructed PCCS model parameters\n{t}")
    }

    /// The model of one SoC/PU pair.
    pub fn model(&self, soc: &str, pu: &str) -> &PccsModel {
        &self
            .rows
            .iter()
            .find(|r| r.soc == soc && r.pu == pu)
            .unwrap_or_else(|| panic!("no parameters for {soc} {pu}"))
            .model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn table7_constructs_five_models() {
        let mut ctx = Context::new(Quality::Quick);
        let t = run(&mut ctx).expect("experiment runs");
        assert_eq!(t.rows.len(), 5);
        // PU-specific parameters must differ within one SoC (the
        // processor-centric claim).
        let cpu = t.model("Xavier", "CPU");
        let gpu = t.model("Xavier", "GPU");
        assert!(
            (cpu.tbwdc - gpu.tbwdc).abs() > 1e-6 || (cpu.rate_n - gpu.rate_n).abs() > 1e-6,
            "CPU and GPU models should differ"
        );
        assert!(t.format().contains("Rate^I"));
    }
}
