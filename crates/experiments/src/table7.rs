//! Table 7: constructed PCCS model parameters for every PU of both SoCs.
//!
//! Absolute values differ from the paper's (our substrate is a simulator
//! with its own effective bandwidths), but the qualitative relations the
//! paper highlights should hold: different PUs on the same SoC get
//! different parameters; GPUs tolerate more demand before contention but
//! react more steeply; the DLA has no minor contention region
//! (`Normal BW = 0`, `MRMC = NA`).

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::PccsModel;
use serde::{Deserialize, Serialize};

/// One PU's constructed parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PuParameters {
    /// SoC name.
    pub soc: String,
    /// PU name.
    pub pu: String,
    /// The constructed model.
    pub model: PccsModel,
}

/// The Table 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7 {
    /// Parameters for Xavier CPU/GPU/DLA and Snapdragon CPU/GPU.
    pub rows: Vec<PuParameters>,
}

/// [`Experiment`] marker for Table 7; one cell per (SoC, PU) model build —
/// each cell is a full calibration sweep, so they parallelize well.
#[derive(Debug, Clone, Copy)]
pub struct Table7Experiment;

impl Experiment for Table7Experiment {
    type Prep = ();
    type Cell = (&'static str, &'static str);
    type CellOut = PuParameters;
    type Output = Table7;

    fn name(&self) -> &'static str {
        "table7"
    }

    fn prepare(&self, ctx: &Context) -> Result<((), Vec<(&'static str, &'static str)>)> {
        // Validate the PU names up front so a bad preset fails in prepare,
        // not mid-sweep.
        for (soc_name, pu_name) in Self::CELLS {
            let soc = if soc_name == "Xavier" {
                &ctx.xavier
            } else {
                &ctx.snapdragon
            };
            Context::require_pu(soc, pu_name)?;
        }
        Ok(((), Self::CELLS.to_vec()))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        _prep: &(),
        &(soc_name, pu_name): &(&'static str, &'static str),
    ) -> Result<PuParameters> {
        let soc = if soc_name == "Xavier" {
            ctx.xavier.clone()
        } else {
            ctx.snapdragon.clone()
        };
        let pu = Context::require_pu(&soc, pu_name)?;
        Ok(PuParameters {
            soc: soc_name.to_owned(),
            pu: pu_name.to_owned(),
            model: ctx.pccs_model(&soc, pu),
        })
    }

    fn merge(&self, _ctx: &Context, _prep: (), cells: Vec<PuParameters>) -> Result<Table7> {
        Ok(Table7 { rows: cells })
    }
}

impl Table7Experiment {
    /// Paper order: Xavier CPU/GPU/DLA, then Snapdragon CPU/GPU.
    const CELLS: [(&'static str, &'static str); 5] = [
        ("Xavier", "CPU"),
        ("Xavier", "GPU"),
        ("Xavier", "DLA"),
        ("Snapdragon", "CPU"),
        ("Snapdragon", "GPU"),
    ];
}

/// Constructs all five models (cached in the context).
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Table7> {
    run_experiment(&Table7Experiment, ctx)
}

impl Table7 {
    /// Renders the parameter table (paper layout: parameters × PUs).
    pub fn format(&self) -> String {
        let mut header = vec!["Parameter".to_owned()];
        for r in &self.rows {
            header.push(format!("{} {}", r.soc, r.pu));
        }
        let mut t = TextTable::new(header);
        let param = |name: &str, f: &dyn Fn(&PccsModel) -> String| -> Vec<String> {
            let mut row = vec![name.to_owned()];
            row.extend(self.rows.iter().map(|r| f(&r.model)));
            row
        };
        t.row(param("Normal BW (GB/s)", &|m| {
            format!("{:.1}", m.normal_bw)
        }));
        t.row(param("Intensive BW (GB/s)", &|m| {
            format!("{:.1}", m.intensive_bw)
        }));
        t.row(param("MRMC (%)", &|m| {
            m.mrmc.map_or("NA".to_owned(), |v| format!("{v:.1}"))
        }));
        t.row(param("CBP (GB/s)", &|m| format!("{:.1}", m.cbp)));
        t.row(param("TBWDC (GB/s)", &|m| format!("{:.1}", m.tbwdc)));
        t.row(param("Rate^N (%/GBps)", &|m| format!("{:.2}", m.rate_n)));
        t.row(param("Rate^I (%/GBps)", &|m| {
            format!("{:.2}", m.rate_i_representative())
        }));
        format!("Table 7 — constructed PCCS model parameters\n{t}")
    }

    /// The model of one SoC/PU pair.
    pub fn model(&self, soc: &str, pu: &str) -> &PccsModel {
        &self
            .rows
            .iter()
            .find(|r| r.soc == soc && r.pu == pu)
            .unwrap_or_else(|| panic!("no parameters for {soc} {pu}"))
            .model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn table7_constructs_five_models() {
        let mut ctx = Context::new(Quality::Quick);
        let t = run(&mut ctx).expect("experiment runs");
        assert_eq!(t.rows.len(), 5);
        // PU-specific parameters must differ within one SoC (the
        // processor-centric claim).
        let cpu = t.model("Xavier", "CPU");
        let gpu = t.model("Xavier", "GPU");
        assert!(
            (cpu.tbwdc - gpu.tbwdc).abs() > 1e-6 || (cpu.rate_n - gpu.rate_n).abs() > 1e-6,
            "CPU and GPU models should differ"
        );
        assert!(t.format().contains("Rate^I"));
    }
}
