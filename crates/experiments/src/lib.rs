//! Regeneration of every table and figure in the PCCS paper's evaluation.
//!
//! Each `figN`/`tableN` module reproduces one artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — % of requested bandwidth met under external pressure |
//! | [`fig3`] | Fig. 3 — synthetic kernels under pressure, three demand classes |
//! | [`fig5`] | Fig. 5 + Tables 1–3 — five MC scheduling policies on the CMP config |
//! | [`fig6`] | Fig. 6 — the three-region model chart |
//! | [`table5`] | Table 5 — linear parameter scaling across memory clocks |
//! | [`table7`] | Table 7 — constructed model parameters for all five PUs |
//! | [`validate`] | Figs. 8–12 — per-benchmark prediction vs actual, PCCS vs Gables |
//! | [`fig13`] | Fig. 13 — CFD with average vs piecewise bandwidth |
//! | [`fig14`] | Fig. 14 + Table 8 — eleven 3-PU co-run workloads |
//! | [`table9`] | Table 9 + Fig. 15 — GPU frequency selection use case |
//! | [`table10`] | Table 10 — related-work model comparison (accuracy × cost) |
//! | [`oblivious`] | §3.2 — source-obliviousness validation |
//! | [`sched_study`] | scheduling runtime — placement policies on job mixes (`pccs-sched`) |
//!
//! Every module implements the [`runner::Experiment`] trait — enumerate
//! independent sweep cells, run each, merge — and [`runner::SweepRunner`]
//! fans the cells over worker threads with byte-identical output for any
//! thread count. Standalone profiles are memoized across experiments in
//! [`cache::ProfileCache`], shared through the [`context::Context`].
//!
//! All experiments run against the simulated SoCs of `pccs-soc` (see
//! DESIGN.md for the hardware-substitution rationale). The `repro` binary
//! drives them: `repro --quick fig3 table7`, `repro validate --jobs 4`,
//! or `repro all`.

/// Cross-experiment memoization of standalone profiles.
pub mod cache;
/// Shared experiment context: SoC presets, measurement quality, and caches.
pub mod context;
/// Typed failures of the experiment harness.
pub mod error;
/// Figure 13: predicting the multi-phase CFD program with (a) its average.
pub mod fig13;
/// Figure 14 (with Table 8): the eleven real 3-PU co-run workloads —.
pub mod fig14;
/// Figure 2: the percentage of requested memory bandwidth that is met on a.
pub mod fig2;
/// Figure 3: achieved relative speed of synthetic kernels under external.
pub mod fig3;
/// Figure 5 and Table 3: the memory-controller policy study on the 16-core.
pub mod fig5;
/// Figure 6: the three-region interference-classification chart, rendered.
pub mod fig6;
/// Validation of the source-obliviousness insight (Section 3.2).
pub mod oblivious;
/// The unified experiment API and its parallel sweep engine.
pub mod runner;
/// The scheduling study: every bundled placement policy replayed on every.
pub mod sched_study;
/// The serving study: latency-throughput curves of the online serving loop.
pub mod serve_study;
/// Minimal text-table rendering for experiment reports.
pub mod table;
/// Table 10: the related-work comparison, made quantitative.
pub mod table10;
/// Table 5: linear bandwidth scaling of the PCCS parameters (Section 3.3).
pub mod table5;
/// Table 7: constructed PCCS model parameters for every PU of both SoCs.
pub mod table7;
/// Table 9 and Figure 15: the SoC-design use case — selecting the lowest.
pub mod table9;
/// Figures 8–12: empirical validation of the slowdown model on benchmark.
pub mod validate;

pub use cache::{CacheStats, ProfileCache};
pub use context::{Context, Quality};
pub use error::ExperimentError;
pub use runner::{Experiment, SweepRunner};
pub use table::TextTable;
