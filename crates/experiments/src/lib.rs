//! Regeneration of every table and figure in the PCCS paper's evaluation.
//!
//! Each `figN`/`tableN` module reproduces one artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — % of requested bandwidth met under external pressure |
//! | [`fig3`] | Fig. 3 — synthetic kernels under pressure, three demand classes |
//! | [`fig5`] | Fig. 5 + Tables 1–3 — five MC scheduling policies on the CMP config |
//! | [`fig6`] | Fig. 6 — the three-region model chart |
//! | [`table5`] | Table 5 — linear parameter scaling across memory clocks |
//! | [`table7`] | Table 7 — constructed model parameters for all five PUs |
//! | [`validate`] | Figs. 8–12 — per-benchmark prediction vs actual, PCCS vs Gables |
//! | [`fig13`] | Fig. 13 — CFD with average vs piecewise bandwidth |
//! | [`fig14`] | Fig. 14 + Table 8 — eleven 3-PU co-run workloads |
//! | [`table9`] | Table 9 + Fig. 15 — GPU frequency selection use case |
//! | [`table10`] | Table 10 — related-work model comparison (accuracy × cost) |
//! | [`oblivious`] | §3.2 — source-obliviousness validation |
//! | [`sched_study`] | scheduling runtime — placement policies on job mixes (`pccs-sched`) |
//!
//! Every module implements the [`runner::Experiment`] trait — enumerate
//! independent sweep cells, run each, merge — and [`runner::SweepRunner`]
//! fans the cells over worker threads with byte-identical output for any
//! thread count. Standalone profiles are memoized across experiments in
//! [`cache::ProfileCache`], shared through the [`context::Context`].
//!
//! All experiments run against the simulated SoCs of `pccs-soc` (see
//! DESIGN.md for the hardware-substitution rationale). The `repro` binary
//! drives them: `repro --quick fig3 table7`, `repro validate --jobs 4`,
//! or `repro all`.

pub mod cache;
pub mod context;
pub mod error;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod oblivious;
pub mod runner;
pub mod sched_study;
pub mod table;
pub mod table10;
pub mod table5;
pub mod table7;
pub mod table9;
pub mod validate;

pub use cache::{CacheStats, ProfileCache};
pub use context::{Context, Quality};
pub use error::ExperimentError;
pub use runner::{Experiment, SweepRunner};
pub use table::TextTable;
