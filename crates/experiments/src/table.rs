//! Minimal text-table rendering for experiment reports.

use std::fmt;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use pccs_experiments::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "RS %".into()]);
/// t.row(vec!["bfs".into(), format!("{:.1}", 62.5)]);
/// let s = t.to_string();
/// assert!(s.contains("bfs"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }
}
