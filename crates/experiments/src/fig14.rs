//! Figure 14 (with Table 8): the eleven real 3-PU co-run workloads —
//! measured achieved relative speed per PU vs the PCCS and Gables
//! predictions. The paper's headline accuracy numbers come from this
//! experiment: PCCS 3.7 % / 8.7 % / 5.6 % average error on CPU / GPU / DLA
//! against Gables' 13.4 % / 30.3 % / 20.6 %.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::{PccsModel, SlowdownModel};
use pccs_gables::GablesModel;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::mixes::{WorkloadMix, TABLE8_MIXES};
use serde::{Deserialize, Serialize};

/// One PU's record within one workload mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixPuResult {
    /// PU name.
    pub pu: String,
    /// The benchmark or network on it.
    pub workload: String,
    /// Standalone demand (GB/s).
    pub demand_gbps: f64,
    /// External demand seen by this PU (sum of co-runners' demands).
    pub external_gbps: f64,
    /// Measured relative speed (%).
    pub actual: f64,
    /// PCCS prediction (%).
    pub pccs: f64,
    /// Gables prediction (%).
    pub gables: f64,
}

/// One workload mix's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixResult {
    /// Workload letter (A–K).
    pub id: char,
    /// Per-PU records (CPU, GPU, DLA).
    pub per_pu: Vec<MixPuResult>,
}

/// The Figure 14 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// All workload mixes.
    pub mixes: Vec<MixResult>,
}

/// Shared sweep state: the Xavier PUs and their constructed models.
#[derive(Debug)]
pub struct Fig14Prep {
    soc: SocConfig,
    cpu: usize,
    gpu: usize,
    dla: usize,
    models: [(usize, PccsModel); 3],
    gables: GablesModel,
}

/// [`Experiment`] marker for Figure 14 + Table 8; one cell per workload
/// mix (each cell profiles three standalones and one 3-PU co-run).
#[derive(Debug, Clone, Copy)]
pub struct Fig14Experiment;

impl Experiment for Fig14Experiment {
    type Prep = Fig14Prep;
    type Cell = WorkloadMix;
    type CellOut = MixResult;
    type Output = Fig14;

    fn name(&self) -> &'static str {
        "fig14"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Fig14Prep, Vec<WorkloadMix>)> {
        let soc = ctx.xavier.clone();
        let cpu = Context::require_pu(&soc, "CPU")?;
        let gpu = Context::require_pu(&soc, "GPU")?;
        let dla = Context::require_pu(&soc, "DLA")?;
        let models = [
            (cpu, ctx.pccs_model(&soc, cpu)),
            (gpu, ctx.pccs_model(&soc, gpu)),
            (dla, ctx.pccs_model(&soc, dla)),
        ];
        let gables = ctx.gables(&soc);
        let selected: Vec<WorkloadMix> = match ctx.quality {
            crate::context::Quality::Quick => TABLE8_MIXES[..3].to_vec(),
            crate::context::Quality::Full => TABLE8_MIXES.to_vec(),
        };
        Ok((
            Fig14Prep {
                soc,
                cpu,
                gpu,
                dla,
                models,
                gables,
            },
            selected,
        ))
    }

    fn run_cell(&self, ctx: &Context, prep: &Fig14Prep, mix: &WorkloadMix) -> Result<MixResult> {
        let kernels = [
            (
                prep.cpu,
                "CPU",
                mix.cpu.label().to_owned(),
                mix.cpu.kernel(PuKind::Cpu),
            ),
            (
                prep.gpu,
                "GPU",
                mix.gpu.label().to_owned(),
                mix.gpu.kernel(PuKind::Gpu),
            ),
            (
                prep.dla,
                "DLA",
                mix.dla.label().to_owned(),
                mix.dla.kernel(),
            ),
        ];
        let standalones: Vec<_> = kernels
            .iter()
            .map(|(pu, _, _, k)| ctx.standalone(&prep.soc, *pu, k))
            .collect();

        // The actual 3-PU co-run.
        let mut sim = CoRunSim::new(&prep.soc);
        sim.horizon(ctx.horizon());
        sim.repeats(ctx.repeats());
        for (pu, _, _, k) in &kernels {
            sim.place(Placement::kernel(*pu, k.clone()));
        }
        let out = sim.execute();

        let mut per_pu = Vec::new();
        for (i, (pu, pu_name, workload, _)) in kernels.iter().enumerate() {
            let x = standalones[i].bw_gbps;
            let external: f64 = standalones
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, s)| s.bw_gbps)
                .sum();
            let actual = out
                .relative_speed_pct(*pu, &standalones[i])
                .expect("mix PU is placed")
                .min(102.0);
            let pccs_model = &prep.models.iter().find(|(p, _)| p == pu).expect("model").1;
            per_pu.push(MixPuResult {
                pu: (*pu_name).to_owned(),
                workload: workload.clone(),
                demand_gbps: x,
                external_gbps: external,
                actual,
                pccs: pccs_model.relative_speed_pct(x, external),
                gables: prep.gables.relative_speed_pct(x, external),
            });
        }
        Ok(MixResult { id: mix.id, per_pu })
    }

    fn merge(&self, _ctx: &Context, _prep: Fig14Prep, cells: Vec<MixResult>) -> Result<Fig14> {
        Ok(Fig14 { mixes: cells })
    }
}

/// Runs the co-run study on Xavier.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig14> {
    run_experiment(&Fig14Experiment, ctx)
}

impl Fig14 {
    /// Average absolute error of one model on one PU across mixes.
    pub fn avg_error(&self, pu: &str, model: ModelChoice) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for m in &self.mixes {
            for r in &m.per_pu {
                if r.pu == pu {
                    let pred = match model {
                        ModelChoice::Pccs => r.pccs,
                        ModelChoice::Gables => r.gables,
                    };
                    total += (r.actual - pred).abs();
                    n += 1;
                }
            }
        }
        total / n.max(1) as f64
    }

    /// Renders the full per-mix table plus the headline error summary.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "mix".into(),
            "PU".into(),
            "workload".into(),
            "x GB/s".into(),
            "y GB/s".into(),
            "actual %".into(),
            "PCCS %".into(),
            "Gables %".into(),
        ]);
        for m in &self.mixes {
            for r in &m.per_pu {
                t.row(vec![
                    m.id.to_string(),
                    r.pu.clone(),
                    r.workload.clone(),
                    format!("{:.1}", r.demand_gbps),
                    format!("{:.1}", r.external_gbps),
                    format!("{:.1}", r.actual),
                    format!("{:.1}", r.pccs),
                    format!("{:.1}", r.gables),
                ]);
            }
        }
        let mut s = format!("Figure 14 / Table 8 — three-PU co-run workloads on Xavier\n{t}\n");
        for pu in ["CPU", "GPU", "DLA"] {
            s.push_str(&format!(
                "{pu}: avg error PCCS {:.1}%  Gables {:.1}%\n",
                self.avg_error(pu, ModelChoice::Pccs),
                self.avg_error(pu, ModelChoice::Gables)
            ));
        }
        s
    }
}

/// Selects which model's prediction to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// The PCCS three-region model.
    Pccs,
    /// The Gables baseline.
    Gables,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig14_quick_covers_three_pus_per_mix() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.mixes.len(), 3);
        for m in &fig.mixes {
            assert_eq!(m.per_pu.len(), 3);
            for r in &m.per_pu {
                assert!(r.demand_gbps > 0.0);
                assert!((0.0..=102.0).contains(&r.actual));
            }
        }
        assert!(fig.format().contains("Figure 14"));
    }
}
