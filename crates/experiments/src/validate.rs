//! Figures 8–12: empirical validation of the slowdown model on benchmark
//! proxies — actual (simulated) relative speed vs PCCS and Gables
//! predictions, per benchmark, under swept external pressure.
//!
//! * Fig. 8 — 10 Rodinia proxies on the Xavier GPU
//! * Fig. 9 — 5 Rodinia proxies on the Xavier CPU
//! * Fig. 10 — 10 Rodinia proxies on the Snapdragon 855 GPU
//! * Fig. 11 — 5 Rodinia proxies on the Snapdragon 855 CPU
//! * Fig. 12 — DNN inference on the Xavier DLA

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::SlowdownModel;
use pccs_gables::GablesModel;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_telemetry::audit::{self, AuditRecord};
use pccs_workloads::dnn::DnnModel;
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// Which validation figure to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 8: Xavier GPU, full Rodinia suite.
    XavierGpu,
    /// Fig. 9: Xavier CPU, 5-benchmark suite.
    XavierCpu,
    /// Fig. 10: Snapdragon GPU, full Rodinia suite.
    SnapdragonGpu,
    /// Fig. 11: Snapdragon CPU, 5-benchmark suite.
    SnapdragonCpu,
    /// Fig. 12: Xavier DLA, DNN inference.
    XavierDla,
}

impl Figure {
    /// All five validation figures.
    pub fn all() -> [Figure; 5] {
        [
            Figure::XavierGpu,
            Figure::XavierCpu,
            Figure::SnapdragonGpu,
            Figure::SnapdragonCpu,
            Figure::XavierDla,
        ]
    }

    /// Paper figure number.
    pub fn number(&self) -> u32 {
        match self {
            Figure::XavierGpu => 8,
            Figure::XavierCpu => 9,
            Figure::SnapdragonGpu => 10,
            Figure::SnapdragonCpu => 11,
            Figure::XavierDla => 12,
        }
    }

    /// Human-readable target label.
    pub fn label(&self) -> &'static str {
        match self {
            Figure::XavierGpu => "Xavier GPU",
            Figure::XavierCpu => "Xavier CPU",
            Figure::SnapdragonGpu => "Snapdragon 855 GPU",
            Figure::SnapdragonCpu => "Snapdragon 855 CPU",
            Figure::XavierDla => "Xavier DLA",
        }
    }

    fn soc(&self, ctx: &Context) -> SocConfig {
        match self {
            Figure::XavierGpu | Figure::XavierCpu | Figure::XavierDla => ctx.xavier.clone(),
            Figure::SnapdragonGpu | Figure::SnapdragonCpu => ctx.snapdragon.clone(),
        }
    }

    fn pu_name(&self) -> &'static str {
        match self {
            Figure::XavierGpu | Figure::SnapdragonGpu => "GPU",
            Figure::XavierCpu | Figure::SnapdragonCpu => "CPU",
            Figure::XavierDla => "DLA",
        }
    }

    fn workloads(&self, quality: crate::context::Quality) -> Vec<(String, KernelDesc)> {
        use crate::context::Quality;
        let pu_kind = match self.pu_name() {
            "GPU" => pccs_soc::pu::PuKind::Gpu,
            "CPU" => pccs_soc::pu::PuKind::Cpu,
            _ => pccs_soc::pu::PuKind::Dla,
        };
        match self {
            Figure::XavierDla => DnnModel::imagenet()
                .into_iter()
                .map(|m| (m.label().to_owned(), m.kernel()))
                .collect(),
            Figure::XavierCpu | Figure::SnapdragonCpu => RodiniaBenchmark::cpu_suite()
                .into_iter()
                .map(|b| (b.label().to_owned(), b.kernel(pu_kind)))
                .collect(),
            _ => {
                let all = RodiniaBenchmark::all();
                let take: Vec<RodiniaBenchmark> = match quality {
                    Quality::Quick => all[..4].to_vec(),
                    Quality::Full => all.to_vec(),
                };
                take.into_iter()
                    .map(|b| (b.label().to_owned(), b.kernel(pu_kind)))
                    .collect()
            }
        }
    }
}

/// One benchmark's validation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchValidation {
    /// Benchmark label.
    pub name: String,
    /// Standalone bandwidth demand (GB/s).
    pub demand_gbps: f64,
    /// `(external GB/s, actual RS %, PCCS RS %, Gables RS %)` points.
    pub points: Vec<(f64, f64, f64, f64)>,
}

impl BenchValidation {
    /// Mean absolute PCCS error over the sweep (percentage points).
    pub fn pccs_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, p, _)| (a - p).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Mean absolute Gables error over the sweep.
    pub fn gables_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, _, g)| (a - g).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }
}

/// A regenerated validation figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validation {
    /// Which figure.
    pub figure: Figure,
    /// Per-benchmark records.
    pub benches: Vec<BenchValidation>,
}

/// Shared sweep state: the figure's SoC/PU, its models, and the grid.
#[derive(Debug)]
pub struct ValidatePrep {
    soc: SocConfig,
    pu: usize,
    pccs: pccs_core::PccsModel,
    gables: GablesModel,
    grid: Vec<f64>,
}

/// [`Experiment`] marker for one validation figure (Figs. 8–12); one cell
/// per benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ValidateExperiment(pub Figure);

impl Experiment for ValidateExperiment {
    type Prep = ValidatePrep;
    type Cell = (String, KernelDesc);
    type CellOut = BenchValidation;
    type Output = Validation;

    fn name(&self) -> &'static str {
        match self.0 {
            Figure::XavierGpu => "fig8",
            Figure::XavierCpu => "fig9",
            Figure::SnapdragonGpu => "fig10",
            Figure::SnapdragonCpu => "fig11",
            Figure::XavierDla => "fig12",
        }
    }

    fn prepare(&self, ctx: &Context) -> Result<(ValidatePrep, Vec<(String, KernelDesc)>)> {
        let soc = self.0.soc(ctx);
        let pu = Context::require_pu(&soc, self.0.pu_name())?;
        let pccs = ctx.pccs_model(&soc, pu);
        let gables = ctx.gables(&soc);
        let grid = ctx.external_grid(&soc);
        let cells = self.0.workloads(ctx.quality);
        Ok((
            ValidatePrep {
                soc,
                pu,
                pccs,
                gables,
                grid,
            },
            cells,
        ))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        prep: &ValidatePrep,
        (name, kernel): &(String, KernelDesc),
    ) -> Result<BenchValidation> {
        let standalone = ctx.standalone(&prep.soc, prep.pu, kernel);
        let x = standalone.bw_gbps;
        let cfg = ctx.corun_config();
        let points = prep
            .grid
            .iter()
            .map(|&y| {
                let actual = ctx.actual_rs_pct(&prep.soc, prep.pu, kernel, &standalone, y);
                let p = prep.pccs.relative_speed_pct(x, y);
                let g = prep.gables.relative_speed_pct(x, y);
                if audit::is_enabled() {
                    audit::record(
                        AuditRecord::new("validate", "rs_pct", p, actual)
                            .with_soc(&prep.soc.slug())
                            .with_pu(&prep.soc.pus[prep.pu].name)
                            .with_workload(name)
                            .with_region(prep.pccs.region_label(x))
                            .with_policy(cfg.policy.label())
                            .with_engine(cfg.engine.label()),
                    );
                }
                (y, actual, p, g)
            })
            .collect();
        Ok(BenchValidation {
            name: name.clone(),
            demand_gbps: x,
            points,
        })
    }

    fn merge(
        &self,
        _ctx: &Context,
        _prep: ValidatePrep,
        cells: Vec<BenchValidation>,
    ) -> Result<Validation> {
        Ok(Validation {
            figure: self.0,
            benches: cells,
        })
    }
}

/// Runs one validation figure.
///
/// # Errors
///
/// Fails if the figure's PU is missing from the SoC preset.
pub fn run(ctx: &mut Context, figure: Figure) -> Result<Validation> {
    run_experiment(&ValidateExperiment(figure), ctx)
}

impl Validation {
    /// Average PCCS error across benchmarks (the per-figure headline).
    pub fn avg_pccs_error(&self) -> f64 {
        self.benches
            .iter()
            .map(BenchValidation::pccs_error)
            .sum::<f64>()
            / self.benches.len() as f64
    }

    /// Average Gables error across benchmarks.
    pub fn avg_gables_error(&self) -> f64 {
        self.benches
            .iter()
            .map(BenchValidation::gables_error)
            .sum::<f64>()
            / self.benches.len() as f64
    }

    /// Renders the per-benchmark table.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "demand GB/s".into(),
            "PCCS err %".into(),
            "Gables err %".into(),
        ]);
        for b in &self.benches {
            t.row(vec![
                b.name.clone(),
                format!("{:.1}", b.demand_gbps),
                format!("{:.1}", b.pccs_error()),
                format!("{:.1}", b.gables_error()),
            ]);
        }
        format!(
            "Figure {} — {}: prediction errors per benchmark\n{t}\navg PCCS {:.1}%  avg Gables {:.1}%\n",
            self.figure.number(),
            self.figure.label(),
            self.avg_pccs_error(),
            self.avg_gables_error()
        )
    }

    /// Full curve dump (external vs actual/PCCS/Gables per benchmark).
    pub fn format_curves(&self) -> String {
        let mut out = String::new();
        for b in &self.benches {
            out.push_str(&format!("\n{} (x = {:.1} GB/s)\n", b.name, b.demand_gbps));
            let mut t = TextTable::new(vec![
                "external".into(),
                "actual".into(),
                "PCCS".into(),
                "Gables".into(),
            ]);
            for &(y, a, p, g) in &b.points {
                t.row(vec![
                    format!("{y:.0}"),
                    format!("{a:.1}"),
                    format!("{p:.1}"),
                    format!("{g:.1}"),
                ]);
            }
            out.push_str(&t.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn figure_metadata() {
        assert_eq!(Figure::all().len(), 5);
        assert_eq!(Figure::XavierGpu.number(), 8);
        assert_eq!(Figure::XavierDla.pu_name(), "DLA");
    }

    #[test]
    fn dla_validation_runs_quick() {
        let mut ctx = Context::new(Quality::Quick);
        let v = run(&mut ctx, Figure::XavierDla).expect("experiment runs");
        assert_eq!(v.benches.len(), 3);
        for b in &v.benches {
            assert!(b.demand_gbps > 0.0);
            assert!(!b.points.is_empty());
        }
        assert!(v.format().contains("Figure 12"));
    }

    #[test]
    fn audited_sweep_matches_the_reported_error() {
        let mut ctx = Context::new(Quality::Quick);
        audit::set_enabled(true);
        let v = run(&mut ctx, Figure::XavierDla).expect("experiment runs");
        audit::set_enabled(false);
        let recs: Vec<_> = audit::snapshot()
            .into_iter()
            .filter(|r| r.source == "validate" && r.soc == "xavier" && r.pu == "DLA")
            .collect();
        let expected: usize = v.benches.iter().map(|b| b.points.len()).sum();
        assert_eq!(recs.len(), expected, "one record per sweep point");
        // Every bench sweeps the same grid, so the ledger-wide MAE equals
        // the figure's headline (a mean of equal-weight per-bench means).
        let mae = audit::mean_abs_error(recs.iter());
        assert!(
            (mae - v.avg_pccs_error()).abs() < 1e-9,
            "ledger MAE {mae} vs avg_pccs_error {}",
            v.avg_pccs_error()
        );
        for r in &recs {
            assert_ne!(r.region, "-", "PCCS models attribute a region");
            assert_eq!(r.engine, "event", "sweeps default to the event engine");
        }
    }
}
