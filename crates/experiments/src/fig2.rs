//! Figure 2: the percentage of requested memory bandwidth that is met on a
//! processor under various degrees of external memory pressure.
//!
//! The paper's setup: kernels requesting 30 GB/s on the DLA, 93 GB/s on the
//! CPU and 127 GB/s on the GPU of Xavier, with external pressure swept from
//! 0 to the DRAM peak. The headline observation — contention effects are
//! visible *before* requested + external bandwidth reaches the DRAM peak —
//! is the empirical motivation for PCCS.

use crate::context::Context;
use crate::error::Result;
use crate::table::TextTable;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_workloads::calibrate::calibrator_kernel;
use serde::{Deserialize, Serialize};

/// One PU's bandwidth-met curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BwMetCurve {
    /// PU name.
    pub pu: String,
    /// The requested (standalone-achieved) bandwidth in GB/s.
    pub requested_gbps: f64,
    /// `(external demand GB/s, % of requested bandwidth met)` points.
    pub points: Vec<(f64, f64)>,
}

/// The Figure 2 result: one curve per PU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Curves in paper order (DLA, CPU, GPU).
    pub curves: Vec<BwMetCurve>,
    /// The SoC peak bandwidth (GB/s).
    pub peak_gbps: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig2> {
    let soc = ctx.xavier.clone();
    let peak = soc.peak_bw_gbps();
    // Paper's requested levels, scaled by what each PU can actually demand.
    let setups = [("DLA", 30.0), ("CPU", 93.0), ("GPU", 127.0)];
    let grid = ctx.external_grid(&soc);

    let mut curves = Vec::new();
    for (pu_name, requested) in setups {
        let pu = Context::require_pu(&soc, pu_name)?;
        let pressure_pu = Context::pressure_pu_for(&soc, pu);
        let kernel = calibrator_kernel(&soc, pu, requested);
        let standalone = ctx.standalone(&soc, pu, &kernel);
        let mut points = Vec::new();
        for &y in &grid {
            let mut sim = CoRunSim::new(&soc);
            sim.repeats(ctx.repeats());
            sim.place(Placement::kernel(pu, kernel.clone()));
            sim.external_pressure(pressure_pu, y);
            let out = sim.run(ctx.horizon());
            let met = 100.0 * out.per_pu[&pu].bw_gbps / standalone.bw_gbps.max(1e-9);
            points.push((y, met.min(102.0)));
        }
        curves.push(BwMetCurve {
            pu: pu_name.to_owned(),
            requested_gbps: standalone.bw_gbps,
            points,
        });
    }
    Ok(Fig2 {
        curves,
        peak_gbps: peak,
    })
}

impl Fig2 {
    /// Renders the result as a text table (rows = external pressure).
    pub fn format(&self) -> String {
        let mut header = vec!["external GB/s".to_owned()];
        for c in &self.curves {
            header.push(format!("{} (req {:.0})", c.pu, c.requested_gbps));
        }
        let mut t = TextTable::new(header);
        let n = self.curves[0].points.len();
        for i in 0..n {
            let mut row = vec![format!("{:.0}", self.curves[0].points[i].0)];
            for c in &self.curves {
                row.push(format!("{:.1}%", c.points[i].1));
            }
            t.row(row);
        }
        format!(
            "Figure 2 — % of requested BW met under external pressure \
             (peak {:.1} GB/s)\n{t}",
            self.peak_gbps
        )
    }

    /// The paper's qualitative check: each PU already loses bandwidth while
    /// `requested + external < peak` (contention before saturation).
    pub fn contention_before_saturation(&self) -> bool {
        self.curves.iter().any(|c| {
            c.points
                .iter()
                .any(|&(y, met)| c.requested_gbps + y < self.peak_gbps && met < 97.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig2_quick_run_has_three_curves() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.curves.len(), 3);
        for c in &fig.curves {
            assert_eq!(c.points.len(), ctx.external_grid(&ctx.xavier.clone()).len());
            for &(_, met) in &c.points {
                assert!((0.0..=102.0).contains(&met));
            }
        }
        assert!(fig.format().contains("Figure 2"));
    }
}
