//! Figure 2: the percentage of requested memory bandwidth that is met on a
//! processor under various degrees of external memory pressure.
//!
//! The paper's setup: kernels requesting 30 GB/s on the DLA, 93 GB/s on the
//! CPU and 127 GB/s on the GPU of Xavier, with external pressure swept from
//! 0 to the DRAM peak. The headline observation — contention effects are
//! visible *before* requested + external bandwidth reaches the DRAM peak —
//! is the empirical motivation for PCCS.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_soc::corun::{CoRunSim, Placement, StandaloneProfile};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::calibrator_kernel;
use serde::{Deserialize, Serialize};

/// One PU's bandwidth-met curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BwMetCurve {
    /// PU name.
    pub pu: String,
    /// The requested (standalone-achieved) bandwidth in GB/s.
    pub requested_gbps: f64,
    /// `(external demand GB/s, % of requested bandwidth met)` points.
    pub points: Vec<(f64, f64)>,
}

/// The Figure 2 result: one curve per PU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Curves in paper order (DLA, CPU, GPU).
    pub curves: Vec<BwMetCurve>,
    /// The SoC peak bandwidth (GB/s).
    pub peak_gbps: f64,
}

/// One profiled PU setup shared by all of its pressure cells.
#[derive(Debug)]
pub struct Fig2Setup {
    pu_name: &'static str,
    pu: usize,
    pressure_pu: usize,
    kernel: KernelDesc,
    standalone: StandaloneProfile,
}

/// Shared sweep state: the SoC and the profiled setups.
#[derive(Debug)]
pub struct Fig2Prep {
    soc: SocConfig,
    setups: Vec<Fig2Setup>,
    grid: Vec<f64>,
}

/// [`Experiment`] marker for Figure 2; one cell per (PU, pressure level).
#[derive(Debug, Clone, Copy)]
pub struct Fig2Experiment;

impl Experiment for Fig2Experiment {
    type Prep = Fig2Prep;
    type Cell = (usize, f64);
    type CellOut = f64;
    type Output = Fig2;

    fn name(&self) -> &'static str {
        "fig2"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Fig2Prep, Vec<(usize, f64)>)> {
        let soc = ctx.xavier.clone();
        // Paper's requested levels, scaled by what each PU can demand.
        let mut setups = Vec::new();
        for (pu_name, requested) in [("DLA", 30.0), ("CPU", 93.0), ("GPU", 127.0)] {
            let pu = Context::require_pu(&soc, pu_name)?;
            let kernel = calibrator_kernel(&soc, pu, requested);
            setups.push(Fig2Setup {
                pu_name,
                pu,
                pressure_pu: Context::pressure_pu_for(&soc, pu),
                standalone: ctx.standalone(&soc, pu, &kernel),
                kernel,
            });
        }
        let grid = ctx.external_grid(&soc);
        let cells = (0..setups.len())
            .flat_map(|s| grid.iter().map(move |&y| (s, y)))
            .collect();
        Ok((Fig2Prep { soc, setups, grid }, cells))
    }

    fn run_cell(&self, ctx: &Context, prep: &Fig2Prep, &(s, y): &(usize, f64)) -> Result<f64> {
        let setup = &prep.setups[s];
        let mut sim = CoRunSim::new(&prep.soc);
        sim.horizon(ctx.horizon());
        sim.repeats(ctx.repeats());
        sim.place(Placement::kernel(setup.pu, setup.kernel.clone()));
        sim.external_pressure(setup.pressure_pu, y);
        let out = sim.execute();
        let met = 100.0 * out.per_pu[&setup.pu].bw_gbps / setup.standalone.bw_gbps.max(1e-9);
        Ok(met.min(102.0))
    }

    fn merge(&self, _ctx: &Context, prep: Fig2Prep, cells: Vec<f64>) -> Result<Fig2> {
        let curves = prep
            .setups
            .iter()
            .enumerate()
            .map(|(s, setup)| BwMetCurve {
                pu: setup.pu_name.to_owned(),
                requested_gbps: setup.standalone.bw_gbps,
                points: prep
                    .grid
                    .iter()
                    .enumerate()
                    .map(|(i, &y)| (y, cells[s * prep.grid.len() + i]))
                    .collect(),
            })
            .collect();
        Ok(Fig2 {
            curves,
            peak_gbps: prep.soc.peak_bw_gbps(),
        })
    }
}

/// Runs the experiment at the context's configured parallelism.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig2> {
    run_experiment(&Fig2Experiment, ctx)
}

impl Fig2 {
    /// Renders the result as a text table (rows = external pressure).
    pub fn format(&self) -> String {
        let mut header = vec!["external GB/s".to_owned()];
        for c in &self.curves {
            header.push(format!("{} (req {:.0})", c.pu, c.requested_gbps));
        }
        let mut t = TextTable::new(header);
        let n = self.curves[0].points.len();
        for i in 0..n {
            let mut row = vec![format!("{:.0}", self.curves[0].points[i].0)];
            for c in &self.curves {
                row.push(format!("{:.1}%", c.points[i].1));
            }
            t.row(row);
        }
        format!(
            "Figure 2 — % of requested BW met under external pressure \
             (peak {:.1} GB/s)\n{t}",
            self.peak_gbps
        )
    }

    /// The paper's qualitative check: each PU already loses bandwidth while
    /// `requested + external < peak` (contention before saturation).
    pub fn contention_before_saturation(&self) -> bool {
        self.curves.iter().any(|c| {
            c.points
                .iter()
                .any(|&(y, met)| c.requested_gbps + y < self.peak_gbps && met < 97.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig2_quick_run_has_three_curves() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.curves.len(), 3);
        for c in &fig.curves {
            assert_eq!(c.points.len(), ctx.external_grid(&ctx.xavier.clone()).len());
            for &(_, met) in &c.points {
                assert!((0.0..=102.0).contains(&met));
            }
        }
        assert!(fig.format().contains("Figure 2"));
        assert!(
            fig.contention_before_saturation(),
            "the paper's headline observation should hold: PUs lose bandwidth \
             before requested + external traffic reaches the peak"
        );
    }
}
