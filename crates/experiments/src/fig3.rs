//! Figure 3: achieved relative speed of synthetic kernels under external
//! pressure, grouped into the three demand classes that motivate the
//! three-region model — (a) low-demand kernels barely slow down, (b)
//! medium-demand kernels show flat → near-linear drop → flat, (c)
//! high-demand kernels drop immediately then flatten.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_soc::corun::{CoRunSim, Placement, StandaloneProfile};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::calibrator_kernel;
use serde::{Deserialize, Serialize};

/// One kernel's relative-speed curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RsCurve {
    /// Requested calibrator demand (GB/s).
    pub requested_gbps: f64,
    /// Achieved standalone bandwidth (GB/s) — the model's `x`.
    pub standalone_gbps: f64,
    /// `(external demand, RS %)` points.
    pub points: Vec<(f64, f64)>,
}

/// The Figure 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// All curves, ascending demand.
    pub curves: Vec<RsCurve>,
}

/// Shared sweep state: the SoC and each demand level's profiled kernel.
#[derive(Debug)]
pub struct Fig3Prep {
    soc: SocConfig,
    gpu: usize,
    cpu: usize,
    /// `(requested demand, kernel, standalone profile)` per demand level.
    levels: Vec<(f64, KernelDesc, StandaloneProfile)>,
    grid: Vec<f64>,
}

/// [`Experiment`] marker for Figure 3; one cell per (demand, pressure).
#[derive(Debug, Clone, Copy)]
pub struct Fig3Experiment;

impl Experiment for Fig3Experiment {
    type Prep = Fig3Prep;
    type Cell = (usize, f64);
    type CellOut = f64;
    type Output = Fig3;

    fn name(&self) -> &'static str {
        "fig3"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Fig3Prep, Vec<(usize, f64)>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let cpu = Context::require_pu(&soc, "CPU")?;
        let demands: Vec<f64> = match ctx.quality {
            crate::context::Quality::Quick => vec![10.0, 50.0, 100.0],
            crate::context::Quality::Full => (1..=10).map(|i| i as f64 * 10.0).collect(),
        };
        let levels = demands
            .into_iter()
            .map(|demand| {
                let kernel = calibrator_kernel(&soc, gpu, demand);
                let standalone = ctx.standalone(&soc, gpu, &kernel);
                (demand, kernel, standalone)
            })
            .collect::<Vec<_>>();
        let grid = ctx.external_grid(&soc);
        let cells = (0..levels.len())
            .flat_map(|l| grid.iter().map(move |&y| (l, y)))
            .collect();
        Ok((
            Fig3Prep {
                soc,
                gpu,
                cpu,
                levels,
                grid,
            },
            cells,
        ))
    }

    fn run_cell(&self, ctx: &Context, prep: &Fig3Prep, &(l, y): &(usize, f64)) -> Result<f64> {
        let (_, kernel, standalone) = &prep.levels[l];
        let mut sim = CoRunSim::new(&prep.soc);
        sim.horizon(ctx.horizon());
        sim.repeats(ctx.repeats());
        sim.place(Placement::kernel(prep.gpu, kernel.clone()));
        sim.external_pressure(prep.cpu, y);
        let out = sim.execute();
        Ok(out
            .relative_speed_pct(prep.gpu, standalone)
            .expect("GPU is placed")
            .min(102.0))
    }

    fn merge(&self, _ctx: &Context, prep: Fig3Prep, cells: Vec<f64>) -> Result<Fig3> {
        let curves = prep
            .levels
            .iter()
            .enumerate()
            .map(|(l, (demand, _, standalone))| RsCurve {
                requested_gbps: *demand,
                standalone_gbps: standalone.bw_gbps,
                points: prep
                    .grid
                    .iter()
                    .enumerate()
                    .map(|(i, &y)| (y, cells[l * prep.grid.len() + i]))
                    .collect(),
            })
            .collect();
        Ok(Fig3 { curves })
    }
}

/// Runs the sweep on the Xavier GPU (the paper uses the GPU and CPU; the
/// GPU exhibits all three classes).
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig3> {
    run_experiment(&Fig3Experiment, ctx)
}

impl Fig3 {
    /// Renders the curves, one row per kernel.
    pub fn format(&self) -> String {
        let mut header = vec!["req GB/s".to_owned(), "x GB/s".to_owned()];
        for &(y, _) in &self.curves[0].points {
            header.push(format!("y={y:.0}"));
        }
        let mut t = TextTable::new(header);
        for c in &self.curves {
            let mut row = vec![
                format!("{:.0}", c.requested_gbps),
                format!("{:.1}", c.standalone_gbps),
            ];
            row.extend(c.points.iter().map(|&(_, rs)| format!("{rs:.1}")));
            t.row(row);
        }
        format!("Figure 3 — achieved relative speed (%) vs external demand, Xavier GPU\n{t}")
    }

    /// Mean RS of the lowest-demand curve — should stay near 100 %.
    pub fn low_class_mean_rs(&self) -> f64 {
        let c = &self.curves[0];
        c.points.iter().map(|&(_, rs)| rs).sum::<f64>() / c.points.len() as f64
    }

    /// Mean RS of the highest-demand curve — should sit well below the low
    /// class.
    pub fn high_class_mean_rs(&self) -> f64 {
        let c = self.curves.last().expect("curves non-empty");
        c.points.iter().map(|&(_, rs)| rs).sum::<f64>() / c.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig3_classes_are_ordered() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.curves.len(), 3);
        assert!(
            fig.low_class_mean_rs() > fig.high_class_mean_rs(),
            "low-demand kernels must retain more speed: {:.1} vs {:.1}",
            fig.low_class_mean_rs(),
            fig.high_class_mean_rs()
        );
        assert!(fig.low_class_mean_rs() > 90.0);
    }
}
