//! Validation of the source-obliviousness insight (Section 3.2).
//!
//! PCCS's processor-centric construction rests on one assumption: "the
//! influence external memory interference has on the performance of an
//! application is determined by the degree of interference, and is largely
//! oblivious to what the sources of the external traffic are". The paper
//! validates it on Xavier by generating the same total external traffic
//! from different source mixes and checking the victim's achieved relative
//! speed barely moves.
//!
//! This experiment repeats that validation on the simulated Xavier: a GPU
//! victim under a fixed *total* external demand produced by (a) the CPU
//! alone, (b) the CPU and DLA in equal halves, and (c) a DLA-weighted mix.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_soc::corun::{CoRunSim, Placement, StandaloneProfile};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::calibrator_kernel;
use serde::{Deserialize, Serialize};

/// One measurement: a source composition and the victim's relative speed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompositionPoint {
    /// Human-readable composition (e.g. `"CPU 100%"`).
    pub composition: String,
    /// Victim relative speed (%).
    pub rs_pct: f64,
}

/// The experiment's result: per total-demand level, the victim's RS under
/// each composition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Oblivious {
    /// Victim standalone demand (GB/s).
    pub victim_demand_gbps: f64,
    /// `(total external GB/s, per-composition points)`.
    pub levels: Vec<(f64, Vec<CompositionPoint>)>,
}

/// One sweep cell: a total external demand delivered by a named mix of
/// pressure sources.
#[derive(Debug, Clone)]
pub struct ObliviousCell {
    total: f64,
    label: String,
    sources: Vec<(usize, f64)>,
}

/// Shared sweep state: the victim kernel and its standalone profile.
#[derive(Debug)]
pub struct ObliviousPrep {
    soc: SocConfig,
    gpu: usize,
    kernel: KernelDesc,
    standalone: StandaloneProfile,
}

/// [`Experiment`] marker for the §3.2 validation; one cell per
/// (total demand, source composition).
#[derive(Debug, Clone, Copy)]
pub struct ObliviousExperiment;

impl Experiment for ObliviousExperiment {
    type Prep = ObliviousPrep;
    type Cell = ObliviousCell;
    type CellOut = (f64, CompositionPoint);
    type Output = Oblivious;

    fn name(&self) -> &'static str {
        "oblivious"
    }

    fn prepare(&self, ctx: &Context) -> Result<(ObliviousPrep, Vec<ObliviousCell>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let cpu = Context::require_pu(&soc, "CPU")?;
        let dla = Context::require_pu(&soc, "DLA")?;

        let kernel = calibrator_kernel(&soc, gpu, 80.0);
        let standalone = ctx.standalone(&soc, gpu, &kernel);

        let totals: Vec<f64> = match ctx.quality {
            crate::context::Quality::Quick => vec![40.0],
            crate::context::Quality::Full => vec![30.0, 60.0, 90.0],
        };

        let mut cells = Vec::new();
        for &total in &totals {
            // The DLA cannot generate unbounded traffic; cap its share at
            // its achievable ~35 GB/s so all compositions deliver the same
            // total.
            let dla_half = (total / 2.0).min(30.0);
            let dla_heavy = (total * 0.75).min(30.0);
            let compositions: Vec<(String, Vec<(usize, f64)>)> = vec![
                ("CPU 100%".into(), vec![(cpu, total)]),
                (
                    "CPU 50% + DLA 50%".into(),
                    vec![(cpu, total - dla_half), (dla, dla_half)],
                ),
                (
                    "CPU 25% + DLA 75%".into(),
                    vec![(cpu, total - dla_heavy), (dla, dla_heavy)],
                ),
            ];
            for (label, sources) in compositions {
                cells.push(ObliviousCell {
                    total,
                    label,
                    sources,
                });
            }
        }

        Ok((
            ObliviousPrep {
                soc,
                gpu,
                kernel,
                standalone,
            },
            cells,
        ))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        prep: &ObliviousPrep,
        cell: &ObliviousCell,
    ) -> Result<(f64, CompositionPoint)> {
        let mut sim = CoRunSim::new(&prep.soc);
        sim.horizon(ctx.horizon());
        sim.repeats(ctx.repeats());
        sim.place(Placement::kernel(prep.gpu, prep.kernel.clone()));
        for &(pu, gbps) in &cell.sources {
            sim.external_pressure(pu, gbps);
        }
        let out = sim.execute();
        Ok((
            cell.total,
            CompositionPoint {
                composition: cell.label.clone(),
                rs_pct: out
                    .relative_speed_pct(prep.gpu, &prep.standalone)
                    .expect("GPU is placed")
                    .min(102.0),
            },
        ))
    }

    fn merge(
        &self,
        _ctx: &Context,
        prep: ObliviousPrep,
        outs: Vec<(f64, CompositionPoint)>,
    ) -> Result<Oblivious> {
        // Cells arrive in enumeration order: group consecutive points that
        // share a total-demand level.
        let mut levels: Vec<(f64, Vec<CompositionPoint>)> = Vec::new();
        for (total, point) in outs {
            match levels.last_mut() {
                Some((t, pts)) if *t == total => pts.push(point),
                _ => levels.push((total, vec![point])),
            }
        }
        Ok(Oblivious {
            victim_demand_gbps: prep.standalone.bw_gbps,
            levels,
        })
    }
}

/// Runs the validation on the Xavier GPU.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Oblivious> {
    run_experiment(&ObliviousExperiment, ctx)
}

impl Oblivious {
    /// The largest spread (max − min RS) across compositions at any level.
    pub fn max_spread_pct(&self) -> f64 {
        self.levels
            .iter()
            .map(|(_, pts)| {
                let max = pts.iter().map(|p| p.rs_pct).fold(f64::MIN, f64::max);
                let min = pts.iter().map(|p| p.rs_pct).fold(f64::MAX, f64::min);
                max - min
            })
            .fold(0.0, f64::max)
    }

    /// Renders the table.
    pub fn format(&self) -> String {
        let mut header = vec!["total external GB/s".to_owned()];
        for p in &self.levels[0].1 {
            header.push(p.composition.clone());
        }
        let mut t = TextTable::new(header);
        for (total, pts) in &self.levels {
            let mut row = vec![format!("{total:.0}")];
            row.extend(pts.iter().map(|p| format!("{:.1}", p.rs_pct)));
            t.row(row);
        }
        format!(
            "Source-obliviousness validation (§3.2) — GPU victim at {:.1} GB/s; \
             max spread across compositions {:.1} pp\n{t}",
            self.victim_demand_gbps,
            self.max_spread_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn oblivious_quick_runs_three_compositions() {
        let mut ctx = Context::new(Quality::Quick);
        let o = run(&mut ctx).expect("experiment runs");
        assert_eq!(o.levels.len(), 1);
        assert_eq!(o.levels[0].1.len(), 3);
        // The methodological assumption: composition changes the victim's
        // RS far less than the pressure level does.
        assert!(
            o.max_spread_pct() < 25.0,
            "source composition changed RS by {:.1} pp",
            o.max_spread_pct()
        );
        assert!(o.format().contains("obliviousness"));
    }
}
