//! The unified experiment API and its parallel sweep engine.
//!
//! Every reproduction artifact is the same shape: enumerate a grid of
//! independent *cells* (a benchmark, a pressure level, a clock ratio, a
//! policy…), simulate each cell, and merge the per-cell results into one
//! serializable figure/table. [`Experiment`] names that shape once, and
//! [`SweepRunner`] fans the cells out over `std::thread::scope` workers.
//!
//! # Determinism
//!
//! Cells are independent and every simulation is seeded, so the merge sees
//! the same per-cell results in the same order regardless of the worker
//! count: `--jobs N` output is byte-identical to `--jobs 1`. The runner
//! guarantees this by writing each cell's result into its own slot
//! (work-stealing over an atomic index, order-preserving collection) rather
//! than collecting in completion order.
//!
//! # Adding a new figure/table
//!
//! 1. Define the output struct (serializable) and a marker type.
//! 2. Implement [`Experiment`]: `prepare` builds shared state (models,
//!    standalone profiles — route them through [`Context::standalone`] so
//!    the profile cache deduplicates across experiments) and the cell list;
//!    `run_cell` simulates one cell; `merge` assembles the output.
//! 3. Keep a `pub fn run(ctx: &mut Context) -> Result<Output>` wrapper that
//!    calls [`run_experiment`], and register it in `bin/repro.rs`.

use crate::context::Context;
use crate::error::Result;
use pccs_telemetry::{metrics, Profiler, TraceLog};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One reproduction artifact as a parallel sweep: shared preparation, an
/// enumerated grid of independent cells, a per-cell simulation, and a merge
/// into one serializable output.
pub trait Experiment {
    /// Shared read-only state built once before the sweep (models,
    /// standalone profiles, grids).
    type Prep: Send + Sync;
    /// One independent unit of simulation work.
    type Cell: Send + Sync;
    /// The result of simulating one cell.
    type CellOut: Send;
    /// The merged artifact, serializable for `--metrics-out`.
    type Output: serde::Serialize;

    /// Stable name used for telemetry spans and progress lines.
    fn name(&self) -> &'static str;

    /// Builds the shared state and enumerates the sweep cells.
    ///
    /// # Errors
    ///
    /// Returns an error when the experiment's inputs are invalid for the
    /// context (e.g. a PU missing from the SoC preset).
    fn prepare(&self, ctx: &Context) -> Result<(Self::Prep, Vec<Self::Cell>)>;

    /// Simulates one cell. Must not depend on any other cell's result —
    /// the runner may execute cells concurrently and in any order.
    ///
    /// # Errors
    ///
    /// Returns an error when the cell references inputs the context cannot
    /// resolve.
    fn run_cell(
        &self,
        ctx: &Context,
        prep: &Self::Prep,
        cell: &Self::Cell,
    ) -> Result<Self::CellOut>;

    /// Merges the per-cell results — delivered in cell-enumeration order —
    /// into the final artifact.
    ///
    /// # Errors
    ///
    /// Returns an error when the merged artifact cannot be assembled.
    fn merge(
        &self,
        ctx: &Context,
        prep: Self::Prep,
        cells: Vec<Self::CellOut>,
    ) -> Result<Self::Output>;
}

/// Fans [`Experiment`] cells out over scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// Creates a runner with `jobs` workers; `0` means all available cores.
    pub fn new(jobs: usize) -> Self {
        Self { jobs }
    }

    /// The resolved worker count (always ≥ 1).
    pub fn jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs `exp` to completion: prepare → sweep cells → merge.
    ///
    /// The sweep is recorded as a `sweep.<name>` telemetry span carrying
    /// the cell count, worker count, and the profile-cache hits/misses the
    /// experiment generated.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage; the earliest-enumerated failing
    /// cell wins so the reported error does not depend on thread timing.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn run<E: Experiment + Sync>(&self, exp: &E, ctx: &Context) -> Result<E::Output> {
        let _prof = Profiler::scope(&format!("sweep.{}", exp.name()));
        let mut span = TraceLog::span(&format!("sweep.{}", exp.name()));
        let cache_before = ctx.profile_cache_stats();
        let (prep, cells) = exp.prepare(ctx)?;
        let workers = self.jobs().min(cells.len().max(1));
        span.counter("cells", cells.len() as f64);
        span.counter("jobs", workers as f64);
        let cell_scope = format!("cell.{}", exp.name());

        let outs: Vec<Result<E::CellOut>> = if workers <= 1 {
            cells
                .iter()
                .map(|cell| {
                    let _cell_prof = Profiler::scope(&cell_scope);
                    exp.run_cell(ctx, &prep, cell)
                })
                .collect()
        } else {
            // Work-stealing over an atomic cursor: workers grab the next
            // unclaimed cell and write its result into that cell's slot, so
            // collection order equals enumeration order no matter which
            // worker finishes first.
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Result<E::CellOut>>>> =
                cells.iter().map(|_| Mutex::new(None)).collect();
            // Cells claimed by each worker; cells that did not go to worker
            // 0 count as "steals" in the published sweep metrics.
            let claimed: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                // Shadow the shared state as references so the `move`
                // closures (which need `worker` by value) only copy &-refs.
                let (cursor, cells, slots) = (&cursor, &cells, &slots);
                let (claimed, cell_scope, prep) = (&claimed, &cell_scope, &prep);
                for worker_claimed in claimed.iter().take(workers) {
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = cells.get(i) else { break };
                        worker_claimed.fetch_add(1, Ordering::Relaxed);
                        let _cell_prof = Profiler::scope(cell_scope);
                        let out = exp.run_cell(ctx, prep, cell);
                        *slots[i].lock().expect("cell slot") = Some(out);
                    });
                }
            });
            let stolen: usize = claimed
                .iter()
                .skip(1)
                .map(|c| c.load(Ordering::Relaxed))
                .sum();
            metrics::add("sweep.steals", stolen as u64);
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("cell slot")
                        .expect("every cell claimed by a worker")
                })
                .collect()
        };
        metrics::add("sweep.cells", cells.len() as u64);
        metrics::observe_max("sweep.workers", workers as u64);

        let mut results = Vec::with_capacity(outs.len());
        for out in outs {
            results.push(out?);
        }

        let cache_after = ctx.profile_cache_stats();
        let (cache_hits, cache_misses) = (
            cache_after.hits - cache_before.hits,
            cache_after.misses - cache_before.misses,
        );
        metrics::add("profile_cache.hits", cache_hits);
        metrics::add("profile_cache.misses", cache_misses);
        span.counter("profile_cache_hits", cache_hits as f64);
        span.counter("profile_cache_misses", cache_misses as f64);
        exp.merge(ctx, prep, results)
    }
}

/// Runs `exp` with the context's configured worker count — the single entry
/// point the per-module `run()` wrappers delegate to.
///
/// # Errors
///
/// Propagates the experiment's first failing stage.
pub fn run_experiment<E: Experiment + Sync>(exp: &E, ctx: &Context) -> Result<E::Output> {
    SweepRunner::new(ctx.jobs()).run(exp, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;
    use crate::error::ExperimentError;

    /// Squares each cell; merge sums the squares. Exercises ordering and
    /// the parallel path with more cells than workers.
    struct Squares {
        n: usize,
    }

    impl Experiment for Squares {
        type Prep = ();
        type Cell = usize;
        type CellOut = usize;
        type Output = Vec<usize>;

        fn name(&self) -> &'static str {
            "squares"
        }

        fn prepare(&self, _ctx: &Context) -> Result<((), Vec<usize>)> {
            Ok(((), (0..self.n).collect()))
        }

        fn run_cell(&self, _ctx: &Context, _prep: &(), cell: &usize) -> Result<usize> {
            Ok(cell * cell)
        }

        fn merge(&self, _ctx: &Context, _prep: (), cells: Vec<usize>) -> Result<Vec<usize>> {
            Ok(cells)
        }
    }

    /// Fails on one specific cell.
    struct FailAt {
        at: usize,
    }

    impl Experiment for FailAt {
        type Prep = ();
        type Cell = usize;
        type CellOut = usize;
        type Output = Vec<usize>;

        fn name(&self) -> &'static str {
            "fail-at"
        }

        fn prepare(&self, _ctx: &Context) -> Result<((), Vec<usize>)> {
            Ok(((), (0..8).collect()))
        }

        fn run_cell(&self, _ctx: &Context, _prep: &(), cell: &usize) -> Result<usize> {
            if *cell == self.at {
                Err(ExperimentError::UnknownMix {
                    mix: format!("cell {cell}"),
                    available: vec![],
                })
            } else {
                Ok(*cell)
            }
        }

        fn merge(&self, _ctx: &Context, _prep: (), cells: Vec<usize>) -> Result<Vec<usize>> {
            Ok(cells)
        }
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let ctx = Context::new(Quality::Quick);
        let exp = Squares { n: 23 };
        let serial = SweepRunner::new(1).run(&exp, &ctx).unwrap();
        let parallel = SweepRunner::new(4).run(&exp, &ctx).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..23).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_merges_nothing() {
        let ctx = Context::new(Quality::Quick);
        let out = SweepRunner::new(4).run(&Squares { n: 0 }, &ctx).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_cell_error_wins_regardless_of_jobs() {
        let ctx = Context::new(Quality::Quick);
        for jobs in [1, 4] {
            let err = SweepRunner::new(jobs)
                .run(&FailAt { at: 3 }, &ctx)
                .unwrap_err();
            assert!(err.to_string().contains("cell 3"), "jobs={jobs}: {err}");
        }
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(5).jobs(), 5);
    }
}
