//! Typed failures of the experiment harness.
//!
//! The experiments drive the simulators with *named* resources — PUs
//! looked up by name on a `SocConfig`, mixes and policies looked up by
//! name in `pccs-sched`. A misspelled or missing name used to panic deep
//! inside an experiment; it now surfaces as an [`ExperimentError`] that the
//! `repro` binary prints as a one-line diagnosis.

use std::fmt;

/// A failure preparing or running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// A PU name was not found on the SoC preset (e.g. asking the
    /// Snapdragon 855 for its DLA).
    MissingPu {
        /// The SoC searched.
        soc: String,
        /// The PU name requested.
        pu: String,
        /// The names the SoC does have.
        available: Vec<String>,
    },
    /// A named scheduling mix does not exist.
    UnknownMix {
        /// The mix requested.
        mix: String,
        /// The bundled mix names.
        available: Vec<String>,
    },
    /// A named scheduling policy does not exist.
    UnknownPolicy {
        /// The policy requested.
        policy: String,
    },
    /// The scheduling or serving engine rejected the job stream — e.g. a
    /// mix references a PU kind absent from the chosen SoC preset.
    Sched {
        /// The underlying engine error, rendered.
        detail: String,
    },
    /// The serving loop rejected its configuration — e.g. a request class
    /// that cannot run anywhere on the chosen SoC preset.
    Serve {
        /// The underlying serving error, rendered.
        detail: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingPu { soc, pu, available } => write!(
                f,
                "SoC '{soc}' has no PU named '{pu}' (available: {})",
                available.join(", ")
            ),
            Self::UnknownMix { mix, available } => write!(
                f,
                "unknown scheduling mix '{mix}' (available: {})",
                available.join(", ")
            ),
            Self::UnknownPolicy { policy } => write!(
                f,
                "unknown scheduling policy '{policy}' (available: round-robin, greedy, pccs, oracle)"
            ),
            Self::Sched { detail } => write!(f, "scheduling engine: {detail}"),
            Self::Serve { detail } => write!(f, "serving loop: {detail}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<pccs_sched::SchedError> for ExperimentError {
    fn from(err: pccs_sched::SchedError) -> Self {
        Self::Sched {
            detail: err.to_string(),
        }
    }
}

impl From<pccs_serve::ServeError> for ExperimentError {
    fn from(err: pccs_serve::ServeError) -> Self {
        Self::Serve {
            detail: err.to_string(),
        }
    }
}

/// Shorthand result for experiment `run` functions.
pub type Result<T> = std::result::Result<T, ExperimentError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_missing_resource() {
        let e = ExperimentError::MissingPu {
            soc: "Snapdragon 855".into(),
            pu: "DLA".into(),
            available: vec!["CPU".into(), "GPU".into()],
        };
        let text = e.to_string();
        assert!(text.contains("Snapdragon 855"));
        assert!(text.contains("DLA"));
        assert!(text.contains("CPU, GPU"));
    }
}
