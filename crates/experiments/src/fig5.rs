//! Figure 5 and Table 3: the memory-controller policy study on the 16-core
//! CMP configuration of Table 1.
//!
//! Two core groups share a DDR4-3200 memory system (102.4 GB/s): a
//! low-bandwidth group (8 cores) whose total demand sweeps upward, and a
//! high-bandwidth group (8 cores) whose achieved relative speed is
//! measured. The paper's observations: FCFS degrades proportionally,
//! FR-FCFS lets memory-intensive co-runners crush the victim, and the three
//! fairness-controlled policies (ATLAS, TCM, SMS) produce the
//! flat → drop → flat curves that PCCS models. Table 3 reports each
//! policy's row-buffer hit rate and effective bandwidth at saturation.

use crate::context::{Context, Quality};
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_dram::config::DramConfig;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;
use serde::{Deserialize, Serialize};

/// One policy's curves and Table 3 metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyStudy {
    /// The policy.
    pub policy: PolicyKind,
    /// Per victim-demand-level curves: `(victim total GB/s, points)` where
    /// points are `(external total GB/s, RS %)`.
    pub curves: Vec<(f64, Vec<(f64, f64)>)>,
    /// Table 3: aggregate row-buffer hit rate (%) at the saturating point.
    pub row_hit_pct: f64,
    /// Table 3: effective bandwidth as % of peak at the saturating point.
    pub effective_bw_pct: f64,
    /// Requests accepted into controller queues at the saturating point.
    pub enqueued: u64,
    /// Requests refused at full controller queues (back-pressure) at the
    /// saturating point.
    pub rejected: u64,
}

impl PolicyStudy {
    /// Back-pressure as a percentage of enqueue attempts.
    pub fn rejected_pct(&self) -> f64 {
        let attempts = self.enqueued + self.rejected;
        if attempts == 0 {
            0.0
        } else {
            100.0 * self.rejected as f64 / attempts as f64
        }
    }
}

/// The Figure 5 + Table 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// One study per policy, in Table 2 order.
    pub policies: Vec<PolicyStudy>,
}

const GROUP_CORES: usize = 8;

fn group(
    sys: &mut DramSystem,
    base: usize,
    total_gbps: f64,
    window: usize,
    locality: f64,
    seed: u64,
) {
    for s in 0..GROUP_CORES {
        sys.add_generator(
            StreamTraffic::builder(SourceId(base + s))
                .demand_gbps(total_gbps / GROUP_CORES as f64)
                .row_locality(locality)
                .window(window)
                .seed(seed ^ (base + s) as u64)
                .build(),
        );
    }
}

fn group_bw(out: &pccs_dram::sim::SimOutcome, base: usize) -> f64 {
    (0..GROUP_CORES)
        .map(|s| out.source_bw_gbps(SourceId(base + s)))
        .sum()
}

/// Shared sweep state: the CMP DRAM config and the demand grids.
#[derive(Debug)]
pub struct Fig5Prep {
    config: DramConfig,
    victim_levels: Vec<f64>,
    external_levels: Vec<f64>,
}

/// [`Experiment`] marker for Figure 5 + Table 3; one cell per policy.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Experiment;

impl Experiment for Fig5Experiment {
    type Prep = Fig5Prep;
    type Cell = PolicyKind;
    type CellOut = PolicyStudy;
    type Output = Fig5;

    fn name(&self) -> &'static str {
        "fig5"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Fig5Prep, Vec<PolicyKind>)> {
        // Victim (high-BW group) total demands: three representative levels
        // of the paper's 9–90 GB/s per-kernel sweep; external (low-BW
        // group) totals: the paper's 6–60 GB/s sweep.
        let (victim_levels, external_levels) = match ctx.quality {
            Quality::Quick => (vec![24.0, 72.0], vec![12.0, 36.0, 60.0]),
            Quality::Full => (
                vec![24.0, 48.0, 72.0],
                (1..=10).map(|i| i as f64 * 6.0).collect(),
            ),
        };
        Ok((
            Fig5Prep {
                config: DramConfig::cmp_study(),
                victim_levels,
                external_levels,
            },
            PolicyKind::all().to_vec(),
        ))
    }

    fn run_cell(&self, ctx: &Context, prep: &Fig5Prep, kind: &PolicyKind) -> Result<PolicyStudy> {
        let kind = *kind;
        let horizon = ctx.horizon();
        let mut curves = Vec::new();
        for &victim in &prep.victim_levels {
            let standalone = {
                let mut sys = DramSystem::new(prep.config.clone(), kind);
                group(&mut sys, 0, victim, 24, 0.95, 0x51);
                let out = sys.run(horizon);
                group_bw(&out, 0)
            };
            let mut points = Vec::new();
            for &ext in &prep.external_levels {
                let mut sys = DramSystem::new(prep.config.clone(), kind);
                group(&mut sys, 0, victim, 24, 0.95, 0x51);
                group(&mut sys, GROUP_CORES, ext, 24, 0.9, 0xa7);
                let out = sys.run(horizon);
                let rs = 100.0 * group_bw(&out, 0) / standalone.max(1e-9);
                points.push((ext, rs.min(102.0)));
            }
            curves.push((victim, points));
        }

        // Table 3 metrics: both groups demanding enough that the sum of
        // standalone demands reaches the theoretical peak.
        let (rbh, eff, enq, rej) = {
            let mut sys = DramSystem::new(prep.config.clone(), kind);
            group(&mut sys, 0, 64.0, 24, 0.95, 0x51);
            group(&mut sys, GROUP_CORES, 48.0, 24, 0.9, 0xa7);
            let out = sys.run(horizon);
            let enq: u64 = out.stats.per_source.values().map(|s| s.enqueued).sum();
            let rej: u64 = out.stats.per_source.values().map(|s| s.rejected).sum();
            (out.row_hit_pct(), out.effective_bw_pct(), enq, rej)
        };
        Ok(PolicyStudy {
            policy: kind,
            curves,
            row_hit_pct: rbh,
            effective_bw_pct: eff,
            enqueued: enq,
            rejected: rej,
        })
    }

    fn merge(&self, _ctx: &Context, _prep: Fig5Prep, cells: Vec<PolicyStudy>) -> Result<Fig5> {
        Ok(Fig5 { policies: cells })
    }
}

/// Runs the study.
///
/// # Errors
///
/// Infallible today (the CMP study references no named PUs), but returns
/// `Result` for API uniformity with every other experiment module.
pub fn run(ctx: &mut Context) -> Result<Fig5> {
    run_experiment(&Fig5Experiment, ctx)
}

impl Fig5 {
    /// Renders the per-policy curves.
    pub fn format(&self) -> String {
        let mut out = String::from("Figure 5 — high-BW group relative speed (%) per policy\n");
        for p in &self.policies {
            out.push_str(&format!("\n[{}]\n", p.policy));
            let mut header = vec!["victim GB/s".to_owned()];
            for &(ext, _) in &p.curves[0].1 {
                header.push(format!("y={ext:.0}"));
            }
            let mut t = TextTable::new(header);
            for (victim, points) in &p.curves {
                let mut row = vec![format!("{victim:.0}")];
                row.extend(points.iter().map(|&(_, rs)| format!("{rs:.1}")));
                t.row(row);
            }
            out.push_str(&t.to_string());
        }
        out.push_str("\nTable 3 — row-buffer hits, effective bandwidth, and queue back-pressure at saturation\n");
        let mut t = TextTable::new(vec![
            "policy".into(),
            "RBH (%)".into(),
            "effective BW (% of peak)".into(),
            "enqueued".into(),
            "rejected (%)".into(),
        ]);
        for p in &self.policies {
            t.row(vec![
                p.policy.label().into(),
                format!("{:.1}", p.row_hit_pct),
                format!("{:.1}", p.effective_bw_pct),
                p.enqueued.to_string(),
                format!("{} ({:.1})", p.rejected, p.rejected_pct()),
            ]);
        }
        out.push_str(&t.to_string());
        out
    }

    /// Metrics of one policy.
    pub fn study(&self, policy: PolicyKind) -> &PolicyStudy {
        self.policies
            .iter()
            .find(|p| p.policy == policy)
            .expect("all policies present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_run_covers_all_policies() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.policies.len(), 5);
        // FR-FCFS should beat FCFS on both Table 3 metrics, as in the paper
        // (91.6 vs 47.7 RBH; 89.7 vs 65.6 effective BW).
        let fcfs = fig.study(PolicyKind::Fcfs);
        let fr = fig.study(PolicyKind::FrFcfs);
        assert!(fr.row_hit_pct > fcfs.row_hit_pct);
        assert!(fr.effective_bw_pct > fcfs.effective_bw_pct);
        assert!(fig.format().contains("Table 3"));
    }
}
