//! Table 9 and Figure 15: the SoC-design use case — selecting the lowest
//! GPU frequency whose co-run performance stays within an allowed slowdown,
//! using PCCS vs Gables vs simulated ground truth (Section 4.3).
//!
//! The paper's signature result: Gables picks the same frequency regardless
//! of external pressure (it predicts zero contention below the peak), while
//! PCCS tracks the ground truth within a few percent.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::PccsModel;
use pccs_dse::freq::{
    ground_truth_frequency, profile_frequencies, select_frequency, FrequencyPoint,
};
use pccs_gables::GablesModel;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// One (budget, pressure) cell of Table 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionCell {
    /// Allowed slowdown (fraction).
    pub budget: f64,
    /// External demand (GB/s).
    pub external_gbps: f64,
    /// Ground-truth frequency (MHz).
    pub truth_mhz: f64,
    /// PCCS-selected frequency (MHz).
    pub pccs_mhz: f64,
    /// Gables-selected frequency (MHz).
    pub gables_mhz: f64,
}

impl SelectionCell {
    /// PCCS frequency error vs ground truth (%).
    pub fn pccs_error_pct(&self) -> f64 {
        100.0 * (self.pccs_mhz - self.truth_mhz).abs() / self.truth_mhz
    }

    /// Gables frequency error vs ground truth (%).
    pub fn gables_error_pct(&self) -> f64 {
        100.0 * (self.gables_mhz - self.truth_mhz).abs() / self.truth_mhz
    }
}

/// The Table 9 + Figure 15 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9 {
    /// All selection cells.
    pub cells: Vec<SelectionCell>,
    /// Figure 15 data: `(freq MHz, [(external, perf_rel)])` ground-truth
    /// co-run performance curves at representative frequencies.
    pub fig15_curves: Vec<(f64, Vec<(f64, f64)>)>,
}

/// Shared sweep state: the DVFS profile and both models.
#[derive(Debug)]
pub struct Table9Prep {
    soc: SocConfig,
    gpu: usize,
    cpu: usize,
    kernel: KernelDesc,
    pccs: PccsModel,
    gables: GablesModel,
    freqs: Vec<f64>,
    points: Vec<FrequencyPoint>,
    base_rate: f64,
}

/// One unit of Table 9 / Figure 15 work.
#[derive(Debug, Clone, Copy)]
pub enum Table9Cell {
    /// A (budget, external pressure) frequency selection.
    Select {
        /// Allowed slowdown (fraction).
        budget: f64,
        /// External demand (GB/s).
        external_gbps: f64,
    },
    /// One ground-truth performance curve at a fixed frequency (Fig. 15).
    Curve {
        /// GPU clock (MHz).
        freq_mhz: f64,
    },
}

/// The result of one [`Table9Cell`].
#[derive(Debug, Clone)]
pub enum Table9CellOut {
    /// A filled selection row.
    Select(SelectionCell),
    /// A filled Fig. 15 curve.
    Curve((f64, Vec<(f64, f64)>)),
}

/// [`Experiment`] marker for Table 9 + Figure 15; selection cells and
/// Fig. 15 curves are all independent sweep cells.
#[derive(Debug, Clone, Copy)]
pub struct Table9Experiment;

impl Experiment for Table9Experiment {
    type Prep = Table9Prep;
    type Cell = Table9Cell;
    type CellOut = Table9CellOut;
    type Output = Table9;

    fn name(&self) -> &'static str {
        "table9"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Table9Prep, Vec<Table9Cell>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let cpu = Context::require_pu(&soc, "CPU")?;
        let kernel = RodiniaBenchmark::Streamcluster.kernel(PuKind::Gpu);
        let pccs = ctx.pccs_model(&soc, gpu);
        let gables = ctx.gables(&soc);

        let freqs: Vec<f64> = match ctx.quality {
            crate::context::Quality::Quick => vec![500.0, 900.0, 1377.0],
            crate::context::Quality::Full => {
                vec![
                    400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0, 1377.0,
                ]
            }
        };
        // The paper uses 20/40/60 GB/s on silicon whose contention bites
        // early; our substrate's fairness control absorbs mild pressure, so
        // the same *regime* (light / medium / heavy contention) sits at
        // higher absolute levels here.
        let externals: Vec<f64> = vec![40.0, 80.0, 120.0];
        let budgets = [0.05, 0.20];

        let points = profile_frequencies(&soc, gpu, &kernel, &freqs, ctx.horizon());

        // Figure 15 normalization: the top frequency's standalone rate.
        let fig_freqs = [freqs[freqs.len() - 1], freqs[freqs.len() / 2]];
        let top = soc.with_pu(gpu, soc.pus[gpu].with_frequency(fig_freqs[0]));
        let base_rate = pccs_soc::corun::CoRunSim::standalone_averaged(
            &top,
            gpu,
            &kernel,
            ctx.horizon(),
            ctx.repeats(),
        )
        .lines_per_cycle
        .max(f64::MIN_POSITIVE);

        let mut cells = Vec::new();
        for &budget in &budgets {
            for &y in &externals {
                cells.push(Table9Cell::Select {
                    budget,
                    external_gbps: y,
                });
            }
        }
        for &f in &fig_freqs {
            cells.push(Table9Cell::Curve { freq_mhz: f });
        }

        Ok((
            Table9Prep {
                soc,
                gpu,
                cpu,
                kernel,
                pccs,
                gables,
                freqs,
                points,
                base_rate,
            },
            cells,
        ))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        prep: &Table9Prep,
        cell: &Table9Cell,
    ) -> Result<Table9CellOut> {
        match *cell {
            Table9Cell::Select {
                budget,
                external_gbps: y,
            } => {
                let truth = ground_truth_frequency(
                    &prep.soc,
                    prep.gpu,
                    prep.cpu,
                    &prep.kernel,
                    &prep.freqs,
                    y,
                    budget,
                    ctx.horizon(),
                );
                let p = select_frequency(&prep.points, &prep.pccs, y, budget);
                let g = select_frequency(&prep.points, &prep.gables, y, budget);
                Ok(Table9CellOut::Select(SelectionCell {
                    budget,
                    external_gbps: y,
                    truth_mhz: truth.chosen_mhz,
                    pccs_mhz: p.chosen_mhz,
                    gables_mhz: g.chosen_mhz,
                }))
            }
            Table9Cell::Curve { freq_mhz } => {
                // Figure 15: measured co-run performance vs pressure at this
                // frequency, normalized to the top frequency's standalone
                // rate. The paper's observation — a memory-bound kernel's
                // curve at the top clock nearly coincides with the one at a
                // much lower clock — appears as overlapping rows here.
                let reclocked = prep
                    .soc
                    .with_pu(prep.gpu, prep.soc.pus[prep.gpu].with_frequency(freq_mhz));
                let sweep: Vec<f64> = vec![10.0, 30.0, 50.0, 70.0, 90.0];
                let mut curve = Vec::new();
                for &y in &sweep {
                    let mut sim = pccs_soc::corun::CoRunSim::new(&reclocked);
                    sim.horizon(ctx.horizon());
                    sim.repeats(ctx.repeats());
                    sim.place(pccs_soc::corun::Placement::kernel(
                        prep.gpu,
                        prep.kernel.clone(),
                    ));
                    sim.external_pressure(prep.cpu, y);
                    let out = sim.execute();
                    curve.push((y, out.per_pu[&prep.gpu].lines_per_cycle / prep.base_rate));
                }
                Ok(Table9CellOut::Curve((freq_mhz, curve)))
            }
        }
    }

    fn merge(&self, _ctx: &Context, _prep: Table9Prep, outs: Vec<Table9CellOut>) -> Result<Table9> {
        let mut cells = Vec::new();
        let mut fig15_curves = Vec::new();
        for out in outs {
            match out {
                Table9CellOut::Select(c) => cells.push(c),
                Table9CellOut::Curve(c) => fig15_curves.push(c),
            }
        }
        Ok(Table9 {
            cells,
            fig15_curves,
        })
    }
}

/// Runs the use case: streamcluster on the Xavier GPU.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Table9> {
    run_experiment(&Table9Experiment, ctx)
}

impl Table9 {
    /// Average PCCS frequency error across cells (%).
    pub fn avg_pccs_error(&self) -> f64 {
        self.cells
            .iter()
            .map(SelectionCell::pccs_error_pct)
            .sum::<f64>()
            / self.cells.len() as f64
    }

    /// Average Gables frequency error across cells (%).
    pub fn avg_gables_error(&self) -> f64 {
        self.cells
            .iter()
            .map(SelectionCell::gables_error_pct)
            .sum::<f64>()
            / self.cells.len() as f64
    }

    /// Whether Gables, blind to external pressure, selects a frequency
    /// above the ground-truth maximum in at least one cell — the outcome
    /// behind the paper's 880/880/880 pathology: a model that cannot see
    /// contention overclocks under pressure and misses the deadline.
    pub fn gables_overclocks_under_pressure(&self) -> bool {
        self.cells.iter().any(|c| c.gables_mhz > c.truth_mhz + 1e-9)
    }

    /// Renders the table.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "budget".into(),
            "external GB/s".into(),
            "truth MHz".into(),
            "PCCS MHz".into(),
            "Gables MHz".into(),
            "PCCS err %".into(),
            "Gables err %".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                format!("{:.0}%", c.budget * 100.0),
                format!("{:.0}", c.external_gbps),
                format!("{:.0}", c.truth_mhz),
                format!("{:.0}", c.pccs_mhz),
                format!("{:.0}", c.gables_mhz),
                format!("{:.1}", c.pccs_error_pct()),
                format!("{:.1}", c.gables_error_pct()),
            ]);
        }
        let mut s = format!(
            "Table 9 — GPU frequency selection (streamcluster)\n{t}\n\
             avg error: PCCS {:.1}%  Gables {:.1}%\n",
            self.avg_pccs_error(),
            self.avg_gables_error()
        );
        s.push_str("\nFigure 15 — measured co-run performance vs pressure (rel. to best)\n");
        let mut t = TextTable::new({
            let mut h = vec!["freq MHz".to_owned()];
            h.extend(
                self.fig15_curves[0]
                    .1
                    .iter()
                    .map(|&(y, _)| format!("y={y:.0}")),
            );
            h
        });
        for (f, curve) in &self.fig15_curves {
            let mut row = vec![format!("{f:.0}")];
            row.extend(curve.iter().map(|&(_, p)| format!("{p:.2}")));
            t.row(row);
        }
        s.push_str(&t.to_string());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn table9_quick_produces_six_cells() {
        let mut ctx = Context::new(Quality::Quick);
        let t = run(&mut ctx).expect("experiment runs");
        assert_eq!(t.cells.len(), 6);
        for c in &t.cells {
            assert!(c.truth_mhz > 0.0 && c.pccs_mhz > 0.0 && c.gables_mhz > 0.0);
        }
        assert_eq!(t.fig15_curves.len(), 2);
        assert!(t.format().contains("Table 9"));
        assert!(
            t.gables_overclocks_under_pressure(),
            "pressure-blind Gables should overclock past the ground-truth \
             frequency somewhere (the paper's 880/880/880 pathology)"
        );
        assert!(
            t.avg_pccs_error() < t.avg_gables_error(),
            "PCCS selection error should beat pressure-blind Gables"
        );
    }
}
