//! Table 5: linear bandwidth scaling of the PCCS parameters (Section 3.3).
//!
//! The model is constructed at the nominal memory clock, its five
//! bandwidth-typed parameters are scaled linearly to lower clocks, and each
//! scaled parameter is compared to the parameter obtained by *rebuilding*
//! the model on the underclocked memory. The paper reports average errors
//! below 3 %.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::PccsModel;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::build_model;
use serde::{Deserialize, Serialize};

/// Error of one scaled parameter at one clock ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Parameter name.
    pub parameter: String,
    /// Relative error (%) per clock ratio, aligned with
    /// [`Table5::ratios`].
    pub errors_pct: Vec<f64>,
    /// Average across ratios.
    pub avg_error_pct: f64,
}

/// The Table 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// Clock ratios evaluated (target / nominal), e.g. 0.5 for 1066 MHz.
    pub ratios: Vec<f64>,
    /// Per-parameter error rows.
    pub rows: Vec<ScalingRow>,
}

fn rel_err_pct(scaled: f64, rebuilt: f64, scale_ref: f64) -> f64 {
    // Relative to the reference magnitude so near-zero parameters (the
    // DLA's Normal BW) do not blow the metric up.
    100.0 * (scaled - rebuilt).abs() / scale_ref.abs().max(1.0)
}

/// Shared sweep state: the SoC, PU indices, and the nominal model.
#[derive(Debug)]
pub struct Table5Prep {
    soc: SocConfig,
    gpu: usize,
    cpu: usize,
    nominal: PccsModel,
    ratios: Vec<f64>,
}

/// [`Experiment`] marker for Table 5; one cell per clock ratio (each cell
/// rebuilds the model on underclocked memory — the expensive step).
#[derive(Debug, Clone, Copy)]
pub struct Table5Experiment;

impl Experiment for Table5Experiment {
    type Prep = Table5Prep;
    type Cell = f64;
    type CellOut = (PccsModel, PccsModel);
    type Output = Table5;

    fn name(&self) -> &'static str {
        "table5"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Table5Prep, Vec<f64>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let cpu = Context::require_pu(&soc, "CPU")?;
        let nominal = ctx.pccs_model(&soc, gpu);
        // Paper ratios: 1066, 1333, 1600 MHz over the nominal 2133 MHz.
        let ratios: Vec<f64> = match ctx.quality {
            crate::context::Quality::Quick => vec![0.625],
            crate::context::Quality::Full => vec![0.5, 0.625, 0.75],
        };
        Ok((
            Table5Prep {
                soc,
                gpu,
                cpu,
                nominal,
                ratios: ratios.clone(),
            },
            ratios,
        ))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        prep: &Table5Prep,
        &ratio: &f64,
    ) -> Result<(PccsModel, PccsModel)> {
        let scaled = prep.nominal.scale_bandwidth(ratio);
        let underclocked = prep.soc.with_dram(prep.soc.dram.with_clock_ratio(ratio));
        let cfg = ctx.calibration_config();
        let (rebuilt, _) = build_model(&underclocked, prep.gpu, prep.cpu, &cfg)
            .expect("underclocked construction succeeds");
        Ok((scaled, rebuilt))
    }

    fn merge(
        &self,
        _ctx: &Context,
        prep: Table5Prep,
        per_ratio: Vec<(PccsModel, PccsModel)>,
    ) -> Result<Table5> {
        type Getter = Box<dyn Fn(&PccsModel) -> f64>;
        let params: Vec<(&str, Getter)> = vec![
            ("Normal BW (GB/s)", Box::new(|m: &PccsModel| m.normal_bw)),
            (
                "Intensive BW (GB/s)",
                Box::new(|m: &PccsModel| m.intensive_bw),
            ),
            ("MRMC (%)", Box::new(|m: &PccsModel| m.mrmc.unwrap_or(0.0))),
            ("CBP (GB/s)", Box::new(|m: &PccsModel| m.cbp)),
            ("TBWDC (GB/s)", Box::new(|m: &PccsModel| m.tbwdc)),
            ("Rate^N (%/GBps)", Box::new(|m: &PccsModel| m.rate_n)),
            (
                "Rate^I (%/GBps)",
                Box::new(|m: &PccsModel| m.rate_i_representative()),
            ),
        ];

        let mut rows = Vec::new();
        for (name, get) in &params {
            let mut errors = Vec::new();
            for (scaled, rebuilt) in &per_ratio {
                let reference = get(rebuilt).abs().max(get(scaled).abs());
                errors.push(rel_err_pct(get(scaled), get(rebuilt), reference));
            }
            let avg = errors.iter().sum::<f64>() / errors.len() as f64;
            rows.push(ScalingRow {
                parameter: (*name).to_owned(),
                errors_pct: errors,
                avg_error_pct: avg,
            });
        }
        Ok(Table5 {
            ratios: prep.ratios,
            rows,
        })
    }
}

/// Runs the scaling study on the Xavier GPU model.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Table5> {
    run_experiment(&Table5Experiment, ctx)
}

impl Table5 {
    /// Average error across all parameters and ratios.
    pub fn overall_avg_error(&self) -> f64 {
        self.rows.iter().map(|r| r.avg_error_pct).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the table.
    pub fn format(&self) -> String {
        let mut header = vec!["Parameter".to_owned()];
        for r in &self.ratios {
            header.push(format!("x{r:.3}"));
        }
        header.push("avg err %".to_owned());
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![row.parameter.clone()];
            cells.extend(row.errors_pct.iter().map(|e| format!("{e:.1}")));
            cells.push(format!("{:.1}", row.avg_error_pct));
            t.row(cells);
        }
        format!(
            "Table 5 — linear parameter scaling, scaled vs rebuilt (overall avg {:.1}%)\n{t}",
            self.overall_avg_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn table5_quick_produces_all_parameters() {
        let mut ctx = Context::new(Quality::Quick);
        let t = run(&mut ctx).expect("experiment runs");
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.ratios.len(), 1);
        for row in &t.rows {
            assert!(row.avg_error_pct.is_finite());
        }
        assert!(t.format().contains("Table 5"));
    }
}
