//! Shared experiment context: SoC presets, measurement quality, and caches
//! of constructed PCCS models and standalone profiles (construction and
//! profiling are the expensive steps, and several experiments share them).
//!
//! The context is `Sync`: model and profile caches sit behind mutexes so
//! [`crate::runner::SweepRunner`] workers can share one context by
//! reference. Experiment entry points still take `&mut Context` for API
//! uniformity, but all methods below only need `&self`.

use crate::cache::{CacheStats, ProfileCache};
use crate::error::ExperimentError;
use pccs_core::{CalibrationData, PccsModel};
use pccs_dram::engine::EngineKind;
use pccs_gables::GablesModel;
use pccs_soc::corun::{CoRunConfig, CoRunSim, Placement, StandaloneProfile};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Measurement fidelity of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Short horizons, single repetition, coarse grids — for tests and
    /// smoke runs (minutes → seconds).
    Quick,
    /// The defaults used for the numbers reported in EXPERIMENTS.md.
    Full,
}

/// Shared state across experiments.
#[derive(Debug)]
pub struct Context {
    /// Fidelity preset.
    pub quality: Quality,
    /// The NVIDIA Jetson AGX Xavier model (Table 6).
    pub xavier: SocConfig,
    /// The Qualcomm Snapdragon 855 model (Table 6).
    pub snapdragon: SocConfig,
    /// Worker threads for sweep cells and calibration (0 = all cores).
    jobs: usize,
    /// Memory-engine driver for the measurement sweeps. Defaults to the
    /// event-driven fast path — bit-identical to the cycle-exact
    /// reference (asserted by the `engine-parity` suite) and much faster
    /// on light load; `--engine cycle` restores the reference.
    engine: EngineKind,
    models: Mutex<BTreeMap<(String, usize), (PccsModel, CalibrationData)>>,
    profiles: ProfileCache,
}

impl Context {
    /// Creates a context at the given fidelity, using every available core.
    pub fn new(quality: Quality) -> Self {
        Self {
            quality,
            xavier: SocConfig::xavier(),
            snapdragon: SocConfig::snapdragon855(),
            jobs: 0,
            engine: EngineKind::Event,
            models: Mutex::new(BTreeMap::new()),
            profiles: ProfileCache::new(),
        }
    }

    /// Sets the worker-thread count for sweeps and calibration; `0` means
    /// all available cores, `1` forces today's serial behaviour.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Overrides the memory-engine driver for the measurement sweeps
    /// (results are bit-identical either way).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The memory-engine driver the sweeps run on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The co-run measurement configuration at this fidelity: the single
    /// source of truth for the horizon, repeats, MC policy, and engine
    /// every sweep measurement uses (and the provenance the audit ledger
    /// records).
    pub fn corun_config(&self) -> CoRunConfig {
        CoRunConfig::default()
            .with_horizon(self.horizon())
            .with_repeats(self.repeats())
            .with_engine(self.engine)
    }

    /// The resolved worker-thread count (always ≥ 1).
    pub fn jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Simulation horizon in memory cycles.
    pub fn horizon(&self) -> u64 {
        match self.quality {
            Quality::Quick => 24_000,
            Quality::Full => 60_000,
        }
    }

    /// Differently seeded repetitions averaged per measurement.
    pub fn repeats(&self) -> u32 {
        match self.quality {
            Quality::Quick => 1,
            Quality::Full => 3,
        }
    }

    /// The calibration-sweep configuration at this fidelity.
    pub fn calibration_config(&self) -> CalibrationConfig {
        CalibrationConfig {
            horizon: self.horizon(),
            repeats: self.repeats(),
            threads: self.jobs,
            ..CalibrationConfig::default()
        }
    }

    /// The index of the PU named `name` on `soc`, as a typed error instead
    /// of a panic when the preset lacks it (e.g. asking the Snapdragon for
    /// a DLA). Every experiment resolves its PU names through this.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::MissingPu`] naming the SoC, the missing
    /// PU, and the PUs that do exist.
    pub fn require_pu(soc: &SocConfig, name: &str) -> Result<usize, ExperimentError> {
        soc.pu_index(name)
            .ok_or_else(|| ExperimentError::MissingPu {
                soc: soc.name.clone(),
                pu: name.to_owned(),
                available: soc.pus.iter().map(|pu| pu.name.clone()).collect(),
            })
    }

    /// The paper's pressure-PU convention: "For the CPU model, we create
    /// the external pressure using the GPU; for the GPU and DLA models, we
    /// create the external pressure using the CPU" (§4.1.1).
    ///
    /// # Panics
    ///
    /// Panics when the SoC lacks a CPU or GPU — every bundled preset has
    /// both.
    pub fn pressure_pu_for(soc: &SocConfig, target_pu: usize) -> usize {
        let cpu = Self::require_pu(soc, "CPU").unwrap_or_else(|e| panic!("{e}"));
        if target_pu == cpu {
            Self::require_pu(soc, "GPU").unwrap_or_else(|e| panic!("{e}"))
        } else {
            cpu
        }
    }

    /// The constructed PCCS model of PU `pu_idx` on `soc` (cached).
    ///
    /// # Panics
    ///
    /// Panics if the calibration sweep fails validation — on the bundled
    /// SoC presets it does not.
    pub fn pccs_model(&self, soc: &SocConfig, pu_idx: usize) -> PccsModel {
        self.model_and_data(soc, pu_idx).0
    }

    /// The constructed model together with its calibration matrix (cached).
    ///
    /// Construction runs outside the cache lock so two workers can build
    /// *different* models concurrently; two workers racing on the *same*
    /// cold key both build and the results are identical (deterministic
    /// sweep), so the outcome never depends on the interleaving.
    pub fn model_and_data(&self, soc: &SocConfig, pu_idx: usize) -> (PccsModel, CalibrationData) {
        let key = (soc.name.clone(), pu_idx);
        if let Some(found) = self.models.lock().expect("model cache").get(&key) {
            return found.clone();
        }
        let pressure = Self::pressure_pu_for(soc, pu_idx);
        let cfg = self.calibration_config();
        let built = build_model(soc, pu_idx, pressure, &cfg)
            .unwrap_or_else(|e| panic!("model construction failed for {}/{pu_idx}: {e}", soc.name));
        self.models
            .lock()
            .expect("model cache")
            .insert(key, built.clone());
        built
    }

    /// The Gables baseline for `soc`.
    pub fn gables(&self, soc: &SocConfig) -> GablesModel {
        GablesModel::new(soc.peak_bw_gbps())
    }

    /// Standalone profile of `kernel` on `soc`/`pu_idx` at this fidelity,
    /// memoized in the shared [`ProfileCache`].
    pub fn standalone(
        &self,
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
    ) -> StandaloneProfile {
        let cfg = self.corun_config();
        self.profiles.standalone(soc, pu_idx, kernel, &cfg)
    }

    /// Hit/miss counters of the shared standalone-profile cache.
    pub fn profile_cache_stats(&self) -> CacheStats {
        self.profiles.stats()
    }

    /// Measured (simulated) relative speed, in percent, of `kernel` on
    /// `pu_idx` under `external_gbps` of pressure from the paper's
    /// pressure PU.
    pub fn actual_rs_pct(
        &self,
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
        standalone: &StandaloneProfile,
        external_gbps: f64,
    ) -> f64 {
        let pressure_pu = Self::pressure_pu_for(soc, pu_idx);
        let mut sim = CoRunSim::with_config(soc, self.corun_config());
        sim.place(Placement::kernel(pu_idx, kernel.clone()));
        sim.external_pressure(pressure_pu, external_gbps);
        let out = sim.execute();
        out.relative_speed_pct(pu_idx, standalone)
            .expect("kernel PU is placed")
            .min(102.0)
    }

    /// The paper's external-pressure grid: 10 %…100 % of the SoC peak in
    /// 10 % steps (§4.1.1); halved resolution in quick mode.
    pub fn external_grid(&self, soc: &SocConfig) -> Vec<f64> {
        let peak = soc.peak_bw_gbps();
        let steps: Vec<usize> = match self.quality {
            Quality::Quick => vec![2, 4, 6, 8, 10],
            Quality::Full => (1..=10).collect(),
        };
        steps.into_iter().map(|i| peak * i as f64 / 10.0).collect()
    }

    /// Mean absolute error between two equally long series, in percentage
    /// points.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths differ or are empty.
    pub fn mean_abs_error(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "series lengths differ");
        assert!(!a.is_empty(), "empty series");
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_pu_convention_matches_paper() {
        let soc = SocConfig::xavier();
        let cpu = soc.pu_index("CPU").unwrap();
        let gpu = soc.pu_index("GPU").unwrap();
        let dla = soc.pu_index("DLA").unwrap();
        assert_eq!(Context::pressure_pu_for(&soc, cpu), gpu);
        assert_eq!(Context::pressure_pu_for(&soc, gpu), cpu);
        assert_eq!(Context::pressure_pu_for(&soc, dla), cpu);
    }

    #[test]
    fn quality_scales_fidelity() {
        let quick = Context::new(Quality::Quick);
        let full = Context::new(Quality::Full);
        assert!(quick.horizon() < full.horizon());
        assert!(quick.repeats() <= full.repeats());
        assert!(quick.external_grid(&quick.xavier).len() < full.external_grid(&full.xavier).len());
    }

    #[test]
    fn sweeps_default_to_the_event_engine() {
        let ctx = Context::new(Quality::Quick);
        assert_eq!(
            ctx.engine(),
            EngineKind::Event,
            "sweeps run on the event fast path by default (ROADMAP item 2)"
        );
        assert_eq!(ctx.corun_config().engine, EngineKind::Event);
        let cycle = Context::new(Quality::Quick).with_engine(EngineKind::Cycle);
        assert_eq!(cycle.corun_config().engine, EngineKind::Cycle);
    }

    #[test]
    fn jobs_resolve_to_at_least_one() {
        let ctx = Context::new(Quality::Quick);
        assert!(ctx.jobs() >= 1);
        assert_eq!(ctx.with_jobs(3).jobs(), 3);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Context>();
    }

    #[test]
    fn standalone_requests_are_memoized() {
        let ctx = Context::new(Quality::Quick);
        let gpu = ctx.xavier.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let first = ctx.standalone(&ctx.xavier, gpu, &kernel);
        let second = ctx.standalone(&ctx.xavier, gpu, &kernel);
        assert_eq!(first, second);
        let stats = ctx.profile_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn mean_abs_error_basic() {
        let e = Context::mean_abs_error(&[100.0, 90.0], &[95.0, 95.0]);
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mean_abs_error_rejects_mismatch() {
        Context::mean_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
