//! Figure 6: the three-region interference-classification chart, rendered
//! from a constructed model — one predicted curve per region.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::{PccsModel, Region};
use serde::{Deserialize, Serialize};

/// One chart curve: the region, its representative demand `x`, and the
/// `(y, RS %)` points.
pub type RegionCurve = (Region, f64, Vec<(f64, f64)>);

/// The Figure 6 result: model curves per region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// The model the chart is drawn from (constructed Xavier GPU).
    pub model: PccsModel,
    /// One curve per region.
    pub curves: Vec<RegionCurve>,
}

/// [`Experiment`] marker for Figure 6; one cell per region curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Experiment;

impl Experiment for Fig6Experiment {
    type Prep = PccsModel;
    type Cell = (Region, f64);
    type CellOut = RegionCurve;
    type Output = Fig6;

    fn name(&self) -> &'static str {
        "fig6"
    }

    fn prepare(&self, ctx: &Context) -> Result<(PccsModel, Vec<(Region, f64)>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let model = ctx.pccs_model(&soc, gpu);
        // A representative demand inside each region.
        let cells = vec![
            (Region::Minor, (model.normal_bw * 0.5).max(1.0)),
            (Region::Normal, 0.5 * (model.normal_bw + model.intensive_bw)),
            (Region::Intensive, model.intensive_bw * 1.2),
        ];
        Ok((model, cells))
    }

    fn run_cell(
        &self,
        _ctx: &Context,
        model: &PccsModel,
        &(region, x): &(Region, f64),
    ) -> Result<RegionCurve> {
        let pts = (0..=12)
            .map(|i| {
                let y = model.peak_bw * i as f64 / 12.0;
                (y, model.predict(x, y))
            })
            .collect();
        Ok((region, x, pts))
    }

    fn merge(&self, _ctx: &Context, model: PccsModel, cells: Vec<RegionCurve>) -> Result<Fig6> {
        Ok(Fig6 {
            model,
            curves: cells,
        })
    }
}

/// Builds the chart data from the constructed Xavier GPU model.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig6> {
    run_experiment(&Fig6Experiment, ctx)
}

impl Fig6 {
    /// Renders the chart as a table.
    pub fn format(&self) -> String {
        let mut header = vec!["region".to_owned(), "x GB/s".to_owned()];
        for &(y, _) in &self.curves[0].2 {
            header.push(format!("y={y:.0}"));
        }
        let mut t = TextTable::new(header);
        for (region, x, pts) in &self.curves {
            let mut row = vec![region.to_string(), format!("{x:.1}")];
            row.extend(pts.iter().map(|&(_, rs)| format!("{rs:.1}")));
            t.row(row);
        }
        format!(
            "Figure 6 — three-region model chart (constructed Xavier GPU: \
             normalBW={:.1}, intensiveBW={:.1}, MRMC={}, CBP={:.1}, TBWDC={:.1}, rateN={:.2})\n{t}",
            self.model.normal_bw,
            self.model.intensive_bw,
            self.model
                .mrmc
                .map_or("NA".to_owned(), |m| format!("{m:.1}%")),
            self.model.cbp,
            self.model.tbwdc,
            self.model.rate_n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig6_regions_order_correctly() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert_eq!(fig.curves.len(), 3);
        // At max pressure the minor curve must end above the intensive one.
        let end_rs = |i: usize| fig.curves[i].2.last().unwrap().1;
        assert!(end_rs(0) >= end_rs(2));
        assert!(fig.format().contains("three-region"));
    }
}
