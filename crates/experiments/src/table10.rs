//! Table 10: the related-work comparison, made quantitative.
//!
//! The paper's Table 10 qualitatively places memory-interference models on
//! two axes — accuracy and suitability for architecture design exploration.
//! This experiment measures both on the simulated Xavier GPU:
//!
//! * **accuracy**: mean absolute prediction error on held-out benchmark
//!   co-runs;
//! * **per-application co-run measurements**: how many co-run measurements
//!   of the *target application* each model consumed before it could
//!   predict. Models needing any (Bubble-up, the co-run lookup table, ESP)
//!   cannot be used at SoC-design time for future workloads — PCCS and
//!   Gables need none.

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_baselines::esp::CorunSample;
use pccs_baselines::{BubbleUp, CorunTable, EspRegression};
use pccs_core::{PccsModel, SlowdownModel};
use pccs_gables::GablesModel;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// One model's row in the comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRow {
    /// Model name.
    pub model: String,
    /// Mean absolute error on held-out points (percentage points).
    pub error_pct: f64,
    /// Co-run measurements of the target application consumed.
    pub app_corun_measurements: usize,
    /// Usable for pre-silicon design exploration (no per-app co-runs)?
    pub design_time_usable: bool,
}

/// The Table 10 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table10 {
    /// Benchmarks evaluated.
    pub benchmarks: Vec<String>,
    /// One row per model.
    pub rows: Vec<ModelRow>,
}

/// One benchmark's measurements: standalone demand plus training and
/// evaluation co-run points.
#[derive(Debug, Clone)]
pub struct BenchData {
    name: String,
    demand: f64,
    train: Vec<(f64, f64)>,
    eval: Vec<(f64, f64)>,
}

/// Shared sweep state: models and the train/eval pressure grids.
#[derive(Debug)]
pub struct Table10Prep {
    soc: SocConfig,
    gpu: usize,
    pccs: PccsModel,
    gables: GablesModel,
    train_pressures: Vec<f64>,
    eval_pressures: Vec<f64>,
}

/// [`Experiment`] marker for Table 10; one cell per benchmark (its
/// standalone profile plus all train/eval co-runs), with the baseline
/// fitting done in `merge` since it needs every benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct Table10Experiment;

impl Experiment for Table10Experiment {
    type Prep = Table10Prep;
    type Cell = RodiniaBenchmark;
    type CellOut = BenchData;
    type Output = Table10;

    fn name(&self) -> &'static str {
        "table10"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Table10Prep, Vec<RodiniaBenchmark>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let pccs = ctx.pccs_model(&soc, gpu);
        let gables = ctx.gables(&soc);
        let peak = soc.peak_bw_gbps();

        let benches: Vec<RodiniaBenchmark> = match ctx.quality {
            crate::context::Quality::Quick => {
                vec![RodiniaBenchmark::Streamcluster, RodiniaBenchmark::Bfs]
            }
            crate::context::Quality::Full => vec![
                RodiniaBenchmark::Hotspot,
                RodiniaBenchmark::Streamcluster,
                RodiniaBenchmark::Pathfinder,
                RodiniaBenchmark::Kmeans,
                RodiniaBenchmark::Bfs,
            ],
        };

        // Training/curve pressures use the *even* grid points; evaluation
        // uses the *odd* ones, so the empirical baselines never see the
        // exact evaluation pressures.
        let train_pressures: Vec<f64> = (1..=5).map(|i| peak * 0.18 * i as f64).collect();
        let eval_pressures: Vec<f64> = (1..=4)
            .map(|i| peak * 0.09 + peak * 0.18 * i as f64)
            .collect();

        Ok((
            Table10Prep {
                soc,
                gpu,
                pccs,
                gables,
                train_pressures,
                eval_pressures,
            },
            benches,
        ))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        prep: &Table10Prep,
        bench: &RodiniaBenchmark,
    ) -> Result<BenchData> {
        let kernel = bench.kernel(PuKind::Gpu);
        let standalone = ctx.standalone(&prep.soc, prep.gpu, &kernel);
        let measure = |ys: &[f64]| -> Vec<(f64, f64)> {
            ys.iter()
                .map(|&y| {
                    (
                        y,
                        ctx.actual_rs_pct(&prep.soc, prep.gpu, &kernel, &standalone, y),
                    )
                })
                .collect()
        };
        Ok(BenchData {
            name: bench.label().to_owned(),
            demand: standalone.bw_gbps,
            train: measure(&prep.train_pressures),
            eval: measure(&prep.eval_pressures),
        })
    }

    fn merge(&self, _ctx: &Context, prep: Table10Prep, data: Vec<BenchData>) -> Result<Table10> {
        let mut rows = Vec::new();
        let eval_points: usize = data.iter().map(|d| d.eval.len()).sum();
        let mae = |preds: &[f64]| -> f64 {
            let actual: Vec<f64> = data
                .iter()
                .flat_map(|d| d.eval.iter().map(|&(_, a)| a))
                .collect();
            preds
                .iter()
                .zip(&actual)
                .map(|(p, a)| (p - a).abs())
                .sum::<f64>()
                / eval_points as f64
        };

        // Bubble-up: one sensitivity curve per application.
        let bubble_preds: Vec<f64> = data
            .iter()
            .flat_map(|d| {
                let curve = BubbleUp::from_curve(&d.name, d.train.clone());
                d.eval
                    .iter()
                    .map(|&(y, _)| curve.relative_speed_pct(d.demand, y))
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.push(ModelRow {
            model: "Bubble-up".into(),
            error_pct: mae(&bubble_preds),
            app_corun_measurements: data.iter().map(|d| d.train.len()).sum(),
            design_time_usable: false,
        });

        // Co-run lookup table: grid over (per-app demand rows, pressures).
        let demands: Vec<f64> = {
            let mut v: Vec<f64> = data.iter().map(|d| d.demand).collect();
            v.sort_by(f64::total_cmp);
            v.dedup_by(|a, b| (*a - *b).abs() < 0.5);
            v
        };
        let grid_rs: Vec<Vec<f64>> = demands
            .iter()
            .map(|&dem| {
                let d = data
                    .iter()
                    .min_by(|a, b| (a.demand - dem).abs().total_cmp(&(b.demand - dem).abs()))
                    .expect("non-empty");
                d.train.iter().map(|&(_, rs)| rs).collect()
            })
            .collect();
        let table = CorunTable::new(demands, prep.train_pressures.clone(), grid_rs);
        let table_preds: Vec<f64> = data
            .iter()
            .flat_map(|d| {
                d.eval
                    .iter()
                    .map(|&(y, _)| table.relative_speed_pct(d.demand, y))
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.push(ModelRow {
            model: "Co-run table".into(),
            error_pct: mae(&table_preds),
            app_corun_measurements: table.measurement_count(),
            design_time_usable: false,
        });

        // ESP regression over all training samples.
        let samples: Vec<CorunSample> = data
            .iter()
            .flat_map(|d| {
                d.train.iter().map(|&(y, rs)| CorunSample {
                    demand_gbps: d.demand,
                    external_gbps: y,
                    rs_pct: rs,
                })
            })
            .collect();
        let esp = EspRegression::fit(&samples);
        let esp_preds: Vec<f64> = data
            .iter()
            .flat_map(|d| {
                d.eval
                    .iter()
                    .map(|&(y, _)| esp.relative_speed_pct(d.demand, y))
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.push(ModelRow {
            model: "ESP regression".into(),
            error_pct: mae(&esp_preds),
            app_corun_measurements: esp.measurement_count(),
            design_time_usable: false,
        });

        // Gables and PCCS: no per-app co-runs at all.
        for (name, preds) in [
            (
                "Gables",
                data.iter()
                    .flat_map(|d| {
                        d.eval
                            .iter()
                            .map(|&(y, _)| prep.gables.relative_speed_pct(d.demand, y))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<f64>>(),
            ),
            (
                "PCCS",
                data.iter()
                    .flat_map(|d| {
                        d.eval
                            .iter()
                            .map(|&(y, _)| prep.pccs.relative_speed_pct(d.demand, y))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<f64>>(),
            ),
        ] {
            rows.push(ModelRow {
                model: name.into(),
                error_pct: mae(&preds),
                app_corun_measurements: 0,
                design_time_usable: true,
            });
        }

        Ok(Table10 {
            benchmarks: data.into_iter().map(|d| d.name).collect(),
            rows,
        })
    }
}

/// Runs the comparison on the Xavier GPU.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Table10> {
    run_experiment(&Table10Experiment, ctx)
}

impl Table10 {
    /// One model's row.
    pub fn row(&self, model: &str) -> &ModelRow {
        self.rows
            .iter()
            .find(|r| r.model == model)
            .unwrap_or_else(|| panic!("no row for {model}"))
    }

    /// Renders the comparison.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "model".into(),
            "MAE %".into(),
            "per-app co-runs".into(),
            "design-time usable".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.model.clone(),
                format!("{:.1}", r.error_pct),
                r.app_corun_measurements.to_string(),
                if r.design_time_usable { "yes" } else { "no" }.into(),
            ]);
        }
        format!(
            "Table 10 — related-work comparison on {} held-out benchmarks\n{t}",
            self.benchmarks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn table10_quick_produces_five_models() {
        let mut ctx = Context::new(Quality::Quick);
        let t = run(&mut ctx).expect("experiment runs");
        assert_eq!(t.rows.len(), 5);
        // Only the design-time models report zero per-app measurements.
        assert_eq!(t.row("PCCS").app_corun_measurements, 0);
        assert_eq!(t.row("Gables").app_corun_measurements, 0);
        assert!(t.row("Bubble-up").app_corun_measurements > 0);
        // Bubble-up, with per-app curves, should be at least as accurate as
        // Gables on held-out pressures of the same applications.
        assert!(t.row("Bubble-up").error_pct <= t.row("Gables").error_pct + 2.0);
        assert!(t.format().contains("Table 10"));
    }
}
