//! Figure 13: predicting the multi-phase CFD program with (a) its average
//! bandwidth vs (b) per-phase bandwidths aggregated by standalone time
//! share. The paper's finding: averaging underestimates the slowdown
//! (19.4 % error) while the piecewise prediction tracks it (4.6 %).

use crate::context::Context;
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::{PccsModel, PhasedWorkload};
use pccs_soc::corun::StandaloneProfile;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// The Figure 13 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Per-phase standalone demands (GB/s), K1–K4.
    pub phase_demands: [f64; 4],
    /// `(external, actual RS %, averaged prediction, piecewise prediction)`.
    pub points: Vec<(f64, f64, f64, f64)>,
}

/// Shared sweep state: the phase kernels, their profiles, and both
/// prediction inputs.
#[derive(Debug)]
pub struct Fig13Prep {
    soc: SocConfig,
    gpu: usize,
    model: PccsModel,
    kernels: [KernelDesc; 4],
    standalones: Vec<StandaloneProfile>,
    weights: [f64; 4],
    demands: Vec<f64>,
    phased: PhasedWorkload,
}

/// [`Experiment`] marker for Figure 13; one cell per external-pressure
/// level (each cell simulates all four phases).
#[derive(Debug, Clone, Copy)]
pub struct Fig13Experiment;

impl Experiment for Fig13Experiment {
    type Prep = Fig13Prep;
    type Cell = f64;
    type CellOut = (f64, f64, f64, f64);
    type Output = Fig13;

    fn name(&self) -> &'static str {
        "fig13"
    }

    fn prepare(&self, ctx: &Context) -> Result<(Fig13Prep, Vec<f64>)> {
        let soc = ctx.xavier.clone();
        let gpu = Context::require_pu(&soc, "GPU")?;
        let model = ctx.pccs_model(&soc, gpu);
        let kernels = RodiniaBenchmark::cfd_phase_kernels(PuKind::Gpu);
        let weights = RodiniaBenchmark::cfd_phase_weights();
        let standalones: Vec<_> = kernels
            .iter()
            .map(|k| ctx.standalone(&soc, gpu, k))
            .collect();
        let demands: Vec<f64> = standalones.iter().map(|s| s.bw_gbps).collect();
        let phased = PhasedWorkload::new(
            "cfd",
            &demands
                .iter()
                .zip(weights)
                .map(|(&d, w)| (d, w))
                .collect::<Vec<_>>(),
        );
        let grid = ctx.external_grid(&soc);
        Ok((
            Fig13Prep {
                soc,
                gpu,
                model,
                kernels,
                standalones,
                weights,
                demands,
                phased,
            },
            grid,
        ))
    }

    fn run_cell(&self, ctx: &Context, prep: &Fig13Prep, &y: &f64) -> Result<(f64, f64, f64, f64)> {
        // Actual: per-phase measured RS aggregated by standalone time share
        // (the phases run back-to-back; total slowdown is the time-weighted
        // harmonic combination).
        let mut corun_time = 0.0;
        for ((kernel, standalone), &w) in prep
            .kernels
            .iter()
            .zip(&prep.standalones)
            .zip(prep.weights.iter())
        {
            let rs = ctx
                .actual_rs_pct(&prep.soc, prep.gpu, kernel, standalone, y)
                .max(1.0);
            corun_time += w / (rs / 100.0);
        }
        let actual = 100.0 / corun_time;
        let averaged = prep.phased.predict_average(&prep.model, y);
        let piecewise = prep.phased.predict_piecewise(&prep.model, y);
        Ok((y, actual, averaged, piecewise))
    }

    fn merge(
        &self,
        _ctx: &Context,
        prep: Fig13Prep,
        cells: Vec<(f64, f64, f64, f64)>,
    ) -> Result<Fig13> {
        Ok(Fig13 {
            phase_demands: [
                prep.demands[0],
                prep.demands[1],
                prep.demands[2],
                prep.demands[3],
            ],
            points: cells,
        })
    }
}

/// Runs CFD on the Xavier GPU: simulate each phase under pressure, combine
/// by standalone time share for the "actual", and compare both prediction
/// styles.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig13> {
    run_experiment(&Fig13Experiment, ctx)
}

impl Fig13 {
    /// Mean absolute error of the averaged prediction.
    pub fn averaged_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, avg, _)| (a - avg).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Mean absolute error of the piecewise prediction.
    pub fn piecewise_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, _, pw)| (a - pw).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Renders the comparison.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "external".into(),
            "actual".into(),
            "avg-BW pred".into(),
            "piecewise pred".into(),
        ]);
        for &(y, a, avg, pw) in &self.points {
            t.row(vec![
                format!("{y:.0}"),
                format!("{a:.1}"),
                format!("{avg:.1}"),
                format!("{pw:.1}"),
            ]);
        }
        format!(
            "Figure 13 — CFD phases K1..K4 demand {:.1}/{:.1}/{:.1}/{:.1} GB/s\n{t}\n\
             avg-BW error {:.1}%  piecewise error {:.1}%\n",
            self.phase_demands[0],
            self.phase_demands[1],
            self.phase_demands[2],
            self.phase_demands[3],
            self.averaged_error(),
            self.piecewise_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig13_runs_and_k1_demands_most() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert!(fig.phase_demands[0] > fig.phase_demands[1]);
        assert!(!fig.points.is_empty());
        assert!(fig.format().contains("Figure 13"));
    }
}
