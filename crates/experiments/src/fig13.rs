//! Figure 13: predicting the multi-phase CFD program with (a) its average
//! bandwidth vs (b) per-phase bandwidths aggregated by standalone time
//! share. The paper's finding: averaging underestimates the slowdown
//! (19.4 % error) while the piecewise prediction tracks it (4.6 %).

use crate::context::Context;
use crate::error::Result;
use crate::table::TextTable;
use pccs_core::PhasedWorkload;
use pccs_soc::pu::PuKind;
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Deserialize, Serialize};

/// The Figure 13 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Per-phase standalone demands (GB/s), K1–K4.
    pub phase_demands: [f64; 4],
    /// `(external, actual RS %, averaged prediction, piecewise prediction)`.
    pub points: Vec<(f64, f64, f64, f64)>,
}

/// Runs CFD on the Xavier GPU: simulate each phase under pressure, combine
/// by standalone time share for the "actual", and compare both prediction
/// styles.
///
/// # Errors
///
/// Fails if a requested PU is missing from the SoC preset.
pub fn run(ctx: &mut Context) -> Result<Fig13> {
    let soc = ctx.xavier.clone();
    let gpu = Context::require_pu(&soc, "GPU")?;
    let model = ctx.pccs_model(&soc, gpu);
    let kernels = RodiniaBenchmark::cfd_phase_kernels(PuKind::Gpu);
    let weights = RodiniaBenchmark::cfd_phase_weights();

    let standalones: Vec<_> = kernels
        .iter()
        .map(|k| ctx.standalone(&soc, gpu, k))
        .collect();
    let demands: Vec<f64> = standalones.iter().map(|s| s.bw_gbps).collect();
    let phased = PhasedWorkload::new(
        "cfd",
        &demands
            .iter()
            .zip(weights)
            .map(|(&d, w)| (d, w))
            .collect::<Vec<_>>(),
    );

    let grid = ctx.external_grid(&soc);
    let mut points = Vec::new();
    for &y in &grid {
        // Actual: per-phase measured RS aggregated by standalone time share
        // (the phases run back-to-back; total slowdown is the time-weighted
        // harmonic combination).
        let mut corun_time = 0.0;
        for ((kernel, standalone), &w) in kernels.iter().zip(&standalones).zip(weights.iter()) {
            let rs = ctx.actual_rs_pct(&soc, gpu, kernel, standalone, y).max(1.0);
            corun_time += w / (rs / 100.0);
        }
        let actual = 100.0 / corun_time;
        let averaged = phased.predict_average(&model, y);
        let piecewise = phased.predict_piecewise(&model, y);
        points.push((y, actual, averaged, piecewise));
    }

    Ok(Fig13 {
        phase_demands: [demands[0], demands[1], demands[2], demands[3]],
        points,
    })
}

impl Fig13 {
    /// Mean absolute error of the averaged prediction.
    pub fn averaged_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, avg, _)| (a - avg).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Mean absolute error of the piecewise prediction.
    pub fn piecewise_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, a, _, pw)| (a - pw).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Renders the comparison.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "external".into(),
            "actual".into(),
            "avg-BW pred".into(),
            "piecewise pred".into(),
        ]);
        for &(y, a, avg, pw) in &self.points {
            t.row(vec![
                format!("{y:.0}"),
                format!("{a:.1}"),
                format!("{avg:.1}"),
                format!("{pw:.1}"),
            ]);
        }
        format!(
            "Figure 13 — CFD phases K1..K4 demand {:.1}/{:.1}/{:.1}/{:.1} GB/s\n{t}\n\
             avg-BW error {:.1}%  piecewise error {:.1}%\n",
            self.phase_demands[0],
            self.phase_demands[1],
            self.phase_demands[2],
            self.phase_demands[3],
            self.averaged_error(),
            self.piecewise_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Quality;

    #[test]
    fn fig13_runs_and_k1_demands_most() {
        let mut ctx = Context::new(Quality::Quick);
        let fig = run(&mut ctx).expect("experiment runs");
        assert!(fig.phase_demands[0] > fig.phase_demands[1]);
        assert!(!fig.points.is_empty());
        assert!(fig.format().contains("Figure 13"));
    }
}
