//! `repro` — regenerates the PCCS paper's tables and figures against the
//! simulated SoC substrate.
//!
//! ```text
//! repro [--quick] [--curves] [--json <dir>]
//!       [all | fig2 fig3 fig5 fig6 table5 table7 fig8 fig9 fig10 fig11
//!        fig12 fig13 fig14 table9 table10 oblivious sched]
//! ```
//!
//! With no experiment arguments, everything runs. `--quick` trades
//! fidelity for speed (short horizons, coarse grids) and is what the test
//! suite uses; `--curves` dumps the full per-benchmark curves for the
//! validation figures; `--json <dir>` additionally writes each
//! experiment's result as `<dir>/<name>.json` — a `{manifest, result}`
//! object whose manifest records the configuration, crate version, start
//! time, and wall time — plus the phase spans as `<dir>/trace.jsonl`.

use pccs_experiments::context::{Context, Quality};
use pccs_experiments::validate::Figure;
use pccs_experiments::{
    fig13, fig14, fig2, fig3, fig5, fig6, oblivious, sched_study, table10, table5, table7, table9,
    validate,
};
use pccs_telemetry::{export, RunManifest, TraceLog};
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::time::Instant;

const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "table5",
    "table7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table9",
    "table10",
    "oblivious",
    "sched",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--curves");
    let json_dir: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_owned());
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --json dir {dir}: {e}");
            std::process::exit(2);
        }
    }
    let json_value_of = |a: &String| json_dir.as_deref() == Some(a.as_str());
    let mut selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !json_value_of(a))
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    for s in &selected {
        if !ALL.contains(&s.as_str()) {
            eprintln!("unknown experiment '{s}'; known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }

    let quality = if quick { Quality::Quick } else { Quality::Full };
    let mut ctx = Context::new(quality);
    println!(
        "# PCCS reproduction — {} fidelity (horizon {} cycles, {} repeats)\n",
        if quick { "quick" } else { "full" },
        ctx.horizon(),
        ctx.repeats()
    );
    if json_dir.is_some() {
        // Phase spans (model construction, sweeps) end up in trace.jsonl.
        TraceLog::enable();
    }
    let config_snapshot = {
        let mut c = BTreeMap::new();
        c.insert(
            "quality".to_owned(),
            Value::String(if quick { "quick" } else { "full" }.to_owned()),
        );
        c.insert(
            "horizon".to_owned(),
            Value::Number(Number::U(ctx.horizon())),
        );
        c.insert(
            "repeats".to_owned(),
            Value::Number(Number::U(u64::from(ctx.repeats()))),
        );
        Value::Object(c)
    };

    let t0 = Instant::now();
    for name in &selected {
        let t = Instant::now();
        let span_name = format!("repro.{name}");
        let _span = TraceLog::span(&span_name);
        let (report, json) = match name.as_str() {
            "fig2" => jsonify(fig2::run(&mut ctx), fig2::Fig2::format),
            "fig3" => jsonify(fig3::run(&mut ctx), fig3::Fig3::format),
            "fig5" => jsonify(Ok(fig5::run(&ctx)), fig5::Fig5::format),
            "fig6" => jsonify(fig6::run(&mut ctx), fig6::Fig6::format),
            "table5" => jsonify(table5::run(&mut ctx), table5::Table5::format),
            "table7" => jsonify(table7::run(&mut ctx), table7::Table7::format),
            "fig8" => json_validation(&mut ctx, Figure::XavierGpu, verbose),
            "fig9" => json_validation(&mut ctx, Figure::XavierCpu, verbose),
            "fig10" => json_validation(&mut ctx, Figure::SnapdragonGpu, verbose),
            "fig11" => json_validation(&mut ctx, Figure::SnapdragonCpu, verbose),
            "fig12" => json_validation(&mut ctx, Figure::XavierDla, verbose),
            "fig13" => jsonify(fig13::run(&mut ctx), fig13::Fig13::format),
            "fig14" => jsonify(fig14::run(&mut ctx), fig14::Fig14::format),
            "table9" => jsonify(table9::run(&mut ctx), table9::Table9::format),
            "table10" => jsonify(table10::run(&mut ctx), table10::Table10::format),
            "oblivious" => jsonify(oblivious::run(&mut ctx), oblivious::Oblivious::format),
            "sched" => jsonify(sched_study::run(&mut ctx), sched_study::SchedStudy::format),
            _ => unreachable!("validated above"),
        };
        println!("{report}");
        if let Some(dir) = &json_dir {
            let mut manifest =
                RunManifest::new("repro", env!("CARGO_PKG_VERSION"), &format!("repro {name}"))
                    .with_config(config_snapshot.clone());
            manifest.set_wall_secs(t.elapsed().as_secs_f64());
            let mut wrapped = BTreeMap::new();
            wrapped.insert(
                "manifest".to_owned(),
                serde_json::to_value(&manifest).expect("manifest serializes"),
            );
            wrapped.insert("result".to_owned(), json);
            let text =
                serde_json::to_string_pretty(&Value::Object(wrapped)).expect("results serialize");
            let path = format!("{dir}/{name}.json");
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        println!("[{name} took {:.1?}]\n", t.elapsed());
    }
    if let Some(dir) = &json_dir {
        let spans = TraceLog::drain();
        let path = format!("{dir}/trace.jsonl");
        if let Err(e) = std::fs::write(&path, export::jsonl_events(None, None, &spans)) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    println!("total: {:.1?}", t0.elapsed());
}

/// Formats a result and serializes it to a JSON value in one pass; a typed
/// experiment failure prints its one-line diagnosis and exits.
fn jsonify<T: serde::Serialize>(
    value: pccs_experiments::error::Result<T>,
    fmt: impl Fn(&T) -> String,
) -> (String, Value) {
    let value = value.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = fmt(&value);
    let json = serde_json::to_value(&value).expect("results serialize");
    (report, json)
}

fn json_validation(ctx: &mut Context, figure: Figure, verbose: bool) -> (String, Value) {
    let v = validate::run(ctx, figure).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = if verbose {
        format!("{}{}", v.format(), v.format_curves())
    } else {
        v.format()
    };
    let json = serde_json::to_value(&v).expect("results serialize");
    (report, json)
}
