//! `repro` — regenerates the PCCS paper's tables and figures against the
//! simulated SoC substrate.
//!
//! ```text
//! repro [--quick] [--curves] [--jobs N] [--engine <cycle|event>]
//!       [--metrics-out <dir>] [--trace-out <file>] [--audit-out <file>]
//!       [all | validate | fig2 fig3 fig5 fig6 table5 table7 fig8 fig9
//!        fig10 fig11 fig12 fig13 fig14 table9 table10 oblivious sched]
//! ```
//!
//! With no experiment arguments, everything runs. `--quick` trades
//! fidelity for speed (short horizons, coarse grids) and is what the test
//! suite uses; `--curves` dumps the full per-benchmark curves for the
//! validation figures; `validate` expands to the five validation figures
//! (fig8–fig12). `--jobs N` sets the sweep worker-thread count (default:
//! all cores; results are byte-identical for any N because every
//! simulation is seeded). `--metrics-out <dir>` (alias: `--json <dir>`)
//! additionally writes each experiment's result as `<dir>/<name>.json` — a
//! `{manifest, result}` object whose manifest records the configuration,
//! crate version, start time, and wall time — plus the phase spans as
//! `<dir>/trace.jsonl` (see DESIGN.md for the JSONL schema).
//! `--trace-out <file>` enables the hierarchical profiler and writes a
//! Chrome/Perfetto trace (open it at <https://ui.perfetto.dev>) with
//! per-worker span lanes and one counter track per `pccs` metric, sampled
//! at every experiment boundary (DESIGN.md §9).
//!
//! Sweeps run on the event-driven memory engine by default (bit-identical
//! to the cycle-exact reference by the parity suite; DESIGN.md §11);
//! `--engine cycle` restores the reference, and the manifests record
//! which one ran. `--audit-out <file>` enables the prediction-audit
//! ledger (DESIGN.md §12), writes every resolved (prediction,
//! ground-truth) pair from the validation figures as JSONL, and prints
//! the accuracy scorecard at the end of the run.

use pccs_dram::engine::EngineKind;
use pccs_experiments::context::{Context, Quality};
use pccs_experiments::validate::Figure;
use pccs_experiments::{
    fig13, fig14, fig2, fig3, fig5, fig6, oblivious, sched_study, serve_study, table10, table5,
    table7, table9, validate,
};
use pccs_telemetry::{audit, export, metrics, perfetto, Profiler, RunManifest, TraceLog};
use serde_json::{Number, Value};
use std::collections::BTreeMap;
// Wall-clock timing is reporting-only here; it never feeds simulation state.
use std::time::Instant;

const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "table5",
    "table7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table9",
    "table10",
    "oblivious",
    "sched",
    "serve",
];

/// The `validate` selector: the five per-benchmark validation figures.
const VALIDATE: &[&str] = &["fig8", "fig9", "fig10", "fig11", "fig12"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--curves");

    // Options with values; their value tokens must not be mistaken for
    // experiment names.
    let opt_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.to_owned())
    };
    // `--metrics-out` is the canonical export flag (matching `pccs corun`
    // and `pccs sched`); `--json` stays as an alias.
    let json_dir: Option<String> = opt_value("--metrics-out").or_else(|| opt_value("--json"));
    let trace_out: Option<String> = opt_value("--trace-out");
    let audit_out: Option<String> = opt_value("--audit-out");
    let engine = match opt_value("--engine").as_deref() {
        None => EngineKind::Event,
        Some(v) => match v.parse() {
            Ok(kind) => kind,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --metrics-out dir {dir}: {e}");
            std::process::exit(2);
        }
    }
    let jobs: usize = match opt_value("--jobs") {
        None => 0, // all available cores
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--jobs expects a number, got '{v}'");
                std::process::exit(2);
            }
        },
    };

    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--json"
            || a == "--metrics-out"
            || a == "--jobs"
            || a == "--trace-out"
            || a == "--audit-out"
            || a == "--engine"
        {
            i += 2; // skip the flag and its value
            continue;
        }
        if !a.starts_with("--") {
            selected.push(a.to_ascii_lowercase());
        }
        i += 1;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ALL.iter().map(|s| (*s).to_owned()).collect();
    } else if selected.iter().any(|s| s == "validate") {
        // Expand the `validate` alias in place, keeping any other names.
        selected = selected
            .iter()
            .flat_map(|s| {
                if s == "validate" {
                    VALIDATE.iter().map(|v| (*v).to_owned()).collect()
                } else {
                    vec![s.clone()]
                }
            })
            .collect();
    }
    for s in &selected {
        if !ALL.contains(&s.as_str()) {
            eprintln!(
                "unknown experiment '{s}'; known: all validate {}",
                ALL.join(" ")
            );
            std::process::exit(2);
        }
    }

    let quality = if quick { Quality::Quick } else { Quality::Full };
    let mut ctx = Context::new(quality).with_jobs(jobs).with_engine(engine);
    println!(
        "# PCCS reproduction — {} fidelity (horizon {} cycles, {} repeats, {} jobs, {} engine)\n",
        if quick { "quick" } else { "full" },
        ctx.horizon(),
        ctx.repeats(),
        ctx.jobs(),
        ctx.engine().label()
    );
    if audit_out.is_some() {
        // Every resolved (prediction, ground truth) pair from the
        // validation sweeps lands in the process-global ledger.
        audit::set_enabled(true);
        audit::drain();
    }
    if json_dir.is_some() {
        // Phase spans (model construction, sweeps) end up in trace.jsonl.
        TraceLog::enable();
    }
    if trace_out.is_some() {
        // Hierarchical spans for the Perfetto export; counter tracks are
        // sampled from the metrics registry at each experiment boundary.
        Profiler::enable();
    }
    let mut counter_samples: Vec<perfetto::CounterSample> = Vec::new();
    let config_snapshot = {
        let mut c = BTreeMap::new();
        c.insert(
            "quality".to_owned(),
            Value::String(if quick { "quick" } else { "full" }.to_owned()),
        );
        c.insert(
            "horizon".to_owned(),
            Value::Number(Number::U(ctx.horizon())),
        );
        c.insert(
            "repeats".to_owned(),
            Value::Number(Number::U(u64::from(ctx.repeats()))),
        );
        c.insert(
            "jobs".to_owned(),
            Value::Number(Number::U(ctx.jobs() as u64)),
        );
        c.insert(
            "engine".to_owned(),
            Value::String(ctx.engine().label().to_owned()),
        );
        Value::Object(c)
    };

    let t0 = Instant::now(); // pccs-lint: allow(nondeterminism)
    for name in &selected {
        let t = Instant::now(); // pccs-lint: allow(nondeterminism)
        let span_name = format!("repro.{name}");
        let _span = TraceLog::span(&span_name);
        let _prof = Profiler::scope(&span_name);
        let (report, json) = match name.as_str() {
            "fig2" => jsonify(fig2::run(&mut ctx), fig2::Fig2::format),
            "fig3" => jsonify(fig3::run(&mut ctx), fig3::Fig3::format),
            "fig5" => jsonify(fig5::run(&mut ctx), fig5::Fig5::format),
            "fig6" => jsonify(fig6::run(&mut ctx), fig6::Fig6::format),
            "table5" => jsonify(table5::run(&mut ctx), table5::Table5::format),
            "table7" => jsonify(table7::run(&mut ctx), table7::Table7::format),
            "fig8" => json_validation(&mut ctx, Figure::XavierGpu, verbose),
            "fig9" => json_validation(&mut ctx, Figure::XavierCpu, verbose),
            "fig10" => json_validation(&mut ctx, Figure::SnapdragonGpu, verbose),
            "fig11" => json_validation(&mut ctx, Figure::SnapdragonCpu, verbose),
            "fig12" => json_validation(&mut ctx, Figure::XavierDla, verbose),
            "fig13" => jsonify(fig13::run(&mut ctx), fig13::Fig13::format),
            "fig14" => jsonify(fig14::run(&mut ctx), fig14::Fig14::format),
            "table9" => jsonify(table9::run(&mut ctx), table9::Table9::format),
            "table10" => jsonify(table10::run(&mut ctx), table10::Table10::format),
            "oblivious" => jsonify(oblivious::run(&mut ctx), oblivious::Oblivious::format),
            "sched" => jsonify(sched_study::run(&mut ctx), sched_study::SchedStudy::format),
            "serve" => jsonify(serve_study::run(&mut ctx), serve_study::ServeStudy::format),
            _ => unreachable!("validated above"),
        };
        println!("{report}");
        if let Some(dir) = &json_dir {
            let mut manifest =
                RunManifest::new("repro", env!("CARGO_PKG_VERSION"), &format!("repro {name}"))
                    .with_config(config_snapshot.clone());
            manifest.set_wall_secs(t.elapsed().as_secs_f64());
            let mut wrapped = BTreeMap::new();
            wrapped.insert(
                "manifest".to_owned(),
                serde_json::to_value(&manifest).expect("manifest serializes"),
            );
            wrapped.insert("result".to_owned(), json);
            let text =
                serde_json::to_string_pretty(&Value::Object(wrapped)).expect("results serialize");
            let path = format!("{dir}/{name}.json");
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        if trace_out.is_some() {
            counter_samples.extend(perfetto::counters_from_snapshot(
                &metrics::snapshot(),
                Profiler::now_us(),
            ));
        }
        println!("[{name} took {:.1?}]\n", t.elapsed());
    }
    if let Some(dir) = &json_dir {
        let spans = TraceLog::drain();
        let path = format!("{dir}/trace.jsonl");
        if let Err(e) = std::fs::write(&path, export::jsonl_events(None, None, &spans)) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    if let Some(path) = &audit_out {
        let records = audit::drain();
        audit::set_enabled(false);
        match std::fs::write(path, audit::jsonl(&records)) {
            Ok(()) => println!("audit ledger: {} records -> {path}", records.len()),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        if records.is_empty() {
            println!("audit scorecard: no predictions were resolved (run the validation figures)");
        } else {
            println!("{}", audit::render_scorecard(&audit::scorecard(&records)));
        }
    }
    if let Some(path) = &trace_out {
        Profiler::disable();
        let spans = Profiler::drain();
        let text = perfetto::trace_json(&spans, &counter_samples);
        match std::fs::write(path, &text) {
            Ok(()) => println!(
                "trace: {} spans, {} counter samples -> {path} (open at ui.perfetto.dev)",
                spans.len(),
                counter_samples.len()
            ),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    let cache = ctx.profile_cache_stats();
    println!(
        "profile cache: {} hits / {} misses ({:.0}% hit rate)",
        cache.hits,
        cache.misses,
        cache.hit_rate_pct()
    );
    println!("total: {:.1?}", t0.elapsed());
}

/// Formats a result and serializes it to a JSON value in one pass; a typed
/// experiment failure prints its one-line diagnosis and exits.
fn jsonify<T: serde::Serialize>(
    value: pccs_experiments::error::Result<T>,
    fmt: impl Fn(&T) -> String,
) -> (String, Value) {
    let value = value.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = fmt(&value);
    let json = serde_json::to_value(&value).expect("results serialize");
    (report, json)
}

fn json_validation(ctx: &mut Context, figure: Figure, verbose: bool) -> (String, Value) {
    let v = validate::run(ctx, figure).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = if verbose {
        format!("{}{}", v.format(), v.format_curves())
    } else {
        v.format()
    };
    let json = serde_json::to_value(&v).expect("results serialize");
    (report, json)
}
