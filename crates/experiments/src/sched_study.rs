//! The scheduling study: every bundled placement policy replayed on every
//! bundled job mix, on both SoC presets.
//!
//! This is the "so what" of the slowdown model — the paper builds PCCS so
//! that a runtime can *act* on contention predictions. The study compares
//! four policies (contention-oblivious greedy, round-robin, PCCS-guided,
//! and a probing oracle) by makespan, mean achieved relative speed, and
//! deadline misses. The headline row is the `contended` mix on Xavier:
//! greedy traps the FC-heavy AlexNet on the DLA next to a CPU bandwidth
//! hog, while the PCCS policy predicts the collapse and routes it away.

use crate::context::{Context, Quality};
use crate::error::{ExperimentError, Result};
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::SlowdownModel;
use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::policy::{ObliviousGreedy, OraclePolicy, PccsPolicy, Policy, RoundRobin};
use pccs_sched::{mixes, Mix};
use pccs_soc::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// One `(SoC, mix, policy)` cell of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyRow {
    /// SoC name.
    pub soc: String,
    /// Mix name.
    pub mix: String,
    /// Policy name.
    pub policy: String,
    /// Completion time of the last job, cycles.
    pub makespan: f64,
    /// Mean achieved relative speed across jobs, percent.
    pub mean_rs_pct: f64,
    /// Jobs that finished after their deadline.
    pub deadline_misses: usize,
}

/// The scheduling-study result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedStudy {
    /// One row per `(SoC, mix, policy)`.
    pub rows: Vec<StudyRow>,
}

/// The policies under study, built fresh per mix (round-robin carries a
/// cursor). The PCCS policy reuses the context's cached per-PU models, so
/// its calibration cost is paid once per SoC.
fn policies(ctx: &Context, soc: &SocConfig) -> Vec<Box<dyn Policy>> {
    let models: Vec<Box<dyn SlowdownModel>> = (0..soc.pus.len())
        .map(|pu| Box::new(ctx.pccs_model(soc, pu)) as Box<dyn SlowdownModel>)
        .collect();
    vec![
        Box::new(RoundRobin::default()),
        Box::new(ObliviousGreedy),
        Box::new(PccsPolicy::new(models)),
        Box::new(OraclePolicy),
    ]
}

/// [`Experiment`] marker for the scheduling study; one cell per
/// (SoC, mix) pair, replaying all four policies.
#[derive(Debug, Clone, Copy)]
pub struct SchedStudyExperiment;

impl Experiment for SchedStudyExperiment {
    type Prep = SchedConfig;
    type Cell = (SocConfig, Mix);
    type CellOut = Vec<StudyRow>;
    type Output = SchedStudy;

    fn name(&self) -> &'static str {
        "sched_study"
    }

    fn prepare(&self, ctx: &Context) -> Result<(SchedConfig, Vec<(SocConfig, Mix)>)> {
        let mix_names: Vec<String> = match ctx.quality {
            Quality::Quick => vec!["contended".to_owned()],
            Quality::Full => mixes::names(),
        };
        let engine_cfg = match ctx.quality {
            Quality::Quick => SchedConfig::quick(),
            Quality::Full => SchedConfig::default(),
        };
        let mut cells = Vec::new();
        for soc in [ctx.xavier.clone(), ctx.snapdragon.clone()] {
            for name in &mix_names {
                let mix: Mix = mixes::mix(name).ok_or_else(|| ExperimentError::UnknownMix {
                    mix: name.clone(),
                    available: mixes::names(),
                })?;
                cells.push((soc.clone(), mix));
            }
        }
        Ok((engine_cfg, cells))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        engine_cfg: &SchedConfig,
        (soc, mix): &(SocConfig, Mix),
    ) -> Result<Vec<StudyRow>> {
        let mut rows = Vec::new();
        for mut policy in policies(ctx, soc) {
            let report = run_schedule(soc, &mix.name, &mix.jobs, policy.as_mut(), engine_cfg)?;
            rows.push(StudyRow {
                soc: soc.name.clone(),
                mix: mix.name.clone(),
                policy: report.policy.clone(),
                makespan: report.makespan,
                mean_rs_pct: report.mean_rs_pct(),
                deadline_misses: report.deadline_misses(),
            });
        }
        Ok(rows)
    }

    fn merge(
        &self,
        _ctx: &Context,
        _prep: SchedConfig,
        cells: Vec<Vec<StudyRow>>,
    ) -> Result<SchedStudy> {
        Ok(SchedStudy {
            rows: cells.into_iter().flatten().collect(),
        })
    }
}

/// Runs the study: quick fidelity replays the headline `contended` mix
/// only; full fidelity covers all bundled mixes.
///
/// # Errors
///
/// Fails if a requested mix is missing from the bundled set.
pub fn run(ctx: &mut Context) -> Result<SchedStudy> {
    run_experiment(&SchedStudyExperiment, ctx)
}

impl SchedStudy {
    /// One cell's makespan.
    fn makespan_of(&self, soc: &str, mix: &str, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.soc == soc && r.mix == mix && r.policy == policy)
            .map(|r| r.makespan)
    }

    /// PCCS makespan improvement over the oblivious greedy on one cell, in
    /// percent (positive = PCCS faster).
    pub fn pccs_gain_over_greedy_pct(&self, soc: &str, mix: &str) -> Option<f64> {
        let greedy = self.makespan_of(soc, mix, "greedy")?;
        let pccs = self.makespan_of(soc, mix, "pccs")?;
        Some(100.0 * (1.0 - pccs / greedy))
    }

    /// Renders the study table plus the headline gap lines.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "SoC".into(),
            "mix".into(),
            "policy".into(),
            "makespan".into(),
            "mean RS %".into(),
            "deadline misses".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.soc.clone(),
                r.mix.clone(),
                r.policy.clone(),
                format!("{:.0}", r.makespan),
                format!("{:.1}", r.mean_rs_pct),
                r.deadline_misses.to_string(),
            ]);
        }
        let mut s = format!("Scheduling study — policies x mixes x SoCs\n{t}\n");
        let mut seen: Vec<(String, String)> = Vec::new();
        for r in &self.rows {
            let key = (r.soc.clone(), r.mix.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            if let Some(gain) = self.pccs_gain_over_greedy_pct(&r.soc, &r.mix) {
                s.push_str(&format!(
                    "{} / {}: PCCS vs greedy makespan {:+.1}%\n",
                    r.soc, r.mix, gain
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_reports_the_contended_gap() {
        let mut ctx = Context::new(Quality::Quick);
        let study = run(&mut ctx).expect("experiment runs");
        // Quick mode: 1 mix x 2 SoCs x 4 policies.
        assert_eq!(study.rows.len(), 8);
        let xavier = ctx.xavier.name.clone();
        let gain = study
            .pccs_gain_over_greedy_pct(&xavier, "contended")
            .expect("headline cell present");
        assert!(
            gain > 0.0,
            "PCCS should beat greedy on the contended Xavier mix, got {gain:.1}%"
        );
        assert!(study.format().contains("Scheduling study"));
    }
}
