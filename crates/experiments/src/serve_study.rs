//! The serving study: latency-throughput curves of the online serving
//! loop, arrival rate x placement policy x SoC.
//!
//! The offline scheduling study ends when the mix drains; serving does
//! not. Under an open-loop arrival stream the machine either keeps up or
//! falls behind, so the interesting comparison is how far the offered rate
//! can climb before the deadline-miss rate breaks an SLO budget. The
//! contention-oblivious greedy traps DLA-eligible inference next to a CPU
//! bandwidth hog and starts missing early; the PCCS-guided policy predicts
//! the collapse and sustains a higher rate at the same miss budget.

use crate::context::{Context, Quality};
use crate::error::Result;
use crate::runner::{run_experiment, Experiment};
use crate::table::TextTable;
use pccs_core::SlowdownModel;
use pccs_sched::policy::{ObliviousGreedy, PccsPolicy, Policy};
use pccs_serve::request::contended_classes;
use pccs_serve::{run_serve, ArrivalProcess, ServeConfig};
use pccs_soc::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// The miss budget (percent of offered requests shed or late) used for
/// the headline "max sustainable rate" comparison.
pub const MISS_BUDGET_PCT: f64 = 20.0;

/// One `(SoC, policy, rate)` cell of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeRow {
    /// SoC name.
    pub soc: String,
    /// Placement policy name.
    pub policy: String,
    /// Offered arrival rate, requests per million cycles.
    pub rate_per_mcycle: f64,
    /// Requests offered by the arrival process.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed by admission.
    pub shed: usize,
    /// Median completion latency, cycles.
    pub p50_latency: u64,
    /// 99th-percentile completion latency, cycles.
    pub p99_latency: u64,
    /// Deadline misses plus sheds, percent of offered.
    pub miss_rate_pct: f64,
    /// Completions per million cycles of makespan.
    pub throughput_per_mcycle: f64,
}

/// The serving-study result: a latency-throughput curve per policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeStudy {
    /// One row per `(SoC, policy, rate)`.
    pub rows: Vec<ServeRow>,
}

/// [`Experiment`] marker for the serving study.
#[derive(Debug, Clone, Copy)]
pub struct ServeStudyExperiment;

/// Arrival seeds each cell averages over — distinct request streams at
/// the same rate, so one lucky draw cannot flip the curve comparison.
const SEEDS_PER_CELL: u64 = 2;

/// One cell: serve the contended classes on `soc` under `policy` at
/// `rate` arrivals per million cycles.
type ServeCell = (SocConfig, String, f64);

fn policy_for(ctx: &Context, soc: &SocConfig, name: &str) -> Box<dyn Policy> {
    match name {
        "pccs" => {
            let models: Vec<Box<dyn SlowdownModel>> = (0..soc.pus.len())
                .map(|pu| Box::new(ctx.pccs_model(soc, pu)) as Box<dyn SlowdownModel>)
                .collect();
            Box::new(PccsPolicy::new(models))
        }
        _ => Box::new(ObliviousGreedy),
    }
}

impl Experiment for ServeStudyExperiment {
    type Prep = ServeConfig;
    type Cell = ServeCell;
    type CellOut = ServeRow;
    type Output = ServeStudy;

    fn name(&self) -> &'static str {
        "serve_study"
    }

    fn prepare(&self, ctx: &Context) -> Result<(ServeConfig, Vec<ServeCell>)> {
        let (cfg, rates, socs) = match ctx.quality {
            Quality::Quick => (
                ServeConfig {
                    duration: 2_400_000,
                    ..ServeConfig::quick()
                },
                vec![3.0, 5.0, 7.0, 9.0],
                vec![ctx.xavier.clone()],
            ),
            Quality::Full => (
                ServeConfig {
                    duration: 4_000_000,
                    ..ServeConfig::default()
                },
                vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0],
                vec![ctx.xavier.clone(), ctx.snapdragon.clone()],
            ),
        };
        let mut cells = Vec::new();
        for soc in socs {
            // Warm the model cache before the sweep fans out: every cell
            // wants the same per-PU models, and parallel workers racing a
            // cold cache would each rebuild them.
            for pu in 0..soc.pus.len() {
                let _ = ctx.pccs_model(&soc, pu);
            }
            for policy in ["greedy", "pccs"] {
                for &rate in &rates {
                    cells.push((soc.clone(), policy.to_owned(), rate));
                }
            }
        }
        Ok((cfg, cells))
    }

    fn run_cell(
        &self,
        ctx: &Context,
        base: &ServeConfig,
        (soc, policy_name, rate): &ServeCell,
    ) -> Result<ServeRow> {
        let classes = contended_classes();
        let mut row = ServeRow {
            soc: soc.name.clone(),
            policy: policy_name.clone(),
            rate_per_mcycle: *rate,
            offered: 0,
            completed: 0,
            shed: 0,
            p50_latency: 0,
            p99_latency: 0,
            miss_rate_pct: 0.0,
            throughput_per_mcycle: 0.0,
        };
        let mut missed = 0usize;
        for seed in 0..SEEDS_PER_CELL {
            let cfg = ServeConfig {
                arrivals: ArrivalProcess::Poisson {
                    rate_per_mcycle: *rate,
                },
                seed: base.seed + seed,
                ..base.clone()
            };
            let mut policy = policy_for(ctx, soc, policy_name);
            // Both policies get the same contention-aware admission
            // models, so the curve isolates placement quality.
            let models: Vec<Box<dyn SlowdownModel>> = (0..soc.pus.len())
                .map(|pu| Box::new(ctx.pccs_model(soc, pu)) as Box<dyn SlowdownModel>)
                .collect();
            let report = run_serve(soc, &classes, policy.as_mut(), models, &cfg)?;
            row.offered += report.offered;
            row.completed += report.completed;
            row.shed += report.shed;
            missed += report.missed;
            row.p50_latency = row.p50_latency.max(report.p50_latency);
            row.p99_latency = row.p99_latency.max(report.p99_latency);
            row.throughput_per_mcycle += report.throughput_per_mcycle / SEEDS_PER_CELL as f64;
        }
        row.miss_rate_pct = pccs_serve::slo::miss_rate_pct(row.offered, missed, row.shed);
        Ok(row)
    }

    fn merge(
        &self,
        _ctx: &Context,
        _prep: ServeConfig,
        cells: Vec<ServeRow>,
    ) -> Result<ServeStudy> {
        Ok(ServeStudy { rows: cells })
    }
}

/// Runs the study: quick fidelity sweeps four rates on Xavier; full
/// fidelity sweeps eight rates on both SoC presets.
///
/// # Errors
///
/// Fails if a serving run rejects its configuration (it does not for the
/// bundled classes and presets).
pub fn run(ctx: &mut Context) -> Result<ServeStudy> {
    run_experiment(&ServeStudyExperiment, ctx)
}

impl ServeStudy {
    /// The highest swept arrival rate at which `policy` on `soc` keeps the
    /// miss rate within `budget_pct`, or `None` if even the lowest rate
    /// breaks it.
    pub fn max_rate_within(&self, soc: &str, policy: &str, budget_pct: f64) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.soc == soc && r.policy == policy && r.miss_rate_pct <= budget_pct)
            .map(|r| r.rate_per_mcycle)
            .fold(None, |best, r| Some(best.map_or(r, |b: f64| b.max(r))))
    }

    /// Renders the study table plus the headline sustainable-rate lines.
    pub fn format(&self) -> String {
        let mut t = TextTable::new(vec![
            "SoC".into(),
            "policy".into(),
            "rate/Mcyc".into(),
            "offered".into(),
            "completed".into(),
            "shed".into(),
            "p50".into(),
            "p99".into(),
            "miss %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.soc.clone(),
                r.policy.clone(),
                format!("{:.0}", r.rate_per_mcycle),
                r.offered.to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                r.p50_latency.to_string(),
                r.p99_latency.to_string(),
                format!("{:.1}", r.miss_rate_pct),
            ]);
        }
        let mut s = format!("Serving study — latency-throughput curves\n{t}\n");
        let mut socs: Vec<String> = self.rows.iter().map(|r| r.soc.clone()).collect();
        socs.dedup();
        for soc in socs {
            let fmt = |p: &str| {
                self.max_rate_within(&soc, p, MISS_BUDGET_PCT)
                    .map_or("none".to_owned(), |r| format!("{r:.0}/Mcycle"))
            };
            s.push_str(&format!(
                "{soc}: max rate within {MISS_BUDGET_PCT:.0}% miss budget — greedy {}, pccs {}\n",
                fmt("greedy"),
                fmt("pccs")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pccs_sustains_a_higher_rate_than_greedy_on_contended_xavier() {
        let mut ctx = Context::new(Quality::Quick);
        let study = run(&mut ctx).expect("experiment runs");
        // Quick mode: 1 SoC x 2 policies x 4 rates.
        assert_eq!(study.rows.len(), 8);
        let xavier = ctx.xavier.name.clone();
        let greedy = study
            .max_rate_within(&xavier, "greedy", MISS_BUDGET_PCT)
            .unwrap_or(0.0);
        let pccs = study
            .max_rate_within(&xavier, "pccs", MISS_BUDGET_PCT)
            .expect("pccs sustains at least the lowest rate");
        assert!(
            pccs > greedy,
            "PCCS should sustain a higher arrival rate than greedy at a \
             {MISS_BUDGET_PCT:.0}% miss budget, got pccs {pccs} vs greedy {greedy}"
        );
        assert!(study.format().contains("Serving study"));
    }
}
