//! Cross-experiment memoization of standalone profiles.
//!
//! Several reproduction artifacts profile the *same* kernel standalone on
//! the *same* PU at the *same* fidelity — `validate` and `table5` both walk
//! the Table-2 benchmark suite, `fig13` and `table9` both re-profile the
//! mix members, and so on. Each standalone profile is a full co-run
//! simulation, so re-deriving them dominates `repro all` wall-clock.
//! [`ProfileCache`] memoizes [`StandaloneProfile`] results behind a mutex so
//! concurrent sweep workers (see [`crate::runner`]) share one pool.
//!
//! # Keying
//!
//! The cache key is the **full serialized** `SocConfig` and `KernelDesc`
//! plus the measurement configuration — not the SoC *name*. Experiments
//! such as `table5` and the DSE sweeps re-clock a preset via
//! `SocConfig::with_pu`/`with_frequency` without renaming it, so a
//! name-based key would silently alias physically different machines.
//! Serialized-exact keys cost a few hundred bytes per entry and make
//! collisions impossible.

use pccs_soc::corun::{CoRunConfig, CoRunSim, StandaloneProfile};
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Exact cache key: serialized machine + kernel + measurement config.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ProfileKey {
    /// `serde_json` serialization of the full [`SocConfig`].
    soc: String,
    pu_idx: usize,
    /// `serde_json` serialization of the [`KernelDesc`].
    kernel: String,
    /// `serde_json` serialization of the [`CoRunConfig`] (horizon, warmup,
    /// repeats, policy).
    config: String,
}

impl ProfileKey {
    fn new(soc: &SocConfig, pu_idx: usize, kernel: &KernelDesc, config: &CoRunConfig) -> Self {
        Self {
            soc: serde_json::to_string(soc).expect("SocConfig serializes"),
            pu_idx,
            kernel: serde_json::to_string(kernel).expect("KernelDesc serializes"),
            config: serde_json::to_string(config).expect("CoRunConfig serializes"),
        }
    }
}

/// Hit/miss counters of a [`ProfileCache`], for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in percent; 0 when the cache was never queried.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo table for standalone profiles.
///
/// Lookups are exact (see the module docs on keying) and the underlying
/// simulation is deterministic, so a hit is bit-identical to a re-run. Two
/// workers racing on the same cold key may both simulate — the second
/// insert overwrites with an identical value, so results never depend on
/// the interleaving; only the miss counter can over-count under contention.
#[derive(Debug, Default)]
pub struct ProfileCache {
    entries: Mutex<BTreeMap<ProfileKey, StandaloneProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standalone profile of `kernel` on `soc`/`pu_idx` under `config`,
    /// simulated on first request and memoized after.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker.
    pub fn standalone(
        &self,
        soc: &SocConfig,
        pu_idx: usize,
        kernel: &KernelDesc,
        config: &CoRunConfig,
    ) -> StandaloneProfile {
        let key = ProfileKey::new(soc, pu_idx, kernel, config);
        if let Some(found) = self.entries.lock().expect("profile cache").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *found;
        }
        // Simulate outside the lock so distinct cold keys fill in parallel.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let profile = CoRunSim::standalone_with(soc, pu_idx, kernel, config);
        self.entries
            .lock()
            .expect("profile cache")
            .insert(key, profile);
        profile
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct memoized profiles.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking worker.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("profile cache").len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_requests_hit() {
        let cache = ProfileCache::new();
        let soc = SocConfig::xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let cfg = CoRunConfig::default().with_horizon(20_000);

        let first = cache.standalone(&soc, gpu, &kernel, &cfg);
        let second = cache.standalone(&soc, gpu, &kernel, &cfg);
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reclocked_soc_is_a_distinct_key() {
        let cache = ProfileCache::new();
        let soc = SocConfig::xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);
        let cfg = CoRunConfig::default().with_horizon(20_000);

        cache.standalone(&soc, gpu, &kernel, &cfg);
        // Re-clock the GPU without renaming the SoC: must be a fresh miss,
        // not a poisoned hit on the nominal profile. Derate far enough that
        // the slowed GPU is demand-bound (a mild derate still saturates the
        // memory ceiling and would yield an identical profile).
        let slow = soc.with_pu(
            gpu,
            soc.pus[gpu].with_frequency(soc.pus[gpu].freq_mhz * 0.1),
        );
        let slowed = cache.standalone(&slow, gpu, &kernel, &cfg);
        assert_eq!(cache.stats().misses, 2);
        assert_ne!(slowed, cache.standalone(&soc, gpu, &kernel, &cfg));
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let cache = ProfileCache::new();
        let soc = SocConfig::xavier();
        let gpu = soc.pu_index("GPU").unwrap();
        let kernel = KernelDesc::memory_streaming("stream", 0.5);

        cache.standalone(
            &soc,
            gpu,
            &kernel,
            &CoRunConfig::default().with_horizon(20_000),
        );
        cache.standalone(
            &soc,
            gpu,
            &kernel,
            &CoRunConfig::default().with_horizon(24_000),
        );
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn cache_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ProfileCache>();
    }
}
