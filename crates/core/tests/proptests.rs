//! Property-based tests of the PCCS model invariants.

use pccs_core::{CalibrationData, ModelBuilder, PccsModel, PhasedWorkload, Region, SlowdownModel};
use proptest::prelude::*;

/// Generates a structurally valid model: ordered boundaries, positive peak.
fn arb_model() -> impl Strategy<Value = PccsModel> {
    (
        0.0f64..60.0,                   // normal_bw
        0.0f64..80.0,                   // intensive gap above normal
        prop::option::of(0.0f64..15.0), // mrmc
        1.0f64..90.0,                   // cbp
        0.0f64..140.0,                  // tbwdc
        0.0f64..3.0,                    // rate_n
        100.0f64..200.0,                // peak
    )
        .prop_map(|(nb, gap, mrmc, cbp, tbwdc, rate_n, peak)| {
            PccsModel::from_parameters(nb, nb + gap, mrmc, cbp, tbwdc, rate_n, peak)
        })
}

proptest! {
    #[test]
    fn prediction_is_bounded(model in arb_model(), x in 0.0f64..200.0, y in 0.0f64..200.0) {
        let rs = model.predict(x, y);
        prop_assert!((0.0..=100.0).contains(&rs));
    }

    #[test]
    fn prediction_monotone_non_increasing_in_pressure(
        model in arb_model(),
        x in 0.0f64..150.0,
        y in 0.0f64..180.0,
        dy in 0.0f64..40.0,
    ) {
        let a = model.predict(x, y);
        let b = model.predict(x, y + dy);
        prop_assert!(b <= a + 1e-9, "rs increased with pressure: {a} -> {b}");
    }

    #[test]
    fn zero_pressure_means_full_speed(model in arb_model(), x in 0.0f64..150.0) {
        // With no external traffic there is no contention: minor-region
        // kernels, intensive-region kernels (whose drop is scaled by `y`),
        // and normal-region kernels that fit under TBWDC all run at full
        // speed. (A normal-region kernel with `x > TBWDC` is the one case
        // Equation 3 lets drop at zero pressure.)
        let rs = model.predict(x, 0.0);
        if model.region(x) != Region::Normal || x <= model.tbwdc {
            prop_assert!(rs >= 99.0 - 1e-9, "rs at zero pressure: {rs}");
        }
    }

    #[test]
    fn region_classification_is_total_and_ordered(
        model in arb_model(),
        x1 in 0.0f64..200.0,
        x2 in 0.0f64..200.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let rl = model.region(lo);
        let rh = model.region(hi);
        let rank = |r: Region| match r {
            Region::Minor => 0,
            Region::Normal => 1,
            Region::Intensive => 2,
        };
        prop_assert!(rank(rl) <= rank(rh), "regions must be ordered by demand");
    }

    #[test]
    fn scaling_round_trips(model in arb_model(), ratio in 0.1f64..4.0) {
        let back = model.scale_bandwidth(ratio).scale_bandwidth(1.0 / ratio);
        prop_assert!((back.normal_bw - model.normal_bw).abs() < 1e-6);
        prop_assert!((back.intensive_bw - model.intensive_bw).abs() < 1e-6);
        prop_assert!((back.cbp - model.cbp).abs() < 1e-6);
        prop_assert!((back.tbwdc - model.tbwdc).abs() < 1e-6);
        prop_assert!((back.rate_n - model.rate_n).abs() < 1e-6);
        prop_assert!((back.peak_bw - model.peak_bw).abs() < 1e-6);
    }

    #[test]
    fn scaling_preserves_predictions_at_scaled_points(
        model in arb_model(),
        ratio in 0.2f64..3.0,
        x in 0.0f64..150.0,
        y in 0.0f64..150.0,
    ) {
        let scaled = model.scale_bandwidth(ratio);
        let a = model.predict(x, y);
        let b = scaled.predict(x * ratio, y * ratio);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn slowdown_is_reciprocal(model in arb_model(), x in 0.0f64..150.0, y in 0.0f64..150.0) {
        let rs = model.relative_speed_pct(x, y);
        let sd = model.slowdown(x, y);
        if rs > 0.0 {
            prop_assert!((sd - 100.0 / rs).abs() < 1e-9);
        } else {
            prop_assert!(sd.is_infinite());
        }
    }

    #[test]
    fn phased_piecewise_is_bounded_by_extreme_phases(
        model in arb_model(),
        d1 in 1.0f64..150.0,
        d2 in 1.0f64..150.0,
        w in 0.05f64..0.95,
        y in 0.0f64..150.0,
    ) {
        let phased = PhasedWorkload::new("p", &[(d1, w), (d2, 1.0 - w)]);
        let rs = phased.predict_piecewise(&model, y);
        let r1 = model.predict(d1, y).max(1e-6);
        let r2 = model.predict(d2, y).max(1e-6);
        let lo = r1.min(r2);
        let hi = r1.max(r2);
        prop_assert!(rs >= lo - 1e-6 && rs <= hi + 1e-6, "{rs} outside [{lo}, {hi}]");
    }

    #[test]
    fn builder_accepts_any_monotone_decreasing_matrix(
        seed in 0u64..1000,
        rows in 3usize..8,
        cols in 3usize..8,
    ) {
        // Synthesize plausible monotone data and check the builder always
        // produces a structurally valid model.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let std_bw: Vec<f64> = (1..=rows).map(|i| i as f64 * 12.0).collect();
        let ext_bw: Vec<f64> = (1..=cols).map(|j| j as f64 * 15.0).collect();
        let rela: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                let mut v = 100.0 - 3.0 * i as f64 * next();
                (0..cols)
                    .map(|_| {
                        v -= 6.0 * next();
                        v.clamp(5.0, 100.0)
                    })
                    .collect()
            })
            .collect();
        let data = CalibrationData::new(std_bw, ext_bw, rela, 140.0).unwrap();
        let model = ModelBuilder::new(data).build().unwrap();
        prop_assert!(model.normal_bw <= model.intensive_bw);
        prop_assert!(model.cbp > 0.0);
        prop_assert!(model.rate_n >= 0.0);
        let rs = model.predict(30.0, 50.0);
        prop_assert!((0.0..=100.0).contains(&rs));
    }
}
