//! The three-region slowdown model (Equations 2–5 of the paper) and its
//! linear bandwidth scaling (Section 3.3).

use crate::region::Region;
use crate::traits::SlowdownModel;
use serde::{Deserialize, Serialize};

/// A constructed PCCS model for one processing unit on one SoC.
///
/// All bandwidth-typed parameters are in GB/s; `mrmc` is a percentage;
/// `rate_n` is % of relative speed lost per GB/s of excess total demand.
///
/// Construct via [`ModelBuilder`](crate::builder::ModelBuilder) from
/// calibration measurements, or directly with [`PccsModel::from_parameters`]
/// when parameters are known (e.g. the paper's Table 7 values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PccsModel {
    /// Boundary between the minor and normal contention regions (GB/s).
    pub normal_bw: f64,
    /// Boundary between the normal and intensive contention regions (GB/s).
    pub intensive_bw: f64,
    /// Maximum reduction of minor contention, in percent, observed at the
    /// largest external pressure. `None` when the PU has no minor region
    /// (the paper reports "NA" for the DLA).
    pub mrmc: Option<f64>,
    /// Contention balance point: the external demand (GB/s) beyond which
    /// the speed curve flattens.
    pub cbp: f64,
    /// Total bandwidth demand with contention: the total (own + external)
    /// demand (GB/s) at which the dropping phase begins.
    pub tbwdc: f64,
    /// Reduction rate in the normal region, % per GB/s.
    pub rate_n: f64,
    /// Peak bandwidth of the SoC (GB/s).
    pub peak_bw: f64,
}

impl PccsModel {
    /// Assembles a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth parameter is negative, the region boundaries
    /// are unordered, `rate_n` is negative, or `peak_bw`/`cbp` are not
    /// positive.
    pub fn from_parameters(
        normal_bw: f64,
        intensive_bw: f64,
        mrmc: Option<f64>,
        cbp: f64,
        tbwdc: f64,
        rate_n: f64,
        peak_bw: f64,
    ) -> Self {
        assert!(
            normal_bw >= 0.0 && intensive_bw >= normal_bw,
            "region boundaries unordered"
        );
        assert!(cbp > 0.0, "contention balance point must be positive");
        assert!(tbwdc >= 0.0, "TBWDC must be non-negative");
        assert!(rate_n >= 0.0, "reduction rate must be non-negative");
        assert!(peak_bw > 0.0, "peak bandwidth must be positive");
        if let Some(m) = mrmc {
            assert!((0.0..=100.0).contains(&m), "MRMC is a percentage");
        }
        Self {
            normal_bw,
            intensive_bw,
            mrmc,
            cbp,
            tbwdc,
            rate_n,
            peak_bw,
        }
    }

    /// The Xavier GPU model of Table 7 (rate_n back-derived from the
    /// reported Rate^I at the intensive boundary).
    pub fn xavier_gpu_paper() -> Self {
        Self::from_parameters(38.1, 96.2, Some(4.9), 45.3, 87.2, 0.83, 137.0)
    }

    /// The Xavier CPU model of Table 7.
    pub fn xavier_cpu_paper() -> Self {
        Self::from_parameters(37.6, 65.7, Some(3.7), 46.6, 82.8, 0.92, 137.0)
    }

    /// The Xavier DLA model of Table 7 (no minor region).
    pub fn xavier_dla_paper() -> Self {
        Self::from_parameters(0.0, 27.9, None, 71.1, 22.1, 0.32, 137.0)
    }

    /// Classifies a standalone demand into its contention region
    /// (Equation 1).
    pub fn region(&self, x: f64) -> Region {
        Region::classify(x, self.normal_bw, self.intensive_bw)
    }

    /// The MRMC percentage used in formulas (0 when the PU has none).
    fn mrmc_pct(&self) -> f64 {
        self.mrmc.unwrap_or(0.0)
    }

    /// Equation 2: achieved relative speed in the minor region. The
    /// reduction grows with the external pressure `y` and reaches `MRMC` at
    /// the SoC's peak bandwidth. (The paper's printed equation writes the
    /// traffic variable as `x`; MRMC's definition — "the maximum slowdown …
    /// at the largest external memory pressure" — fixes the intended
    /// variable as the external demand.)
    fn rs_minor(&self, y: f64) -> f64 {
        100.0 - self.mrmc_pct() * y.min(self.peak_bw) / self.peak_bw
    }

    /// Equation 3: the normal region. Flat (minor-like) while
    /// `x + y ≤ TBWDC`, then dropping at `rate_n` per GB/s of excess total
    /// demand, then flat once `y ≥ CBP`.
    fn rs_normal(&self, x: f64, y: f64) -> f64 {
        let base = self.rs_minor(y);
        let eff_y = y.min(self.cbp);
        let excess = x + eff_y - self.tbwdc;
        if excess <= 0.0 {
            base
        } else {
            // `min` keeps the piecewise form continuous where the linear
            // segment crosses the minor baseline.
            base.min(100.0 - excess * self.rate_n)
        }
    }

    /// Equation 4: the intensive-region reduction rate for a kernel with
    /// standalone demand `x`: the normal-region curve extended to `y = CBP`
    /// and divided by `CBP`, so the drop starts at `y = 0`.
    pub fn rate_i(&self, x: f64) -> f64 {
        (self.rate_n * (x + self.cbp - self.tbwdc) / self.cbp).max(0.0)
    }

    /// The representative intensive rate reported in Table 7: [`Self::rate_i`]
    /// evaluated at the intensive-region boundary.
    pub fn rate_i_representative(&self) -> f64 {
        self.rate_i(self.intensive_bw)
    }

    /// Equation 5: the intensive region — linear drop at
    /// [`Self::rate_i`] until `CBP`, flat afterwards.
    fn rs_intensive(&self, x: f64, y: f64) -> f64 {
        let eff_y = y.min(self.cbp);
        100.0 - eff_y * self.rate_i(x)
    }

    /// Predicts the achieved relative speed (percent of standalone speed)
    /// of a kernel whose standalone bandwidth demand is `x` GB/s under
    /// `y` GB/s of total external demand.
    ///
    /// The result is clamped to `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is negative or not finite.
    pub fn predict(&self, x: f64, y: f64) -> f64 {
        assert!(
            x.is_finite() && x >= 0.0,
            "demand must be finite and non-negative"
        );
        assert!(
            y.is_finite() && y >= 0.0,
            "external demand must be finite and non-negative"
        );
        let rs = match self.region(x) {
            Region::Minor => self.rs_minor(y),
            Region::Normal => self.rs_normal(x, y),
            Region::Intensive => self.rs_intensive(x, y),
        };
        rs.clamp(0.0, 100.0)
    }

    /// Linear bandwidth scaling (Section 3.3): returns the model adapted to
    /// a memory subsystem whose peak bandwidth is `ratio ×` the calibrated
    /// one (frequency and/or channel-count changes). The five
    /// bandwidth-typed parameters scale linearly; `rate_n` scales inversely
    /// so percentage drops are preserved at corresponding operating points;
    /// `MRMC` is a percentage and does not scale (Table 5).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive and finite.
    pub fn scale_bandwidth(&self, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio.is_finite(),
            "scaling ratio must be positive and finite"
        );
        Self {
            normal_bw: self.normal_bw * ratio,
            intensive_bw: self.intensive_bw * ratio,
            mrmc: self.mrmc,
            cbp: self.cbp * ratio,
            tbwdc: self.tbwdc * ratio,
            rate_n: self.rate_n / ratio,
            peak_bw: self.peak_bw * ratio,
        }
    }
}

impl SlowdownModel for PccsModel {
    fn name(&self) -> &'static str {
        "PCCS"
    }

    fn relative_speed_pct(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        self.predict(demand_gbps, external_gbps)
    }

    fn region_label(&self, demand_gbps: f64) -> &'static str {
        match self.region(demand_gbps) {
            Region::Minor => "minor",
            Region::Normal => "normal",
            Region::Intensive => "intensive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> PccsModel {
        PccsModel::xavier_gpu_paper()
    }

    #[test]
    fn no_pressure_means_no_slowdown() {
        let m = gpu();
        for x in [5.0, 50.0, 120.0] {
            let rs = m.predict(x, 0.0);
            assert!((99.0..=100.0).contains(&rs) || m.region(x) == Region::Intensive);
        }
        // Even intensive kernels start at 100 with zero pressure.
        assert!((m.predict(120.0, 0.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn minor_region_loses_at_most_mrmc() {
        let m = gpu();
        let rs = m.predict(10.0, m.peak_bw);
        assert!((rs - (100.0 - 4.9)).abs() < 1e-9);
        // Beyond peak pressure the loss saturates.
        assert_eq!(m.predict(10.0, 500.0), rs);
    }

    #[test]
    fn normal_region_has_three_stages() {
        let m = gpu();
        let x = 60.0; // normal region
                      // Stage 1: flat while x + y <= TBWDC (y <= 27.2).
        let flat = m.predict(x, 10.0);
        assert!(flat > 99.0);
        // Stage 2: dropping.
        let mid = m.predict(x, 40.0);
        assert!(mid < flat - 5.0, "mid={mid}");
        // Stage 3: flat past CBP.
        let at_cbp = m.predict(x, m.cbp);
        let beyond = m.predict(x, m.cbp + 30.0);
        assert!((at_cbp - beyond).abs() < m.mrmc.unwrap() + 1e-9);
    }

    #[test]
    fn normal_region_is_continuous_at_tbwdc_crossing() {
        let m = gpu();
        let x = 60.0;
        let y_star = m.tbwdc - x; // crossing point
        let before = m.predict(x, y_star - 1e-6);
        let after = m.predict(x, y_star + 1e-6);
        assert!(
            (before - after).abs() < 1e-3,
            "jump at TBWDC: {before} vs {after}"
        );
    }

    #[test]
    fn intensive_region_drops_immediately() {
        let m = gpu();
        let x = 120.0;
        let rs = m.predict(x, 5.0);
        assert!(
            rs < 100.0 - 4.0,
            "intensive kernel should drop fast, rs={rs}"
        );
    }

    #[test]
    fn intensive_flattens_after_cbp() {
        let m = gpu();
        let x = 120.0;
        assert!((m.predict(x, m.cbp) - m.predict(x, m.cbp + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn rate_i_exceeds_rate_n_for_intensive_kernels() {
        let m = gpu();
        assert!(m.rate_i(m.intensive_bw) > m.rate_n);
    }

    #[test]
    fn prediction_monotone_in_pressure() {
        let m = gpu();
        for x in [10.0, 45.0, 60.0, 90.0, 110.0, 130.0] {
            let mut prev = f64::INFINITY;
            for step in 0..28 {
                let y = step as f64 * 5.0;
                let rs = m.predict(x, y);
                assert!(rs <= prev + 1e-9, "x={x} y={y}: {rs} > {prev}");
                prev = rs;
            }
        }
    }

    #[test]
    fn dla_model_has_no_minor_region() {
        let m = PccsModel::xavier_dla_paper();
        assert_eq!(m.mrmc, None);
        assert_eq!(m.region(0.1), Region::Normal);
        // Small demand, small pressure: already slowing (paper §4.1.2).
        assert!(m.predict(25.0, 30.0) < 95.0);
    }

    #[test]
    fn scaling_round_trips() {
        let m = gpu();
        let back = m.scale_bandwidth(0.5).scale_bandwidth(2.0);
        assert!((back.normal_bw - m.normal_bw).abs() < 1e-9);
        assert!((back.rate_n - m.rate_n).abs() < 1e-9);
        assert!((back.peak_bw - m.peak_bw).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_predictions_at_corresponding_points() {
        let m = gpu();
        let half = m.scale_bandwidth(0.5);
        for (x, y) in [(60.0, 40.0), (100.0, 20.0), (20.0, 80.0)] {
            let a = m.predict(x, y);
            let b = half.predict(x / 2.0, y / 2.0);
            assert!((a - b).abs() < 1e-9, "x={x} y={y}: {a} vs {b}");
        }
    }

    #[test]
    fn clamps_to_zero_floor() {
        let m = PccsModel::from_parameters(1.0, 2.0, Some(5.0), 10.0, 0.0, 50.0, 100.0);
        assert_eq!(m.predict(150.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_input() {
        gpu().predict(f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "unordered")]
    fn rejects_unordered_boundaries() {
        PccsModel::from_parameters(50.0, 20.0, None, 10.0, 10.0, 1.0, 100.0);
    }
}
