//! The common interface of co-run slowdown models.

/// A model that predicts the achieved relative speed of a kernel under
/// external memory pressure.
///
/// Implemented by [`PccsModel`](crate::PccsModel) and by the Gables baseline
/// in the `pccs-gables` crate; design-space exploration is generic over this
/// trait so the two models can be compared head-to-head (Section 4.3).
pub trait SlowdownModel {
    /// Short model name for reports ("PCCS", "Gables").
    fn name(&self) -> &'static str;

    /// Predicts the achieved relative speed, in percent of the standalone
    /// speed, of a kernel whose standalone bandwidth demand is
    /// `demand_gbps` when other PUs demand `external_gbps` in total.
    ///
    /// Implementations must return values in `[0, 100]`.
    fn relative_speed_pct(&self, demand_gbps: f64, external_gbps: f64) -> f64;

    /// The three-region contention label ("minor" / "normal" /
    /// "intensive") of a standalone demand under this model's view, used
    /// as audit-ledger provenance. Models without a region structure
    /// (Gables, constant baselines) report `"-"`.
    fn region_label(&self, _demand_gbps: f64) -> &'static str {
        "-"
    }

    /// The predicted slowdown factor (standalone time ÷ co-run time is
    /// `relative speed`; slowdown is its reciprocal). Returns `f64::INFINITY`
    /// when the predicted relative speed is zero.
    fn slowdown(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        let rs = self.relative_speed_pct(demand_gbps, external_gbps);
        if rs <= 0.0 {
            f64::INFINITY
        } else {
            100.0 / rs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Constant(f64);

    impl SlowdownModel for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn relative_speed_pct(&self, _: f64, _: f64) -> f64 {
            self.0
        }
    }

    #[test]
    fn slowdown_is_reciprocal_of_relative_speed() {
        let m = Constant(50.0);
        assert!((m.slowdown(1.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_speed_gives_infinite_slowdown() {
        let m = Constant(0.0);
        assert!(m.slowdown(1.0, 1.0).is_infinite());
    }

    #[test]
    fn trait_objects_work() {
        let models: Vec<Box<dyn SlowdownModel>> = vec![Box::new(Constant(100.0))];
        assert_eq!(models[0].name(), "constant");
    }
}
