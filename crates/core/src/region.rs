//! Contention-region classification (Equation 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three contention regions of the PCCS model (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Low bandwidth demand: external pressure has minimal effect.
    Minor,
    /// Medium demand: flat → linear drop → flat behaviour.
    Normal,
    /// High demand: the drop starts immediately and is steeper.
    Intensive,
}

impl Region {
    /// Classifies a standalone bandwidth demand `x` (GB/s) given the two
    /// region boundaries (Equation 1). Boundary values classify downward
    /// (`x == normal_bw` is Minor), matching the paper's `≤` conventions.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or the boundaries are not ordered
    /// `0 ≤ normal_bw ≤ intensive_bw`.
    pub fn classify(x: f64, normal_bw: f64, intensive_bw: f64) -> Region {
        assert!(x >= 0.0, "bandwidth demand must be non-negative");
        assert!(
            (0.0..=intensive_bw).contains(&normal_bw),
            "boundaries must satisfy 0 <= normal_bw <= intensive_bw"
        );
        if x <= normal_bw {
            Region::Minor
        } else if x <= intensive_bw {
            Region::Normal
        } else {
            Region::Intensive
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Minor => f.write_str("minor"),
            Region::Normal => f.write_str("normal"),
            Region::Intensive => f.write_str("intensive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_regions() {
        assert_eq!(Region::classify(10.0, 38.0, 96.0), Region::Minor);
        assert_eq!(Region::classify(38.0, 38.0, 96.0), Region::Minor);
        assert_eq!(Region::classify(38.1, 38.0, 96.0), Region::Normal);
        assert_eq!(Region::classify(96.0, 38.0, 96.0), Region::Normal);
        assert_eq!(Region::classify(96.1, 38.0, 96.0), Region::Intensive);
    }

    #[test]
    fn zero_normal_bw_skips_minor_region() {
        // The DLA has no minor contention region (Table 7: Normal BW = 0).
        assert_eq!(Region::classify(0.0, 0.0, 27.9), Region::Minor);
        assert_eq!(Region::classify(0.1, 0.0, 27.9), Region::Normal);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        Region::classify(-1.0, 10.0, 20.0);
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn unordered_boundaries_panic() {
        Region::classify(1.0, 30.0, 20.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Region::Minor.to_string(), "minor");
        assert_eq!(Region::Intensive.to_string(), "intensive");
    }
}
