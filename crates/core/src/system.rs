//! System-level co-run prediction: several kernels resident on distinct
//! PUs, each predicted by its own PU's slowdown model.
//!
//! The paper's scheduling use case (Section 1, "a scheduler can use the
//! model to decide which processor runs which kernel") needs exactly this
//! aggregation: for a candidate placement, the external pressure seen by
//! PU `i` is the sum of the *other* residents' standalone bandwidth
//! demands, and the quantity a scheduler compares across placements is the
//! total predicted slowdown.

use crate::traits::SlowdownModel;

/// Predicts the relative speed of each of `demands` co-resident kernels,
/// where entry `i` runs on the PU modelled by `models[i]` and experiences
/// the summed demand of all other entries as external pressure.
///
/// Returns one relative-speed percentage per entry.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn predict_corun(models: &[&dyn SlowdownModel], demands: &[f64]) -> Vec<f64> {
    assert_eq!(
        models.len(),
        demands.len(),
        "one model per resident kernel required"
    );
    let total: f64 = demands.iter().sum();
    models
        .iter()
        .zip(demands)
        .map(|(m, &d)| m.relative_speed_pct(d, (total - d).max(0.0)))
        .collect()
}

/// The total predicted slowdown of a co-run placement: `Σ 100 / RSᵢ`.
/// Lower is better; an uncontended system scores exactly the number of
/// resident kernels. This is the objective the PCCS-guided scheduler
/// minimizes across candidate placements.
pub fn total_slowdown(models: &[&dyn SlowdownModel], demands: &[f64]) -> f64 {
    predict_corun(models, demands)
        .into_iter()
        .map(|rs| if rs <= 0.0 { f64::INFINITY } else { 100.0 / rs })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PccsModel;

    fn models() -> (PccsModel, PccsModel, PccsModel) {
        (
            PccsModel::xavier_cpu_paper(),
            PccsModel::xavier_gpu_paper(),
            PccsModel::xavier_dla_paper(),
        )
    }

    #[test]
    fn uncontended_system_has_no_slowdown() {
        let (cpu, gpu, _) = models();
        let rs = predict_corun(&[&cpu, &gpu], &[10.0, 0.0]);
        assert!(rs[0] > 99.0);
        let total = total_slowdown(&[&cpu, &gpu], &[5.0, 0.0]);
        assert!((total - 2.0).abs() < 0.05, "got {total}");
    }

    #[test]
    fn each_entry_sees_the_others_as_pressure() {
        let (cpu, gpu, dla) = models();
        let rs = predict_corun(&[&cpu, &gpu, &dla], &[50.0, 70.0, 25.0]);
        // Direct check against the per-model predictions.
        assert!((rs[0] - cpu.predict(50.0, 95.0)).abs() < 1e-9);
        assert!((rs[1] - gpu.predict(70.0, 75.0)).abs() < 1e-9);
        assert!((rs[2] - dla.predict(25.0, 120.0)).abs() < 1e-9);
    }

    #[test]
    fn heavier_coruns_score_worse() {
        let (cpu, gpu, _) = models();
        let light = total_slowdown(&[&cpu, &gpu], &[20.0, 20.0]);
        let heavy = total_slowdown(&[&cpu, &gpu], &[70.0, 90.0]);
        assert!(heavy > light);
    }

    #[test]
    #[should_panic(expected = "one model per resident")]
    fn mismatched_lengths_panic() {
        let (cpu, _, _) = models();
        predict_corun(&[&cpu], &[1.0, 2.0]);
    }
}
