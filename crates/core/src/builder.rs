//! Model construction from calibration measurements (Section 3.2).
//!
//! The processor-centric construction runs calibrator kernels of increasing
//! standalone bandwidth demand on the target PU while other PUs generate
//! increasing external demand, filling a matrix `rela[i][j]` — the achieved
//! relative speed (percent) of the `i`-th smallest kernel under the `j`-th
//! smallest external demand. [`ModelBuilder`] then extracts the model
//! parameters following the paper's five steps:
//!
//! 1. the normal-region boundary and MRMC from the last column,
//! 2. TBWDC from where the boundary row starts dropping,
//! 3. the intensive-region boundary from the first column,
//! 4. CBP from where the normal rows flatten,
//! 5. `rate_n` from the dropping phase of the normal rows.
//!
//! Steps 2, 4 and 5 are realized as a joint piecewise-linear fit
//! (flat → linear drop → flat) per normal-region row, which is exactly the
//! curve shape the paper's prose detects with thresholds but with sub-grid
//! precision and robustness to simulation noise; each row contributes a
//! breakpoint pair and a slope, and the averages across rows give TBWDC,
//! CBP and `rate_n` — precisely the quantities the prose steps compute.

use crate::error::ModelBuildError;
use crate::model::PccsModel;
use serde::{Deserialize, Serialize};

/// The calibration sweep of one PU: standalone demands × external demands →
/// achieved relative speed (percent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationData {
    /// Standalone bandwidth demand of each calibrator, ascending (GB/s).
    pub std_bw: Vec<f64>,
    /// External demand levels, ascending (GB/s).
    pub ext_bw: Vec<f64>,
    /// `rela[i][j]`: achieved relative speed (%) of calibrator `i` under
    /// external demand `j`.
    pub rela: Vec<Vec<f64>>,
    /// Peak bandwidth of the SoC (GB/s).
    pub peak_bw: f64,
}

impl CalibrationData {
    /// Validates and wraps a calibration sweep.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelBuildError`] when the matrix is too small or ragged,
    /// an axis is not strictly increasing, a sample is outside `(0, 105]`
    /// (5 % measurement headroom above 100), or the peak bandwidth is not
    /// positive.
    pub fn new(
        std_bw: Vec<f64>,
        ext_bw: Vec<f64>,
        rela: Vec<Vec<f64>>,
        peak_bw: f64,
    ) -> Result<Self, ModelBuildError> {
        let rows = std_bw.len();
        let cols = ext_bw.len();
        if rows < 2 || cols < 2 || rela.len() != rows {
            return Err(ModelBuildError::TooFewSamples {
                rows: rela.len().min(rows),
                cols,
            });
        }
        for (i, row) in rela.iter().enumerate() {
            if row.len() != cols {
                return Err(ModelBuildError::RaggedMatrix {
                    row: i,
                    len: row.len(),
                    expected: cols,
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() || v <= 0.0 || v > 105.0 {
                    return Err(ModelBuildError::InvalidRelativeSpeed {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        if std_bw.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ModelBuildError::NonMonotonicAxis { axis: "standalone" });
        }
        if ext_bw.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ModelBuildError::NonMonotonicAxis { axis: "external" });
        }
        if peak_bw <= 0.0 || !peak_bw.is_finite() {
            return Err(ModelBuildError::InvalidPeakBandwidth { value: peak_bw });
        }
        Ok(Self {
            std_bw,
            ext_bw,
            rela,
            peak_bw,
        })
    }

    /// Number of calibrator rows.
    pub fn rows(&self) -> usize {
        self.std_bw.len()
    }

    /// Number of external-pressure columns.
    pub fn cols(&self) -> usize {
        self.ext_bw.len()
    }

    fn reduction(&self, i: usize, j: usize) -> f64 {
        (100.0 - self.rela[i][j]).max(0.0)
    }

    /// The worst reduction calibrator `i` suffers anywhere in the sweep.
    /// Classification uses this rather than the last column alone: on
    /// substrates where fairness control lets a victim *recover* at extreme
    /// pressure, the last column can hide a mid-range collapse.
    fn max_reduction(&self, i: usize) -> f64 {
        (0..self.cols())
            .map(|j| self.reduction(i, j))
            .fold(0.0, f64::max)
    }
}

/// The result of fitting one row to flat → linear drop → flat.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RowFit {
    /// External demand where the drop begins.
    y_start: f64,
    /// External demand where the curve flattens (the row's balance point).
    y_end: f64,
    /// Positive slope of the dropping segment, % per GB/s.
    slope: f64,
    /// Number of samples inside the linear segment (fit confidence weight).
    support: usize,
}

/// Extracts a [`PccsModel`] from a [`CalibrationData`] sweep.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    data: CalibrationData,
    /// Absolute noise floor (percent) under which a reduction is never
    /// considered "notable", guarding the paper's 2× rules against
    /// near-zero baselines.
    pub noise_floor_pct: f64,
    /// Fallback "notable reduction" threshold (percent) when the PU has no
    /// minor region and therefore no MRMC to double.
    pub fallback_notable_pct: f64,
}

impl ModelBuilder {
    /// Creates a builder with the default thresholds.
    pub fn new(data: CalibrationData) -> Self {
        Self {
            data,
            noise_floor_pct: 3.0,
            fallback_notable_pct: 5.0,
        }
    }

    /// Runs the extraction and returns the model.
    ///
    /// # Errors
    ///
    /// Currently infallible once the data validated, but returns `Result`
    /// so stricter future extractions can fail without breaking callers.
    pub fn build(&self) -> Result<PccsModel, ModelBuildError> {
        let d = &self.data;
        let n = d.rows();
        let m = d.cols();
        let last = m - 1;
        let mut span = pccs_telemetry::TraceLog::span("builder.build");
        span.counter("rows", n as f64);
        span.counter("cols", m as f64);

        // Step 1 — normal-region boundary and MRMC: the first row whose
        // worst-case reduction is notable relative to row 0's starts the
        // normal region; the previous row's worst reduction is MRMC. (The
        // paper's prose reads the last column; we take each row's maximum,
        // which coincides on monotone silicon curves and stays correct when
        // fairness control lets victims recover at extreme pressure.) A
        // row 0 that already drops at the *smallest* pressure — or whose
        // worst loss is far beyond a "minimal effect" — signals a PU
        // without a minor region (the paper's DLA: Normal BW = 0,
        // MRMC = NA).
        let base_red = d.max_reduction(0);
        let step1_threshold = (2.0 * base_red).max(self.noise_floor_pct);
        let no_minor_region = d.reduction(0, 0) > self.fallback_notable_pct
            || base_red > 3.0 * self.fallback_notable_pct;
        let k_boundary = if no_minor_region {
            Some(0)
        } else {
            (0..n).find(|&i| d.max_reduction(i) > step1_threshold)
        };

        let (normal_bw, mrmc, k_norm) = match k_boundary {
            Some(0) => (0.0, None, 0),
            Some(k) => {
                // Midpoint between the last minor row and the first normal
                // row; using the normal row's own demand (as the prose says)
                // would classify that row back into the minor region under
                // Equation 1's `<=`.
                let boundary = 0.5 * (d.std_bw[k - 1] + d.std_bw[k]);
                (boundary, Some(d.max_reduction(k - 1)), k)
            }
            None => {
                // No row ever shows notable reduction: the whole sweep is
                // minor-region; degenerate but valid model.
                let mrmc = d.max_reduction(n - 1);
                let nb = d.std_bw[n - 1];
                return Ok(PccsModel::from_parameters(
                    nb,
                    nb * 1.001 + 1.0,
                    Some(mrmc.clamp(0.0, 100.0)),
                    d.ext_bw[last].max(1.0),
                    d.std_bw[n - 1] + d.ext_bw[last],
                    0.0,
                    d.peak_bw,
                ));
            }
        };

        let notable = match mrmc {
            Some(mv) => (2.0 * mv).max(self.noise_floor_pct),
            None => self.fallback_notable_pct,
        };

        // Step 3 — intensive-region boundary from the first column: the
        // first row already showing a notable reduction at the smallest
        // pressure is intensive.
        let k_intensive = (k_norm..n).find(|&i| d.reduction(i, 0) > notable);
        let intensive_bw = match k_intensive {
            Some(i) if i > 0 => 0.5 * (d.std_bw[i - 1] + d.std_bw[i]),
            Some(_) => d.std_bw[0] * 0.5,
            None => d.std_bw[n - 1] * 1.05,
        }
        .max(normal_bw);
        let k_int = k_intensive.unwrap_or(n);

        // Steps 2, 4, 5 — piecewise fit of every normal-region row.
        let mut fits: Vec<(f64, RowFit)> = Vec::new(); // (std_bw, fit)
        {
            let mut fit_span = pccs_telemetry::TraceLog::span("builder.fit_rows");
            for i in k_norm..k_int.max(k_norm + 1).min(n) {
                if let Some(fit) = self.fit_row(i) {
                    fits.push((d.std_bw[i], fit));
                }
            }
            fit_span.counter("fitted_rows", fits.len() as f64);
        }

        let (tbwdc, cbp, rate_n) = if fits.is_empty() {
            // Normal rows never dropped within the sweep: the drop must
            // start just beyond it.
            (
                d.std_bw[k_int.min(n - 1)] + d.ext_bw[last],
                d.ext_bw[last],
                0.0,
            )
        } else {
            let wsum: f64 = fits.iter().map(|(_, f)| f.support as f64).sum();
            let tbwdc = fits
                .iter()
                .map(|(x, f)| (x + f.y_start) * f.support as f64)
                .sum::<f64>()
                / wsum;
            let cbp = fits
                .iter()
                .map(|(_, f)| f.y_end * f.support as f64)
                .sum::<f64>()
                / wsum;
            let rate_n = fits
                .iter()
                .map(|(_, f)| f.slope * f.support as f64)
                .sum::<f64>()
                / wsum;
            (tbwdc, cbp, rate_n)
        };

        Ok(PccsModel::from_parameters(
            normal_bw,
            intensive_bw,
            mrmc,
            cbp.max(f64::MIN_POSITIVE),
            tbwdc.max(0.0),
            rate_n.max(0.0),
            d.peak_bw,
        ))
    }

    /// Fits row `i` to flat → linear drop → flat over the external-demand
    /// axis, with *continuous* breakpoints: for candidate breakpoints
    /// `(y1, y2)` the two plateau levels have a closed-form least-squares
    /// solution, so a coarse-to-fine grid search over the breakpoints
    /// recovers the curve with sub-grid precision. Returns `None` when the
    /// row never drops by more than the noise floor.
    fn fit_row(&self, i: usize) -> Option<RowFit> {
        let d = &self.data;
        let m = d.cols();
        let ys = &d.ext_bw;
        let rs: &[f64] = &d.rela[i];

        let min_rs = rs.iter().cloned().fold(f64::MAX, f64::min);
        if rs[0] - min_rs < self.noise_floor_pct {
            return None;
        }

        let span = ys[m - 1] - ys[0];
        let lo = ys[0] - span / m as f64; // the drop may begin before the sweep
        let hi = ys[m - 1] + span / m as f64;

        // Coarse pass, then a refinement pass around the best breakpoints.
        let coarse = Self::search_breakpoints(ys, rs, lo, hi, lo, hi, 40);
        let (mut y1, mut y2, _) = coarse?;
        let step = (hi - lo) / 40.0;
        if let Some((ry1, ry2, _)) =
            Self::search_breakpoints(ys, rs, y1 - step, y1 + step, y2 - step, y2 + step, 24)
        {
            y1 = ry1;
            y2 = ry2;
        }

        let (l1, l2) = Self::plateau_levels(ys, rs, y1, y2)?;
        if l1 - l2 < self.noise_floor_pct * 0.5 {
            return None;
        }
        let slope = (l1 - l2) / (y2 - y1);
        let support = ys.iter().filter(|&&y| y > y1 && y < y2).count() + 2;
        Some(RowFit {
            y_start: y1,
            y_end: y2,
            slope,
            support,
        })
    }

    /// Grid-searches breakpoints `(y1, y2)` within the given windows,
    /// returning the pair (and SSE) minimizing the three-segment residual.
    ///
    /// When no sample falls strictly between `y1` and `y2`, the SSE is
    /// independent of the gap width and the slope is unconstrained by the
    /// data; among (near-)tied fits the *widest* gap — the gentlest slope —
    /// is preferred, so an unresolved cliff between two adjacent samples is
    /// modelled as a drop spanning that whole interval rather than an
    /// arbitrarily steep spike.
    fn search_breakpoints(
        ys: &[f64],
        rs: &[f64],
        lo1: f64,
        hi1: f64,
        lo2: f64,
        hi2: f64,
        steps: usize,
    ) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        let mut best_gap = 0.0f64;
        for a in 0..=steps {
            let y1 = lo1 + (hi1 - lo1) * a as f64 / steps as f64;
            for b in 0..=steps {
                let y2 = lo2 + (hi2 - lo2) * b as f64 / steps as f64;
                if y2 <= y1 + 1e-9 {
                    continue;
                }
                let Some((l1, l2)) = Self::plateau_levels(ys, rs, y1, y2) else {
                    continue;
                };
                if l2 >= l1 {
                    continue; // must be a drop
                }
                let sse: f64 = ys
                    .iter()
                    .zip(rs)
                    .map(|(&y, &r)| {
                        let pred = piecewise(y, y1, y2, l1, l2);
                        (r - pred).powi(2)
                    })
                    .sum();
                let gap = y2 - y1;
                let improved = match best {
                    None => true,
                    Some((.., s)) => {
                        let tol = s * 1e-3 + 1e-9;
                        sse + tol < s || (sse <= s + tol && gap > best_gap)
                    }
                };
                if improved {
                    best = Some((y1, y2, sse));
                    best_gap = gap;
                }
            }
        }
        best
    }

    /// Closed-form least-squares plateau levels for fixed breakpoints: the
    /// curve is linear in `(L1, L2)` through the basis
    /// `φ1(y) = clamp((y2 − y)/(y2 − y1), 0, 1)`, `φ2 = 1 − φ1`.
    fn plateau_levels(ys: &[f64], rs: &[f64], y1: f64, y2: f64) -> Option<(f64, f64)> {
        let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (&y, &r) in ys.iter().zip(rs) {
            let p1 = phi1(y, y1, y2);
            let p2 = 1.0 - p1;
            a11 += p1 * p1;
            a12 += p1 * p2;
            a22 += p2 * p2;
            b1 += r * p1;
            b2 += r * p2;
        }
        let det = a11 * a22 - a12 * a12;
        if det.abs() < 1e-12 {
            return None;
        }
        let l1 = (b1 * a22 - b2 * a12) / det;
        let l2 = (a11 * b2 - a12 * b1) / det;
        Some((l1, l2))
    }
}

fn phi1(y: f64, y1: f64, y2: f64) -> f64 {
    ((y2 - y) / (y2 - y1)).clamp(0.0, 1.0)
}

fn piecewise(y: f64, y1: f64, y2: f64, l1: f64, l2: f64) -> f64 {
    l1 * phi1(y, y1, y2) + l2 * (1.0 - phi1(y, y1, y2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    /// Generates a synthetic calibration sweep from a ground-truth model —
    /// construction should then recover parameters close to it.
    fn synthetic_sweep(model: &PccsModel) -> CalibrationData {
        let std_bw: Vec<f64> = (1..=10).map(|i| i as f64 * 12.0).collect();
        let ext_bw: Vec<f64> = (1..=10).map(|j| j as f64 * 13.0).collect();
        let rela = std_bw
            .iter()
            .map(|&x| {
                ext_bw
                    .iter()
                    .map(|&y| model.predict(x, y).max(1.0))
                    .collect()
            })
            .collect();
        CalibrationData::new(std_bw, ext_bw, rela, model.peak_bw).unwrap()
    }

    #[test]
    fn recovers_parameters_from_synthetic_model() {
        let truth = PccsModel::xavier_gpu_paper();
        let data = synthetic_sweep(&truth);
        let built = ModelBuilder::new(data).build().unwrap();

        assert!(
            (built.normal_bw - truth.normal_bw).abs() < 18.0,
            "normal_bw {} vs {}",
            built.normal_bw,
            truth.normal_bw
        );
        assert!(
            (built.intensive_bw - truth.intensive_bw).abs() < 15.0,
            "intensive_bw {} vs {}",
            built.intensive_bw,
            truth.intensive_bw
        );
        assert!(
            (built.rate_n - truth.rate_n).abs() < 0.25,
            "rate_n {} vs {}",
            built.rate_n,
            truth.rate_n
        );
        assert!(
            (built.cbp - truth.cbp).abs() < 15.0,
            "cbp {} vs {}",
            built.cbp,
            truth.cbp
        );
        assert!(
            (built.tbwdc - truth.tbwdc).abs() < 12.0,
            "tbwdc {} vs {}",
            built.tbwdc,
            truth.tbwdc
        );
    }

    #[test]
    fn built_model_predicts_close_to_truth() {
        let truth = PccsModel::xavier_cpu_paper();
        let data = synthetic_sweep(&truth);
        let built = ModelBuilder::new(data).build().unwrap();
        let mut worst: f64 = 0.0;
        for x in [20.0, 50.0, 60.0, 100.0] {
            for y in [10.0, 40.0, 70.0, 110.0] {
                let err = (built.predict(x, y) - truth.predict(x, y)).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst < 12.0, "worst self-reconstruction error {worst:.1}%");
    }

    #[test]
    fn flat_sweep_yields_all_minor_model() {
        let std_bw = vec![10.0, 20.0, 30.0];
        let ext_bw = vec![25.0, 50.0, 75.0];
        let rela = vec![vec![99.0; 3]; 3];
        let data = CalibrationData::new(std_bw, ext_bw, rela, 100.0).unwrap();
        let model = ModelBuilder::new(data).build().unwrap();
        assert_eq!(model.region(25.0), Region::Minor);
        assert!(model.predict(25.0, 70.0) > 95.0);
    }

    #[test]
    fn dla_like_sweep_has_no_minor_region() {
        // Every row shows large reduction even at the smallest pressure.
        let std_bw = vec![10.0, 20.0, 30.0];
        let ext_bw = vec![25.0, 50.0, 75.0];
        let rela = vec![
            vec![80.0, 65.0, 60.0],
            vec![75.0, 60.0, 55.0],
            vec![70.0, 55.0, 50.0],
        ];
        let data = CalibrationData::new(std_bw, ext_bw, rela, 100.0).unwrap();
        let model = ModelBuilder::new(data).build().unwrap();
        assert_eq!(model.normal_bw, 0.0);
        assert_eq!(model.mrmc, None);
    }

    #[test]
    fn validation_rejects_ragged_matrix() {
        let err = CalibrationData::new(
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![vec![90.0, 80.0], vec![90.0]],
            100.0,
        )
        .unwrap_err();
        assert!(matches!(err, ModelBuildError::RaggedMatrix { row: 1, .. }));
    }

    #[test]
    fn validation_rejects_non_monotonic_axis() {
        let err = CalibrationData::new(
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![vec![90.0, 80.0], vec![90.0, 80.0]],
            100.0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ModelBuildError::NonMonotonicAxis { axis: "standalone" }
        );
    }

    #[test]
    fn validation_rejects_out_of_range_speed() {
        let err = CalibrationData::new(
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![vec![90.0, 120.0], vec![90.0, 80.0]],
            100.0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ModelBuildError::InvalidRelativeSpeed { row: 0, col: 1, .. }
        ));
    }

    #[test]
    fn validation_rejects_tiny_matrix() {
        let err = CalibrationData::new(vec![1.0], vec![1.0], vec![vec![90.0]], 100.0).unwrap_err();
        assert!(matches!(err, ModelBuildError::TooFewSamples { .. }));
    }

    #[test]
    fn validation_rejects_bad_peak() {
        let err = CalibrationData::new(
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![vec![90.0, 80.0], vec![90.0, 80.0]],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, ModelBuildError::InvalidPeakBandwidth { .. }));
    }

    #[test]
    fn noisy_sweep_still_builds_a_sane_model() {
        // Add deterministic pseudo-noise to the synthetic sweep and check
        // the built model still predicts within a loose envelope.
        let truth = PccsModel::xavier_gpu_paper();
        let mut data = synthetic_sweep(&truth);
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for row in &mut data.rela {
            for v in row.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = ((state % 2000) as f64 / 1000.0 - 1.0) * 1.5; // ±1.5 %
                *v = (*v + noise).clamp(1.0, 100.0);
            }
        }
        let built = ModelBuilder::new(data).build().unwrap();
        let mut worst: f64 = 0.0;
        for x in [20.0, 60.0, 110.0] {
            for y in [20.0, 60.0, 100.0] {
                worst = worst.max((built.predict(x, y) - truth.predict(x, y)).abs());
            }
        }
        assert!(worst < 18.0, "worst error under noise {worst:.1}%");
    }
}
