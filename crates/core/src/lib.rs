//! PCCS: the processor-centric contention-aware slowdown model (the primary
//! contribution of the MICRO'21 paper, Section 3).
//!
//! The crate is pure math — it consumes only plain calibration data and
//! produces slowdown predictions — so it can be paired with any substrate:
//! the simulated SoCs of `pccs-soc`, real hardware profiles, or
//! hand-written tables.
//!
//! # The three-region model
//!
//! A kernel's standalone bandwidth demand `x` places it in one of three
//! contention regions (Equation 1):
//!
//! * **Minor** (`x ≤ normal_bw`) — external pressure barely matters
//!   (Equation 2),
//! * **Normal** (`normal_bw < x ≤ intensive_bw`) — flat, then a linear drop
//!   once total demand crosses `TBWDC`, then flat again past the contention
//!   balance point `CBP` (Equation 3),
//! * **Intensive** (`x > intensive_bw`) — the drop starts immediately with a
//!   steeper rate (Equations 4–5).
//!
//! # Example
//!
//! ```
//! use pccs_core::{PccsModel, SlowdownModel};
//!
//! // Xavier GPU parameters (Table 7 of the paper).
//! let model = PccsModel::xavier_gpu_paper();
//! // streamcluster demands ~60 GB/s; predict under 50 GB/s external load.
//! let rs = model.relative_speed_pct(60.0, 50.0);
//! assert!(rs > 0.0 && rs <= 100.0);
//! ```

/// Model construction from calibration measurements (Section 3.2).
pub mod builder;
/// Error types for model construction.
pub mod error;
/// The three-region slowdown model (Equations 2–5 of the paper) and its.
pub mod model;
/// Multi-phase program handling (Section 3.2, "Handling multi-phase.
pub mod phased;
/// Contention-region classification (Equation 1 of the paper).
pub mod region;
/// System-level co-run prediction: several kernels resident on distinct.
pub mod system;
/// The common interface of co-run slowdown models.
pub mod traits;

pub use builder::{CalibrationData, ModelBuilder};
pub use error::ModelBuildError;
pub use model::PccsModel;
pub use phased::PhasedWorkload;
pub use region::Region;
pub use system::{predict_corun, total_slowdown};
pub use traits::SlowdownModel;
