//! Multi-phase program handling (Section 3.2, "Handling multi-phase
//! programs", and the CFD study of Figure 13).
//!
//! A program with phases of differing bandwidth demand is predicted per
//! phase; the total slowdown aggregates the per-phase predictions weighted
//! by each phase's share of standalone execution time: a phase with
//! standalone time fraction `w` and relative speed `rs` contributes `w/rs`
//! to the (normalized) co-run time, so the overall relative speed is
//! `1 / Σ (wᵢ / rsᵢ)`.

use crate::traits::SlowdownModel;
use serde::{Deserialize, Serialize};

/// A program expressed as phases of (bandwidth demand, standalone time
/// fraction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// Display name.
    pub name: String,
    phases: Vec<Phase>,
}

/// One phase of a [`PhasedWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Standalone bandwidth demand of the phase (GB/s).
    pub demand_gbps: f64,
    /// Fraction of standalone execution time spent in the phase.
    pub weight: f64,
}

impl PhasedWorkload {
    /// Creates a phased workload from `(demand_gbps, weight)` pairs; the
    /// weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if no phases are given, any demand or weight is negative, or
    /// all weights are zero.
    pub fn new(name: impl Into<String>, phases: &[(f64, f64)]) -> Self {
        assert!(!phases.is_empty(), "at least one phase required");
        let total: f64 = phases.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights must not all be zero");
        let phases = phases
            .iter()
            .map(|&(demand_gbps, weight)| {
                assert!(demand_gbps >= 0.0, "demand must be non-negative");
                assert!(weight >= 0.0, "weights must be non-negative");
                Phase {
                    demand_gbps,
                    weight: weight / total,
                }
            })
            .collect();
        Self {
            name: name.into(),
            phases,
        }
    }

    /// The normalized phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The time-weighted average bandwidth demand — what a phase-oblivious
    /// prediction would feed the model (Figure 13a).
    pub fn average_demand_gbps(&self) -> f64 {
        self.phases.iter().map(|p| p.demand_gbps * p.weight).sum()
    }

    /// Phase-aware prediction (Figure 13b): predicts each phase separately
    /// and aggregates by standalone time share.
    pub fn predict_piecewise<M: SlowdownModel + ?Sized>(
        &self,
        model: &M,
        external_gbps: f64,
    ) -> f64 {
        let corun_time: f64 = self
            .phases
            .iter()
            .map(|p| {
                let rs = model
                    .relative_speed_pct(p.demand_gbps, external_gbps)
                    .max(1e-6);
                p.weight / (rs / 100.0)
            })
            .sum();
        100.0 / corun_time
    }

    /// Phase-oblivious prediction using the average demand (Figure 13a).
    pub fn predict_average<M: SlowdownModel + ?Sized>(&self, model: &M, external_gbps: f64) -> f64 {
        model.relative_speed_pct(self.average_demand_gbps(), external_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PccsModel;

    fn cfd_like() -> PhasedWorkload {
        // One high-bandwidth kernel plus three medium ones, like CFD (§4.1.2).
        PhasedWorkload::new(
            "cfd",
            &[(110.0, 0.3), (55.0, 0.25), (50.0, 0.25), (60.0, 0.2)],
        )
    }

    #[test]
    fn weights_are_normalized() {
        let w = PhasedWorkload::new("w", &[(10.0, 2.0), (20.0, 2.0)]);
        assert!((w.phases()[0].weight - 0.5).abs() < 1e-12);
        assert!((w.average_demand_gbps() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_predicts_more_slowdown_than_average_for_cfd() {
        // The paper: averaging underestimates the slowdown because the
        // high-BW kernel suffers disproportionately.
        let model = PccsModel::xavier_gpu_paper();
        let w = cfd_like();
        let piecewise = w.predict_piecewise(&model, 60.0);
        let averaged = w.predict_average(&model, 60.0);
        assert!(
            piecewise < averaged,
            "piecewise {piecewise:.1} should be below averaged {averaged:.1}"
        );
    }

    #[test]
    fn single_phase_matches_direct_prediction() {
        let model = PccsModel::xavier_gpu_paper();
        let w = PhasedWorkload::new("single", &[(60.0, 1.0)]);
        let direct = model.predict(60.0, 40.0);
        assert!((w.predict_piecewise(&model, 40.0) - direct).abs() < 1e-9);
        assert!((w.predict_average(&model, 40.0) - direct).abs() < 1e-9);
    }

    #[test]
    fn harmonic_aggregation_is_exact_for_two_equal_phases() {
        let model = PccsModel::xavier_gpu_paper();
        let w = PhasedWorkload::new("two", &[(60.0, 0.5), (60.0, 0.5)]);
        let direct = model.predict(60.0, 80.0);
        assert!((w.predict_piecewise(&model, 80.0) - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        PhasedWorkload::new("x", &[]);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn zero_weights_panic() {
        PhasedWorkload::new("x", &[(10.0, 0.0)]);
    }
}
