//! Error types for model construction.

use std::error::Error;
use std::fmt;

/// Why a [`ModelBuilder`](crate::builder::ModelBuilder) run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelBuildError {
    /// The calibration matrix is empty or has fewer than two rows/columns.
    TooFewSamples {
        /// Calibrator rows provided.
        rows: usize,
        /// External-pressure columns provided.
        cols: usize,
    },
    /// A matrix row's length disagrees with the external-pressure axis.
    RaggedMatrix {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected length.
        expected: usize,
    },
    /// The standalone- or external-bandwidth axis is not strictly
    /// increasing.
    NonMonotonicAxis {
        /// Which axis: `"standalone"` or `"external"`.
        axis: &'static str,
    },
    /// A relative-speed sample fell outside `(0, 100 + tolerance]`.
    InvalidRelativeSpeed {
        /// Row of the sample.
        row: usize,
        /// Column of the sample.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The peak bandwidth supplied was not positive.
    InvalidPeakBandwidth {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelBuildError::TooFewSamples { rows, cols } => write!(
                f,
                "calibration needs at least 2x2 samples, got {rows}x{cols}"
            ),
            ModelBuildError::RaggedMatrix { row, len, expected } => {
                write!(f, "matrix row {row} has {len} samples, expected {expected}")
            }
            ModelBuildError::NonMonotonicAxis { axis } => {
                write!(f, "{axis} bandwidth axis is not strictly increasing")
            }
            ModelBuildError::InvalidRelativeSpeed { row, col, value } => write!(
                f,
                "relative speed at [{row}][{col}] is {value}, outside (0, 100]"
            ),
            ModelBuildError::InvalidPeakBandwidth { value } => {
                write!(f, "peak bandwidth {value} is not positive")
            }
        }
    }
}

impl Error for ModelBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = ModelBuildError::TooFewSamples { rows: 1, cols: 0 };
        assert!(e.to_string().contains("1x0"));
        let e = ModelBuildError::NonMonotonicAxis { axis: "external" };
        assert!(e.to_string().contains("external"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(ModelBuildError::InvalidPeakBandwidth { value: -1.0 });
    }
}
