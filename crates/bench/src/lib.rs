//! Benchmark harness: fixed workloads behind `pccs bench` and the
//! deterministic-schema `BENCH_<host>_<date>.json` baseline trajectory.
//!
//! [`run_all`] executes five fixed workloads and reports throughput
//! numbers every later PR can be compared against (methodology in
//! DESIGN.md §9):
//!
//! - `corun_contended` — a GPU streamcluster kernel under CPU bandwidth
//!   pressure on the Xavier preset, the paper's canonical co-run. Reports
//!   simulated **cycles/sec** (best of N repetitions) plus the
//!   metrics-registry overhead measured by re-running with publication
//!   disabled.
//! - `dram_fastpath` — a light-load multi-stream run timed on **both**
//!   memory engines (DESIGN.md §11): the cycle-exact reference and the
//!   event-driven skip-ahead fast path. The headline cycles/sec is the
//!   event engine's; `extra` carries both rates and the speedup ratio,
//!   and the run asserts the two engines produced bit-identical
//!   `MemoryStats` before reporting anything.
//! - `sched_replay` — the contended job mix replayed under the
//!   contention-oblivious greedy policy. Reports makespan cycles/sec and
//!   the decision count.
//! - `serve_replay` — the online serving loop (`pccs-serve`) driving the
//!   contended request classes through a Poisson arrival stream under the
//!   greedy policy. Reports makespan cycles/sec, completed requests/sec,
//!   and the p99 completion latency.
//! - `sweep_oblivious` — the oblivious-placement experiment sweep at quick
//!   fidelity across all cores. Reports **cells/sec**.
//!
//! The report's *structure* — schema tag, workload names, metric names —
//! is byte-identical across reruns; only the measured values vary. That
//! is what lets `scripts/check.sh` validate any emitted file with
//! [`validate`] and lets humans diff two baselines line by line.
//!
//! The separate `benches/` directory holds the Criterion microbenches;
//! this library is the macro-level harness behind `pccs bench`.
//!
//! The sibling [`accuracy`] module is the same idea pointed at model
//! quality instead of throughput: `pccs audit` baselines
//! (`ACCURACY_<host>_<date>.json`) and the CI accuracy gate.

/// Model-accuracy baselines and the CI accuracy gate (`pccs audit`).
pub mod accuracy;

use pccs_dram::config::DramConfig;
use pccs_dram::engine::EngineKind;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;
use pccs_experiments::context::{Context, Quality};
use pccs_experiments::oblivious;
use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::mixes;
use pccs_sched::policy::ObliviousGreedy;
use pccs_serve::request::contended_classes;
use pccs_serve::{boxed_models, paper_models, run_serve, ServeConfig};
use pccs_soc::corun::{CoRunSim, Placement, DEFAULT_HORIZON};
use pccs_soc::soc::SocConfig;
use pccs_telemetry::export::csv_field;
use pccs_telemetry::{metrics, Profiler};
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::Path;
// Wall-clock timing is the measurement itself here; it never feeds
// simulation state.
use std::time::Instant;

/// Schema tag every report carries; bump when the structure changes.
pub const SCHEMA: &str = "pccs-bench/v1";

/// Metric names a valid report must carry in its `metrics` section.
/// These are counters the three fixed workloads always touch; a missing
/// name means instrumentation regressed somewhere upstream.
pub const REQUIRED_METRICS: &[&str] = &[
    "dram.bytes",
    "dram.cycles",
    "dram.queue.hwm",
    "dram.requests.enqueued",
    "dram.requests.rejected",
    "dram.requests.served",
    "dram.row.conflicts",
    "dram.row.hits",
    "dram.row.misses",
    "dram.sched.bus_blocked",
    "dram.sched.idle",
    "dram.sched.issued",
    "dram.sched.no_candidate",
    "profile_cache.misses",
    "sched.decisions",
    "sched.jobs",
    "serve.admitted",
    "serve.completed",
    "serve.epochs",
    "serve.missed",
    "serve.offered",
    "serve.p99_latency",
    "serve.shed",
    "sim.runs",
    "sweep.cells",
];

/// The six fixed workload names, in report (sorted) order.
pub const WORKLOADS: &[&str] = &[
    "corun_contended",
    "dram_fastpath",
    "lint_workspace",
    "sched_replay",
    "serve_replay",
    "sweep_oblivious",
];

/// Measured numbers for one fixed workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadMetrics {
    /// Best (minimum) wall-clock seconds over the repetitions.
    pub wall_secs: f64,
    /// Repetitions run (the reported wall time is the best of these).
    pub iterations: u64,
    /// Simulated cycles covered by one repetition, for cycle-based
    /// workloads.
    pub cycles: Option<u64>,
    /// Simulated cycles per wall-clock second, for cycle-based workloads.
    pub cycles_per_sec: Option<f64>,
    /// Sweep cells completed, for sweep workloads.
    pub cells: Option<u64>,
    /// Sweep cells per wall-clock second, for sweep workloads.
    pub cells_per_sec: Option<f64>,
    /// Workload-specific extras (overhead percentages, decision counts,
    /// allocation proxies), keyed by stable names.
    pub extra: BTreeMap<String, f64>,
}

/// One benchmark baseline: what ran, where, and how fast.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Sanitized host name the run executed on.
    pub host: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Whether the quick (smoke) workload sizes were used.
    pub quick: bool,
    /// Per-workload measurements, keyed by workload name.
    pub workloads: BTreeMap<String, WorkloadMetrics>,
    /// Snapshot of every metric the run published (names sorted).
    pub metrics: BTreeMap<String, u64>,
}

impl BenchReport {
    /// The canonical file name for this report:
    /// `BENCH_<host>_<date>.json`.
    pub fn filename(&self) -> String {
        format!("BENCH_{}_{}.json", self.host, self.date)
    }

    /// The report as a JSON value (sorted keys, deterministic structure).
    pub fn to_json(&self) -> Value {
        self.to_value()
    }

    /// A per-workload CSV companion (one row per workload, fields escaped
    /// via [`csv_field`]).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("workload,wall_secs,iterations,cycles,cycles_per_sec,cells,cells_per_sec\n");
        for (name, w) in &self.workloads {
            let opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
            let opt_f = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{:.4},{},{},{},{},{}",
                csv_field(name),
                w.wall_secs,
                w.iterations,
                opt_u(w.cycles),
                opt_f(w.cycles_per_sec),
                opt_u(w.cells),
                opt_f(w.cells_per_sec)
            );
        }
        out
    }
}

/// Validates a parsed report against the [`SCHEMA`] contract: schema tag,
/// host/date, every fixed workload with positive wall time, the
/// throughput figure each workload promises (cycles/sec, cells/sec, or
/// lines/sec), the registry-overhead measurement, and every
/// [`REQUIRED_METRICS`] name.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(report: &Value) -> Result<(), String> {
    let obj = report
        .as_object()
        .ok_or_else(|| "report is not a JSON object".to_owned())?;
    match obj.get("schema").and_then(Value::as_str) {
        Some(tag) if tag == SCHEMA => {}
        Some(tag) => return Err(format!("schema is '{tag}', expected '{SCHEMA}'")),
        None => return Err("missing schema tag".to_owned()),
    }
    for key in ["host", "date"] {
        match obj.get(key).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("missing or empty '{key}'")),
        }
    }
    let workloads = obj
        .get("workloads")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing workloads object".to_owned())?;
    for name in WORKLOADS {
        let w = workloads
            .get(*name)
            .and_then(Value::as_object)
            .ok_or_else(|| format!("missing workload '{name}'"))?;
        match w.get("wall_secs").and_then(Value::as_f64) {
            Some(secs) if secs > 0.0 => {}
            _ => return Err(format!("workload '{name}': wall_secs must be positive")),
        }
    }
    let per_sec = |workload: &str, key: &str| -> Result<(), String> {
        let value = workloads
            .get(workload)
            .and_then(|w| w.get(key))
            .and_then(Value::as_f64);
        match value {
            Some(v) if v > 0.0 => Ok(()),
            _ => Err(format!("workload '{workload}': {key} must be positive")),
        }
    };
    per_sec("corun_contended", "cycles_per_sec")?;
    per_sec("dram_fastpath", "cycles_per_sec")?;
    per_sec("sched_replay", "cycles_per_sec")?;
    per_sec("serve_replay", "cycles_per_sec")?;
    per_sec("sweep_oblivious", "cells_per_sec")?;
    let lint_rate = workloads
        .get("lint_workspace")
        .and_then(|w| w.get("extra"))
        .and_then(|e| e.get("lines_per_sec"))
        .and_then(Value::as_f64);
    match lint_rate {
        Some(r) if r > 0.0 => {}
        _ => return Err("lint_workspace missing positive extra.lines_per_sec".to_owned()),
    }
    let overhead = workloads
        .get("corun_contended")
        .and_then(|w| w.get("extra"))
        .and_then(|e| e.get("metrics_overhead_pct"))
        .and_then(Value::as_f64);
    if overhead.is_none() {
        return Err("corun_contended missing extra.metrics_overhead_pct".to_owned());
    }
    let speedup = workloads
        .get("dram_fastpath")
        .and_then(|w| w.get("extra"))
        .and_then(|e| e.get("speedup"))
        .and_then(Value::as_f64);
    match speedup {
        Some(s) if s > 0.0 => {}
        _ => return Err("dram_fastpath missing positive extra.speedup".to_owned()),
    }
    let metrics_obj = obj
        .get("metrics")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing metrics object".to_owned())?;
    for name in REQUIRED_METRICS {
        if !metrics_obj.contains_key(*name) {
            return Err(format!("missing required metric '{name}'"));
        }
    }
    Ok(())
}

/// The host name, from `$HOSTNAME` or `/etc/hostname`, sanitized to
/// `[A-Za-z0-9._-]` so it is safe inside a file name.
pub fn hostname() -> String {
    let raw = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| std::fs::read_to_string("/etc/hostname").ok())
        .unwrap_or_default();
    let cleaned: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unknown-host".to_owned()
    } else {
        cleaned
    }
}

/// Today's UTC date as `YYYY-MM-DD`, computed from the Unix time with the
/// civil-from-days algorithm (no external time crate).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_date((secs / 86_400) as i64)
}

/// `YYYY-MM-DD` for a day count since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`, valid for the full `i64` day range we care about).
fn civil_date(days: i64) -> String {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The canonical contended co-run: streamcluster on the GPU with 40 GB/s
/// of CPU pressure.
fn contended_sim(soc: &SocConfig, horizon: u64) -> CoRunSim {
    let gpu = soc.pu_index("GPU").unwrap_or(0);
    let cpu = soc.pu_index("CPU").unwrap_or(0);
    let kernel = RodiniaBenchmark::Streamcluster.kernel(soc.pus[gpu].kind);
    let mut sim = CoRunSim::new(soc);
    sim.horizon(horizon);
    sim.place(Placement::kernel(gpu, kernel));
    sim.external_pressure(cpu, 40.0);
    sim
}

/// Best (minimum) wall-clock seconds for `body` over N repetitions —
/// the measurement primitive every fixed workload (and the linter's own
/// timing test) shares.
pub fn best_of<F: FnMut()>(iterations: u64, mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let t = Instant::now();
        body();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn run_corun_contended(soc: &SocConfig, quick: bool) -> WorkloadMetrics {
    let horizon = if quick {
        DEFAULT_HORIZON / 4
    } else {
        DEFAULT_HORIZON
    };
    let iterations = if quick { 2 } else { 5 };
    let sim = contended_sim(soc, horizon);
    // Measured configuration: registry publication on — the normal
    // operating mode, so the headline number includes instrumentation.
    metrics::set_enabled(true);
    let wall_on = best_of(iterations, || {
        let _ = sim.execute();
    });
    // Overhead probe: identical runs with every publish call gated off.
    metrics::set_enabled(false);
    let wall_off = best_of(iterations, || {
        let _ = sim.execute();
    });
    metrics::set_enabled(true);
    let overhead_pct = if wall_off > 0.0 {
        (wall_on / wall_off - 1.0) * 100.0
    } else {
        0.0
    };
    let mut extra = BTreeMap::new();
    extra.insert("metrics_overhead_pct".to_owned(), overhead_pct);
    // Allocation proxy: requests admitted to controller queues — the
    // dominant per-event heap traffic in the simulator.
    let enqueued = metrics::counter("dram.requests.enqueued").get();
    extra.insert("alloc_proxy_enqueued".to_owned(), enqueued as f64);
    WorkloadMetrics {
        wall_secs: wall_on,
        iterations,
        cycles: Some(horizon),
        cycles_per_sec: Some(horizon as f64 / wall_on.max(f64::MIN_POSITIVE)),
        cells: None,
        cells_per_sec: None,
        extra,
    }
}

/// The light-load multi-stream run the event engine is benchmarked on:
/// four ~0.8 GB/s readers on the Xavier LPDDR4X bin under FR-FCFS. The
/// traffic is stall-dominated on purpose — most cycles are bus-idle gaps
/// between line emissions, which is exactly the regime the skip-ahead
/// fast path collapses (DESIGN.md §11).
fn fastpath_system(engine: EngineKind) -> DramSystem {
    let mut sys = DramSystem::with_engine(DramConfig::xavier(), PolicyKind::FrFcfs, engine);
    for s in 0..4 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(0.8)
                .row_locality(0.9)
                .window(8)
                .seed(97 + s as u64)
                .build(),
        );
    }
    sys
}

fn run_dram_fastpath(quick: bool) -> WorkloadMetrics {
    let horizon: u64 = if quick { 300_000 } else { 2_000_000 };
    let iterations = if quick { 2 } else { 3 };
    let time_engine = |engine: EngineKind| {
        let mut stats = None;
        let wall = best_of(iterations, || {
            let outcome = fastpath_system(engine).run(horizon);
            stats = Some(outcome.stats);
        });
        (wall, stats.expect("at least one timed iteration"))
    };
    let (wall_cycle, stats_cycle) = time_engine(EngineKind::Cycle);
    let (wall_event, stats_event) = time_engine(EngineKind::Event);
    // The speedup is only meaningful if both engines did identical work;
    // the parity suite proves this in general, this asserts it for the
    // exact configuration being timed.
    assert_eq!(
        stats_cycle, stats_event,
        "dram_fastpath: engines diverged on the benchmarked configuration"
    );
    let cycle_rate = horizon as f64 / wall_cycle.max(f64::MIN_POSITIVE);
    let event_rate = horizon as f64 / wall_event.max(f64::MIN_POSITIVE);
    let mut extra = BTreeMap::new();
    extra.insert("cycle_cycles_per_sec".to_owned(), cycle_rate);
    extra.insert("event_cycles_per_sec".to_owned(), event_rate);
    extra.insert(
        "speedup".to_owned(),
        event_rate / cycle_rate.max(f64::MIN_POSITIVE),
    );
    WorkloadMetrics {
        wall_secs: wall_event,
        iterations,
        cycles: Some(horizon),
        cycles_per_sec: Some(event_rate),
        cells: None,
        cells_per_sec: None,
        extra,
    }
}

fn run_sched_replay(soc: &SocConfig, quick: bool) -> WorkloadMetrics {
    let mix = mixes::mix("contended").expect("bundled 'contended' mix");
    let cfg = if quick {
        SchedConfig::quick()
    } else {
        SchedConfig::default()
    };
    let decisions_before = metrics::counter("sched.decisions").get();
    let mut policy = ObliviousGreedy;
    let t = Instant::now();
    let report = run_schedule(soc, &mix.name, &mix.jobs, &mut policy, &cfg)
        .expect("bundled mix is schedulable");
    let wall = t.elapsed().as_secs_f64();
    let decisions = metrics::counter("sched.decisions").get() - decisions_before;
    let makespan = report.makespan.max(1.0) as u64;
    let mut extra = BTreeMap::new();
    extra.insert("decisions".to_owned(), decisions as f64);
    extra.insert("jobs".to_owned(), report.jobs.len() as f64);
    WorkloadMetrics {
        wall_secs: wall,
        iterations: 1,
        cycles: Some(makespan),
        cycles_per_sec: Some(makespan as f64 / wall.max(f64::MIN_POSITIVE)),
        cells: None,
        cells_per_sec: None,
        extra,
    }
}

fn run_serve_replay(soc: &SocConfig, quick: bool) -> WorkloadMetrics {
    let classes = contended_classes();
    let cfg = if quick {
        ServeConfig::quick()
    } else {
        ServeConfig::default()
    };
    let mut policy = ObliviousGreedy;
    let models = boxed_models(&paper_models(soc));
    let t = Instant::now();
    let report = run_serve(soc, &classes, &mut policy, models, &cfg)
        .expect("bundled request classes are servable");
    let wall = t.elapsed().as_secs_f64();
    let makespan = report.makespan.max(1.0) as u64;
    let mut extra = BTreeMap::new();
    extra.insert(
        "requests_per_sec".to_owned(),
        report.completed as f64 / wall.max(f64::MIN_POSITIVE),
    );
    extra.insert("p99_latency_cycles".to_owned(), report.p99_latency as f64);
    extra.insert("offered".to_owned(), report.offered as f64);
    WorkloadMetrics {
        wall_secs: wall,
        iterations: 1,
        cycles: Some(makespan),
        cycles_per_sec: Some(makespan as f64 / wall.max(f64::MIN_POSITIVE)),
        cells: None,
        cells_per_sec: None,
        extra,
    }
}

fn run_sweep_oblivious() -> WorkloadMetrics {
    // Quick fidelity in both bench modes: the cell count is what this
    // workload scales by, and quick keeps `pccs bench` usable in CI.
    let mut ctx = Context::new(Quality::Quick);
    let cells_before = metrics::counter("sweep.cells").get();
    let t = Instant::now();
    let result = oblivious::run(&mut ctx);
    let wall = t.elapsed().as_secs_f64();
    let cells = metrics::counter("sweep.cells").get() - cells_before;
    let mut extra = BTreeMap::new();
    extra.insert(
        "succeeded".to_owned(),
        if result.is_ok() { 1.0 } else { 0.0 },
    );
    WorkloadMetrics {
        wall_secs: wall,
        iterations: 1,
        cycles: None,
        cycles_per_sec: None,
        cells: Some(cells),
        cells_per_sec: Some(cells as f64 / wall.max(f64::MIN_POSITIVE)),
        extra,
    }
}

/// The linter's own throughput: the full two-phase workspace analysis
/// (`pccs lint`) over this repository, reported in lines per second.
/// Tracking it as a fixed workload keeps the CI gate's cost visible —
/// a rule whose reference search goes quadratic shows up here first.
fn run_lint_workspace(quick: bool) -> WorkloadMetrics {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels below the repo root");
    let iterations = if quick { 1 } else { 3 };
    let mut report = None;
    let wall = best_of(iterations, || {
        report = Some(pccs_analysis::lint_workspace(root).expect("workspace walk succeeds"));
    });
    let report = report.expect("at least one timed iteration");
    let lines = report.lines_scanned as f64;
    let mut extra = BTreeMap::new();
    extra.insert("files_scanned".to_owned(), report.files_scanned as f64);
    extra.insert("lines".to_owned(), lines);
    extra.insert(
        "lines_per_sec".to_owned(),
        lines / wall.max(f64::MIN_POSITIVE),
    );
    extra.insert("findings".to_owned(), report.findings.len() as f64);
    WorkloadMetrics {
        wall_secs: wall,
        iterations,
        cycles: None,
        cycles_per_sec: None,
        cells: None,
        cells_per_sec: None,
        extra,
    }
}

/// Runs the fixed workloads and assembles the baseline report.
///
/// Resets the metrics registry first so the report's `metrics` section
/// covers exactly this run, and leaves the registry enabled afterwards.
/// `quick` shrinks horizons and repetitions for CI smoke use.
pub fn run_all(quick: bool) -> BenchReport {
    metrics::set_enabled(true);
    metrics::reset();
    Profiler::disable();
    let soc = SocConfig::xavier();
    let mut workloads = BTreeMap::new();
    workloads.insert(
        "corun_contended".to_owned(),
        run_corun_contended(&soc, quick),
    );
    workloads.insert("dram_fastpath".to_owned(), run_dram_fastpath(quick));
    workloads.insert("lint_workspace".to_owned(), run_lint_workspace(quick));
    workloads.insert("sched_replay".to_owned(), run_sched_replay(&soc, quick));
    workloads.insert("serve_replay".to_owned(), run_serve_replay(&soc, quick));
    workloads.insert("sweep_oblivious".to_owned(), run_sweep_oblivious());
    BenchReport {
        schema: SCHEMA.to_owned(),
        host: hostname(),
        date: today_utc(),
        quick,
        workloads,
        metrics: metrics::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_matches_known_days() {
        assert_eq!(civil_date(0), "1970-01-01");
        // 2026-08-08 is day 20_673 (1_786_492_800 / 86_400).
        assert_eq!(civil_date(20_673), "2026-08-08");
        // Leap day.
        assert_eq!(civil_date(11_016), "2000-02-29");
    }

    #[test]
    fn hostname_is_sanitized() {
        let h = hostname();
        assert!(!h.is_empty());
        assert!(h
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_'));
    }

    #[test]
    fn validate_rejects_broken_reports() {
        assert!(validate(&Value::Null).is_err());
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema".to_owned(),
            Value::String("pccs-bench/v0".to_owned()),
        );
        assert!(validate(&Value::Object(obj)).is_err());
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let report = BenchReport {
            schema: SCHEMA.to_owned(),
            host: "h".to_owned(),
            date: "2026-08-08".to_owned(),
            quick: true,
            workloads: BTreeMap::from([(
                "w,1".to_owned(),
                WorkloadMetrics {
                    wall_secs: 0.5,
                    iterations: 1,
                    cycles: Some(100),
                    cycles_per_sec: Some(200.0),
                    cells: None,
                    cells_per_sec: None,
                    extra: BTreeMap::new(),
                },
            )]),
            metrics: BTreeMap::new(),
        };
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        let row = pccs_telemetry::export::csv_split(lines.next().unwrap());
        assert_eq!(row.len(), header_cols);
        assert_eq!(row[0], "w,1");
    }
}
