//! Benchmark harness crate: see the `benches/` directory for one Criterion
//! bench per paper table and figure.
