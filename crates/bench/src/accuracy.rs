//! Accuracy baselines: the `ACCURACY_<host>_<date>.json` trajectory
//! behind `pccs audit` and the CI accuracy gate.
//!
//! Where the throughput baseline (`BENCH_*.json`, crate root) answers
//! "did the simulator get slower", this module answers "did the *model*
//! get worse". [`run_accuracy`] replays the five validation figures
//! (Figs. 8–12, `pccs_experiments::validate`) with the prediction-audit
//! ledger enabled, slices the resulting records into a
//! [`Scorecard`](pccs_telemetry::audit::Scorecard), and reports one mean
//! absolute error per figure — numbers that match `pccs repro validate`
//! exactly, because every ledger record *is* one sweep point.
//!
//! The report structure is deterministic (schema tag, figure names,
//! sorted keys), so two baselines diff line by line and [`validate`]
//! can check any emitted file. [`compare`] is the gate: it fails when
//! any figure's mean error drifts above the baseline by more than a
//! tolerance — the sims are deterministic, so at equal fidelity the
//! errors are bit-identical and the default tolerance only absorbs
//! genuine model or calibration changes, not noise.
//!
//! The ledger's runtime cost is measured, not assumed: the report
//! carries `audit_overhead_pct`, the canonical contended co-run timed
//! with auditing on vs off (same best-of-N discipline as the bench
//! harness), and the test suite asserts it stays within the §12 budget.

use crate::{best_of, hostname, today_utc};
use pccs_experiments::context::{Context, Quality};
use pccs_experiments::validate::{run as run_figure, Figure};
use pccs_soc::corun::{CoRunSim, Placement, DEFAULT_HORIZON};
use pccs_soc::soc::SocConfig;
use pccs_telemetry::audit::{self, AuditRecord, Scorecard};
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Schema tag every accuracy report carries; bump when the structure
/// changes.
pub const SCHEMA: &str = "pccs-accuracy/v1";

/// The five validation figures an accuracy report must cover, in report
/// (sorted-key) order.
pub const FIGURES: &[&str] = &["fig10", "fig11", "fig12", "fig8", "fig9"];

/// Per-figure drift the gate tolerates, percentage points of mean
/// absolute error. The validation sweeps are deterministic, so at equal
/// fidelity a healthy tree reproduces the baseline exactly; the slack
/// only exists to absorb intentional, reviewed calibration changes that
/// ride along with a baseline refresh.
pub const DEFAULT_TOLERANCE_PCT_POINTS: f64 = 0.5;

/// Audit-ledger overhead budget on the contended co-run, percent
/// (DESIGN.md §12).
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// One validation figure's accuracy summary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FigureAccuracy {
    /// Sweep points audited (records contributing to the means).
    pub samples: u64,
    /// Mean absolute PCCS error over the sweep, percentage points —
    /// equal to `Validation::avg_pccs_error` for the same figure.
    pub mean_abs_error_pct: f64,
    /// Worst single-point absolute error, percentage points.
    pub worst_abs_error_pct: f64,
}

/// One accuracy baseline: model error per figure, the sliced scorecard,
/// and the measured ledger overhead.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AccuracyReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Sanitized host name the run executed on.
    pub host: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Whether the quick (smoke) sweep sizes were used. Gate comparisons
    /// require equal fidelity.
    pub quick: bool,
    /// Per-figure accuracy, keyed `fig8`..`fig12`.
    pub figures: BTreeMap<String, FigureAccuracy>,
    /// The full scorecard over every audited sweep point, sliced per
    /// SoC × PU × region × policy.
    pub scorecard: Scorecard,
    /// Measured wall-clock overhead of the enabled ledger on the
    /// contended co-run, percent.
    pub audit_overhead_pct: f64,
}

impl AccuracyReport {
    /// The canonical file name for this report:
    /// `ACCURACY_<host>_<date>.json`.
    pub fn filename(&self) -> String {
        format!("ACCURACY_{}_{}.json", self.host, self.date)
    }

    /// The report as a JSON value (sorted keys, deterministic
    /// structure).
    pub fn to_json(&self) -> Value {
        self.to_value()
    }

    /// The per-figure summary table plus the rendered scorecard.
    pub fn format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Model accuracy ({} fidelity)", fidelity(self.quick));
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>10}",
            "figure", "points", "MAE", "worst"
        );
        for (name, f) in &self.figures {
            let _ = writeln!(
                out,
                "{name:<8} {:>8} {:>9.2}% {:>9.2}%",
                f.samples, f.mean_abs_error_pct, f.worst_abs_error_pct
            );
        }
        let _ = writeln!(out, "audit overhead: {:.2}%", self.audit_overhead_pct);
        out.push('\n');
        out.push_str(&audit::render_scorecard(&self.scorecard));
        out
    }
}

fn fidelity(quick: bool) -> &'static str {
    if quick {
        "quick"
    } else {
        "full"
    }
}

/// Replays Figs. 8–12 with the audit ledger enabled and assembles the
/// accuracy report. `quick` shrinks the sweeps for CI smoke use; the
/// committed baseline is generated at the same fidelity the gate later
/// compares at.
///
/// The ledger is drained per figure (figure = one validation sweep), so
/// the report is self-contained regardless of what was recorded before,
/// and the enabled flag is restored afterwards.
///
/// # Panics
///
/// Panics if a bundled figure fails to run (a bug in the presets) or if
/// a figure's ledger-derived mean disagrees with the sweep's own
/// headline — the invariant that makes the scorecard trustworthy.
pub fn run_accuracy(quick: bool) -> AccuracyReport {
    let quality = if quick { Quality::Quick } else { Quality::Full };
    let mut ctx = Context::new(quality);
    let was_enabled = audit::is_enabled();
    audit::set_enabled(true);
    audit::drain();
    let mut figures = BTreeMap::new();
    let mut all_records: Vec<AuditRecord> = Vec::new();
    for fig in Figure::all() {
        let v = run_figure(&mut ctx, fig).expect("bundled validation figures run");
        let recs: Vec<AuditRecord> = audit::drain()
            .into_iter()
            .filter(|r| r.source == "validate")
            .collect();
        let mae = audit::mean_abs_error(recs.iter());
        // Every bench in a figure sweeps the same external grid, so the
        // flat ledger mean must equal the figure's equal-weight headline.
        assert!(
            (mae - v.avg_pccs_error()).abs() < 1e-9,
            "fig{}: ledger MAE {mae} != validation headline {}",
            fig.number(),
            v.avg_pccs_error()
        );
        let worst = recs.iter().map(AuditRecord::abs_error).fold(0.0, f64::max);
        figures.insert(
            format!("fig{}", fig.number()),
            FigureAccuracy {
                samples: recs.len() as u64,
                mean_abs_error_pct: mae,
                worst_abs_error_pct: worst,
            },
        );
        all_records.extend(recs);
    }
    let scorecard = audit::scorecard(&all_records);
    let audit_overhead_pct = measure_audit_overhead(quick);
    audit::set_enabled(was_enabled);
    AccuracyReport {
        schema: SCHEMA.to_owned(),
        host: hostname(),
        date: today_utc(),
        quick,
        figures,
        scorecard,
        audit_overhead_pct,
    }
}

/// Times the canonical contended co-run (streamcluster on the Xavier
/// GPU under 40 GB/s of CPU pressure, one registered expectation so a
/// record flows per run) with the ledger enabled vs disabled, best-of-N
/// like the bench harness. Returns the enabled-mode overhead percent.
fn measure_audit_overhead(quick: bool) -> f64 {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap_or(0);
    let cpu = soc.pu_index("CPU").unwrap_or(0);
    let iterations = if quick { 3 } else { 5 };
    let kernel = RodiniaBenchmark::Streamcluster.kernel(soc.pus[gpu].kind);
    let standalone = CoRunSim::standalone(&soc, gpu, &kernel, DEFAULT_HORIZON);
    let mut sim = CoRunSim::new(&soc);
    sim.horizon(DEFAULT_HORIZON);
    sim.place(Placement::kernel(gpu, kernel));
    sim.external_pressure(cpu, 40.0);
    sim.expect_rs("bench-overhead", "streamcluster", "-", standalone, 80.0);
    let was_enabled = audit::is_enabled();
    audit::set_enabled(true);
    let wall_on = best_of(iterations, || {
        let _ = sim.execute();
    });
    audit::set_enabled(false);
    let wall_off = best_of(iterations, || {
        let _ = sim.execute();
    });
    audit::set_enabled(was_enabled);
    // The probe's records are measurement exhaust, not model evidence.
    audit::drain();
    if wall_off > 0.0 {
        (wall_on / wall_off - 1.0) * 100.0
    } else {
        0.0
    }
}

/// Validates a parsed accuracy report against the [`SCHEMA`] contract:
/// schema tag, host/date, all five figures with samples and finite
/// non-negative errors (worst ≥ mean), a scorecard whose overall slice
/// saw every sample, and a finite overhead measurement.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(report: &Value) -> Result<(), String> {
    let obj = report
        .as_object()
        .ok_or_else(|| "accuracy report is not a JSON object".to_owned())?;
    match obj.get("schema").and_then(Value::as_str) {
        Some(tag) if tag == SCHEMA => {}
        Some(tag) => return Err(format!("schema is '{tag}', expected '{SCHEMA}'")),
        None => return Err("missing schema tag".to_owned()),
    }
    for key in ["host", "date"] {
        match obj.get(key).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("missing or empty '{key}'")),
        }
    }
    if obj.get("quick").and_then(Value::as_bool).is_none() {
        return Err("missing boolean 'quick'".to_owned());
    }
    let figures = obj
        .get("figures")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing figures object".to_owned())?;
    let mut samples_total = 0;
    for name in FIGURES {
        let f = figures
            .get(*name)
            .and_then(Value::as_object)
            .ok_or_else(|| format!("missing figure '{name}'"))?;
        let samples = match f.get("samples").and_then(Value::as_u64) {
            Some(n) if n > 0 => n,
            _ => return Err(format!("figure '{name}': samples must be positive")),
        };
        samples_total += samples;
        let mean = f.get("mean_abs_error_pct").and_then(Value::as_f64);
        let worst = f.get("worst_abs_error_pct").and_then(Value::as_f64);
        match (mean, worst) {
            (Some(m), Some(w)) if m.is_finite() && m >= 0.0 && w >= m => {}
            _ => {
                return Err(format!(
                    "figure '{name}': needs finite errors with worst >= mean"
                ))
            }
        }
    }
    let overall_samples = obj
        .get("scorecard")
        .and_then(|c| c.get("overall"))
        .and_then(|o| o.get("samples"))
        .and_then(Value::as_u64);
    match overall_samples {
        Some(n) if n == samples_total => {}
        Some(n) => {
            return Err(format!(
                "scorecard overall covers {n} samples, figures total {samples_total}"
            ))
        }
        None => return Err("missing scorecard.overall.samples".to_owned()),
    }
    match obj.get("audit_overhead_pct").and_then(Value::as_f64) {
        Some(pct) if pct.is_finite() => {}
        _ => return Err("missing finite audit_overhead_pct".to_owned()),
    }
    Ok(())
}

fn figure_mean(report: &Value, name: &str) -> Result<f64, String> {
    report
        .as_object()
        .and_then(|o| o.get("figures"))
        .and_then(|f| f.get(name))
        .and_then(|f| f.get("mean_abs_error_pct"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("figure '{name}': missing mean_abs_error_pct"))
}

/// The accuracy gate: fails when any figure's mean absolute error in
/// `current` exceeds the `baseline`'s by more than `tolerance`
/// percentage points. Improvements always pass (the gate is one-sided);
/// refreshing the committed baseline is how an improvement becomes the
/// new bar. Both reports must be schema-valid and at the same fidelity.
///
/// # Errors
///
/// Returns the first drifted figure with both means and the tolerance,
/// or the schema/fidelity violation that made the comparison
/// meaningless.
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Result<(), String> {
    validate(baseline).map_err(|e| format!("baseline: {e}"))?;
    validate(current).map_err(|e| format!("current: {e}"))?;
    let quick_of = |v: &Value| {
        v.as_object()
            .and_then(|o| o.get("quick"))
            .and_then(Value::as_bool)
    };
    let label = |q: Option<bool>| match q {
        Some(true) => "quick",
        Some(false) => "full",
        None => "unknown",
    };
    let (b_quick, c_quick) = (quick_of(baseline), quick_of(current));
    if b_quick != c_quick {
        return Err(format!(
            "fidelity mismatch: baseline is {} fidelity, current is {} — \
             the gate only compares reports of equal fidelity",
            label(b_quick),
            label(c_quick)
        ));
    }
    for name in FIGURES {
        let b = figure_mean(baseline, name)?;
        let c = figure_mean(current, name)?;
        if c - b > tolerance {
            return Err(format!(
                "accuracy gate: {name} mean abs error drifted {b:.3} -> {c:.3} \
                 pct points (tolerance {tolerance:.3})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pccs_core::{PccsModel, SlowdownModel};
    use std::sync::Mutex;

    /// The audit ledger is process-global; tests that enable/drain it
    /// serialize here.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn synthetic_report(recs: &[AuditRecord]) -> AccuracyReport {
        let mae = audit::mean_abs_error(recs.iter());
        let worst = recs.iter().map(AuditRecord::abs_error).fold(0.0, f64::max);
        let figures = FIGURES
            .iter()
            .map(|n| {
                (
                    (*n).to_owned(),
                    FigureAccuracy {
                        samples: recs.len() as u64,
                        mean_abs_error_pct: mae,
                        worst_abs_error_pct: worst,
                    },
                )
            })
            .collect();
        // The synthetic scorecard reuses one figure's records five
        // times, so patch the overall sample count to match the figure
        // totals the validator cross-checks.
        let mut scorecard = audit::scorecard(recs);
        scorecard.overall.samples = 5 * recs.len() as u64;
        AccuracyReport {
            schema: SCHEMA.to_owned(),
            host: "test".to_owned(),
            date: "2026-08-08".to_owned(),
            quick: true,
            figures,
            scorecard,
            audit_overhead_pct: 0.0,
        }
    }

    #[test]
    fn quick_accuracy_report_is_schema_valid_and_cheap() {
        let _g = guard();
        let report = run_accuracy(true);
        let json = report.to_json();
        validate(&json).expect("freshly generated report satisfies its own schema");
        assert_eq!(report.figures.len(), 5);
        for name in FIGURES {
            assert!(report.figures.contains_key(*name));
        }
        let total: u64 = report.figures.values().map(|f| f.samples).sum();
        assert_eq!(report.scorecard.overall.samples, total);
        assert!(
            report.audit_overhead_pct <= OVERHEAD_BUDGET_PCT,
            "ledger overhead {:.2}% blew the {OVERHEAD_BUDGET_PCT}% budget",
            report.audit_overhead_pct
        );
        // A report gates cleanly against itself at zero tolerance — the
        // self-comparison every fresh baseline must survive.
        compare(&json, &json, 0.0).expect("self-comparison passes");
        assert!(report.format().contains("fig12"));
    }

    #[test]
    fn perturbed_model_trips_the_accuracy_gate() {
        // Falsifiability: drift one calibrated constant (the region
        // bandwidths, via scale_bandwidth) and the scorecard plus the
        // gate must both flag it against the unperturbed baseline.
        let truth = PccsModel::xavier_gpu_paper();
        let drifted = truth.scale_bandwidth(0.7);
        // A normal/intensive-region demand: here the region bandwidths
        // actually shape the prediction, so the 0.7x miscalibration is
        // visible (in the minor region both models predict ~100%).
        let demand = 40.0;
        let grid = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0];
        let sweep = |model: &PccsModel| -> Vec<AuditRecord> {
            grid.iter()
                .map(|&y| {
                    AuditRecord::new(
                        "validate",
                        "rs_pct",
                        model.relative_speed_pct(demand, y),
                        truth.relative_speed_pct(demand, y),
                    )
                    .with_soc("xavier")
                    .with_pu("GPU")
                    .with_workload("gate-unit-test")
                    .with_region(model.region_label(demand))
                })
                .collect()
        };
        let base = synthetic_report(&sweep(&truth));
        let drift = synthetic_report(&sweep(&drifted));
        assert!(
            drift.scorecard.overall.mae > base.scorecard.overall.mae + 1.0,
            "scorecard must surface the regression: {} vs {}",
            drift.scorecard.overall.mae,
            base.scorecard.overall.mae
        );
        let err = compare(
            &base.to_json(),
            &drift.to_json(),
            DEFAULT_TOLERANCE_PCT_POINTS,
        )
        .expect_err("gate fails on a perturbed model");
        assert!(err.contains("accuracy gate"), "unexpected error: {err}");
        // The unperturbed model still passes its own gate.
        compare(&base.to_json(), &base.to_json(), 0.0).expect("no drift, no failure");
    }

    #[test]
    fn validate_rejects_broken_reports() {
        assert!(validate(&Value::Null).is_err());
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema".to_owned(),
            Value::String("pccs-accuracy/v0".to_owned()),
        );
        assert!(validate(&Value::Object(obj)).is_err());
        // A valid report turned fidelity-mismatched fails compare.
        let recs = vec![AuditRecord::new("validate", "rs_pct", 90.0, 91.0)];
        let report = synthetic_report(&recs);
        let mut full = report.clone();
        full.quick = false;
        let err = compare(&report.to_json(), &full.to_json(), 10.0)
            .expect_err("fidelity mismatch must not gate silently");
        assert!(err.contains("fidelity mismatch"), "unexpected error: {err}");
    }
}
