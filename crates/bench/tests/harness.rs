//! End-to-end check of the `pccs bench` harness.
//!
//! One test function on purpose: the harness drives the process-global
//! metrics registry (reset + enable/disable), so concurrent test threads
//! would race on it.

use pccs_bench::{run_all, validate};

#[test]
fn quick_bench_is_schema_valid_deterministic_and_cheap() {
    let first = run_all(true);
    let second = run_all(true);

    // Both runs pass the schema contract `scripts/check.sh` enforces.
    validate(&first.to_json()).expect("first run validates");
    validate(&second.to_json()).expect("second run validates");

    // Structure is byte-identical across reruns: same workload names,
    // same extra keys per workload, same metric names. Values may vary.
    let names = |r: &pccs_bench::BenchReport| -> Vec<String> {
        let mut n: Vec<String> = r.workloads.keys().cloned().collect();
        for (w, m) in &r.workloads {
            n.extend(m.extra.keys().map(|k| format!("{w}.extra.{k}")));
        }
        n.extend(r.metrics.keys().cloned());
        n
    };
    assert_eq!(names(&first), names(&second));
    assert_eq!(first.schema, second.schema);

    // The registry publishes once per run end, so its overhead on the
    // co-run workload is well under the 5% budget; the margin here is
    // generous to absorb shared-CI timing noise.
    let overhead = first.workloads["corun_contended"].extra["metrics_overhead_pct"];
    assert!(
        overhead <= 25.0,
        "metrics registry overhead {overhead:.2}% exceeds the generous 25% test margin \
         (budget is 5%)"
    );

    // Throughput numbers exist and are positive.
    assert!(first.workloads["corun_contended"].cycles_per_sec.unwrap() > 0.0);
    assert!(first.workloads["sweep_oblivious"].cells_per_sec.unwrap() > 0.0);
    assert!(first.workloads["sched_replay"].cycles_per_sec.unwrap() > 0.0);
    assert!(first.workloads["lint_workspace"].extra["lines_per_sec"] > 0.0);

    // The harness leaves the registry enabled for whoever runs next.
    assert!(pccs_telemetry::metrics::is_enabled());
}
