//! Microbenchmarks of the DRAM substrate: simulation throughput per
//! scheduling policy and address-decode speed. These set the cost of every
//! measurement the reproduction takes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pccs_dram::config::DramConfig;
use pccs_dram::mapping::AddressMapping;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;
use std::time::Duration;

fn loaded_system(policy: PolicyKind) -> DramSystem {
    let mut sys = DramSystem::new(DramConfig::cmp_study(), policy);
    for s in 0..8 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(10.0)
                .row_locality(0.92)
                .window(24)
                .seed(s as u64)
                .build(),
        );
    }
    sys
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_sim_10k_cycles");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for policy in PolicyKind::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| loaded_system(policy).run(black_box(10_000)))
        });
    }
    g.finish();

    c.bench_function("address_decode_xor", |b| {
        let cfg = DramConfig::cmp_study();
        let m = AddressMapping::ChannelInterleaveXorBank;
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..10_000u64 {
                acc += m.decode(black_box(i * 64 * 131), &cfg).bank;
            }
            acc
        })
    });

    c.bench_function("address_decode_plain", |b| {
        let cfg = DramConfig::cmp_study();
        let m = AddressMapping::ChannelInterleavePlain;
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..10_000u64 {
                acc += m.decode(black_box(i * 64 * 131), &cfg).bank;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
