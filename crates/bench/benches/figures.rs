//! One Criterion benchmark per paper table/figure: each measures the time
//! to regenerate the artifact at quick fidelity. Run a single one with
//! e.g. `cargo bench -p pccs-bench --bench figures -- fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use pccs_experiments::context::{Context, Quality};
use pccs_experiments::validate::Figure;
use pccs_experiments::{fig13, fig14, fig2, fig3, fig5, fig6, table5, table7, table9, validate};
use std::time::Duration;

fn quick_ctx() -> Context {
    Context::new(Quality::Quick)
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    g.bench_function("fig2_bandwidth_met", |b| {
        b.iter(|| fig2::run(&mut quick_ctx()))
    });
    g.bench_function("fig3_three_classes", |b| {
        b.iter(|| fig3::run(&mut quick_ctx()))
    });
    g.bench_function("fig5_policy_study", |b| {
        let mut ctx = quick_ctx();
        b.iter(|| fig5::run(&mut ctx))
    });
    g.bench_function("fig6_model_chart", |b| {
        // Model construction dominates; reuse the cached context so the
        // bench measures chart generation plus one construction amortized.
        let mut ctx = quick_ctx();
        let _ = fig6::run(&mut ctx); // warm the model cache
        b.iter(|| fig6::run(&mut ctx))
    });
    g.bench_function("fig8_xavier_gpu_validation", |b| {
        let mut ctx = quick_ctx();
        let _ = validate::run(&mut ctx, Figure::XavierGpu);
        b.iter(|| validate::run(&mut ctx, Figure::XavierGpu))
    });
    g.bench_function("fig9_xavier_cpu_validation", |b| {
        let mut ctx = quick_ctx();
        let _ = validate::run(&mut ctx, Figure::XavierCpu);
        b.iter(|| validate::run(&mut ctx, Figure::XavierCpu))
    });
    g.bench_function("fig10_snapdragon_gpu_validation", |b| {
        let mut ctx = quick_ctx();
        let _ = validate::run(&mut ctx, Figure::SnapdragonGpu);
        b.iter(|| validate::run(&mut ctx, Figure::SnapdragonGpu))
    });
    g.bench_function("fig11_snapdragon_cpu_validation", |b| {
        let mut ctx = quick_ctx();
        let _ = validate::run(&mut ctx, Figure::SnapdragonCpu);
        b.iter(|| validate::run(&mut ctx, Figure::SnapdragonCpu))
    });
    g.bench_function("fig12_xavier_dla_validation", |b| {
        let mut ctx = quick_ctx();
        let _ = validate::run(&mut ctx, Figure::XavierDla);
        b.iter(|| validate::run(&mut ctx, Figure::XavierDla))
    });
    g.bench_function("fig13_cfd_phases", |b| {
        let mut ctx = quick_ctx();
        let _ = fig13::run(&mut ctx);
        b.iter(|| fig13::run(&mut ctx))
    });
    g.bench_function("fig14_corun_workloads", |b| {
        let mut ctx = quick_ctx();
        let _ = fig14::run(&mut ctx);
        b.iter(|| fig14::run(&mut ctx))
    });
    g.bench_function("table5_linear_scaling", |b| {
        let mut ctx = quick_ctx();
        let _ = table7::run(&mut ctx); // warm all model caches
        b.iter(|| table5::run(&mut ctx))
    });
    g.bench_function("table7_model_parameters", |b| {
        let mut ctx = quick_ctx();
        let _ = table7::run(&mut ctx);
        b.iter(|| table7::run(&mut ctx))
    });
    g.bench_function("table9_frequency_selection", |b| {
        let mut ctx = quick_ctx();
        let _ = table9::run(&mut ctx);
        b.iter(|| table9::run(&mut ctx))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
