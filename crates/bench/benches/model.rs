//! Microbenchmarks of the model layer: prediction throughput, parameter
//! extraction, scaling and phased aggregation. These quantify PCCS's design
//!-space-exploration cost — the paper's pitch is that the model is cheap
//! enough to sit inside an exploration loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pccs_core::{CalibrationData, ModelBuilder, PccsModel, PhasedWorkload, SlowdownModel};
use pccs_gables::GablesModel;

fn synthetic_data(n: usize, m: usize) -> CalibrationData {
    let truth = PccsModel::xavier_gpu_paper();
    let std_bw: Vec<f64> = (1..=n).map(|i| 130.0 * i as f64 / n as f64).collect();
    let ext_bw: Vec<f64> = (1..=m).map(|j| 130.0 * j as f64 / m as f64).collect();
    let rela = std_bw
        .iter()
        .map(|&x| {
            ext_bw
                .iter()
                .map(|&y| truth.predict(x, y).max(1.0))
                .collect()
        })
        .collect();
    CalibrationData::new(std_bw, ext_bw, rela, 137.0).unwrap()
}

fn bench_model(c: &mut Criterion) {
    let pccs = PccsModel::xavier_gpu_paper();
    let gables = GablesModel::new(137.0);

    c.bench_function("pccs_predict", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in 1..=100 {
                for y in 1..=100 {
                    acc += pccs.predict(black_box(x as f64), black_box(y as f64));
                }
            }
            acc
        })
    });

    c.bench_function("gables_predict", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in 1..=100 {
                for y in 1..=100 {
                    acc += gables.relative_speed_pct(black_box(x as f64), black_box(y as f64));
                }
            }
            acc
        })
    });

    c.bench_function("builder_extract_10x10", |b| {
        let data = synthetic_data(10, 10);
        b.iter(|| ModelBuilder::new(black_box(data.clone())).build().unwrap())
    });

    c.bench_function("builder_extract_20x20", |b| {
        let data = synthetic_data(20, 20);
        b.iter(|| ModelBuilder::new(black_box(data.clone())).build().unwrap())
    });

    c.bench_function("scale_bandwidth", |b| {
        b.iter(|| black_box(&pccs).scale_bandwidth(black_box(0.625)))
    });

    c.bench_function("phased_piecewise_predict", |b| {
        let w = PhasedWorkload::new(
            "cfd",
            &[(110.0, 0.3), (55.0, 0.25), (50.0, 0.25), (60.0, 0.2)],
        );
        b.iter(|| w.predict_piecewise(black_box(&pccs), black_box(60.0)))
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
