//! Ablation benches for the design choices DESIGN.md calls out. Each bench
//! reports throughput-relevant metrics via the measured runtime of a fixed
//! simulation, and the accompanying `eprintln!` lines (printed once) show
//! the *quality* deltas (row-hit rates, achieved bandwidth) so the ablation
//! is visible in `cargo bench` output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pccs_dram::config::DramConfig;
use pccs_dram::controller::MemoryController;
use pccs_dram::mapping::AddressMapping;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;
use std::sync::Once;
use std::time::Duration;

fn run_with_mapping(mapping: AddressMapping) -> (f64, f64) {
    let config = DramConfig::cmp_study();
    let controller =
        MemoryController::with_mapping(config, PolicyKind::FrFcfs.instantiate(), mapping);
    let mut sys = DramSystem::from_controller(controller);
    for s in 0..8 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(12.0)
                .row_locality(0.9)
                .window(24)
                .seed(5 + s as u64)
                .build(),
        );
    }
    let out = sys.run(20_000);
    (out.row_hit_pct(), out.effective_bw_gbps())
}

fn run_with_locality(locality: f64) -> (f64, f64) {
    let mut sys = DramSystem::new(DramConfig::cmp_study(), PolicyKind::FrFcfs);
    for s in 0..8 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(12.0)
                .row_locality(locality)
                .window(24)
                .seed(5 + s as u64)
                .build(),
        );
    }
    let out = sys.run(20_000);
    (out.row_hit_pct(), out.effective_bw_gbps())
}

static PRINT_ONCE: Once = Once::new();

fn bench_ablations(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        let (rbh_xor, bw_xor) = run_with_mapping(AddressMapping::ChannelInterleaveXorBank);
        let (rbh_plain, bw_plain) = run_with_mapping(AddressMapping::ChannelInterleavePlain);
        eprintln!(
            "[ablation] bank mapping: XOR rbh={rbh_xor:.1}% bw={bw_xor:.1} GB/s | \
             plain rbh={rbh_plain:.1}% bw={bw_plain:.1} GB/s"
        );
        for loc in [0.4, 0.7, 0.92, 0.99] {
            let (rbh, bw) = run_with_locality(loc);
            eprintln!("[ablation] locality {loc:.2}: rbh={rbh:.1}% bw={bw:.1} GB/s");
        }
    });

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10).measurement_time(Duration::from_secs(10));

    g.bench_function("mapping_xor_bank", |b| {
        b.iter(|| run_with_mapping(black_box(AddressMapping::ChannelInterleaveXorBank)))
    });
    g.bench_function("mapping_plain_bank", |b| {
        b.iter(|| run_with_mapping(black_box(AddressMapping::ChannelInterleavePlain)))
    });
    g.bench_function("locality_low_0.4", |b| {
        b.iter(|| run_with_locality(black_box(0.4)))
    });
    g.bench_function("locality_high_0.92", |b| {
        b.iter(|| run_with_locality(black_box(0.92)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
