//! `pccs` — the user-facing command-line tool of the PCCS reproduction.
//!
//! ```text
//! pccs socs
//! pccs calibrate   --soc xavier --pu GPU [--quick] [--out model.json]
//! pccs predict     --model model.json --demand 60 --external 40
//! pccs predict     --model model.json --soc xavier --pu GPU --bench streamcluster --external 40
//! pccs explore-freq --soc xavier --pu GPU --bench streamcluster
//!                   --external 40 --budget 0.05 [--model model.json]
//! pccs corun       --soc xavier --pu GPU --bench streamcluster
//!                  [--external 40] [--metrics-out out.jsonl] [--epoch 1000]
//!                  [--quick] [--conformance] [--engine cycle|event]
//! pccs sched       [--soc xavier] [--mix contended] [--policy pccs]
//!                  [--scale 1.0] [--quick] [--metrics-out out.jsonl]
//!                  [--engine cycle|event]
//! pccs serve       [--soc xavier] [--arrivals poisson] [--rate 8]
//!                  [--policy pccs] [--admission open] [--duration 2000000]
//!                  [--seed 42] [--batch 4] [--quick] [--metrics-out out.jsonl]
//!                  [--engine cycle|event]
//! pccs policies    [--victim 48]
//! pccs lint        [--root .] [--json] [--changed <git-ref>]
//!                  [--rule <name>] [--scope file|workspace]
//! pccs bench       [--quick] [--out BENCH.json]
//! pccs audit       [--quick] [--out ACCURACY.json] [--check baseline.json]
//!                  [--tolerance 0.5] [--validate ACCURACY.json]
//! pccs trace-check --file trace.json [--min-depth 3] [--min-counters 10]
//! ```
//!
//! `calibrate` runs the paper's processor-centric construction on the
//! simulated SoC and stores the model as JSON; `predict` evaluates a stored
//! model; `explore-freq` runs the Section 4.3 frequency-selection use case;
//! `corun` co-runs a benchmark against external pressure and can export the
//! epoch telemetry (`--metrics-out`/`--epoch`) — `--quick` shortens the
//! horizon and `--conformance` attaches the DDR protocol sanitizer; `sched` replays a job mix
//! under a placement policy (the contention-aware scheduling runtime of
//! `pccs-sched`) and can export its per-decision records; `serve` runs the
//! online serving loop of `pccs-serve` — open-loop arrivals, PCCS-guided
//! admission control, batching, and per-class SLO accounting; `policies`
//! reproduces the Section 2.3 scheduling-policy comparison; `bench` runs
//! the fixed benchmark workloads and writes the `BENCH_<host>_<date>.json`
//! baseline (DESIGN.md §9); `audit` replays the validation figures with
//! the prediction-audit ledger enabled, prints the accuracy scorecard,
//! writes the `ACCURACY_<host>_<date>.json` baseline, and can gate
//! against a stored one (DESIGN.md §12); `trace-check` validates a
//! Chrome/Perfetto trace exported with `repro --trace-out`.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
pccs — processor-centric contention-aware slowdown modeling

USAGE:
  pccs socs
  pccs calibrate    --soc <xavier|snapdragon855> --pu <CPU|GPU|DLA>
                    [--quick] [--jobs <N>] [--out <model.json>]
  pccs predict      --model <model.json> (--demand <GB/s> | --soc <s> --pu <p>
                    --bench <rodinia-name>) [--external <GB/s>]
  pccs explore-freq --soc <s> --pu GPU --bench <name> [--external <GB/s>]
                    [--budget <fraction>] [--model <model.json>]
  pccs corun        --soc <s> --pu <p> --bench <name> [--external <GB/s>]
                    [--horizon <cycles>] [--metrics-out <events.jsonl>]
                    [--epoch <cycles>] [--quick] [--conformance]
                    [--engine <cycle|event>]
  pccs sched        [--soc <s>] [--mix <contended|inference-burst|steady-stream>]
                    [--policy <round-robin|greedy|pccs|oracle>] [--scale <f>]
                    [--quick] [--jobs <N>] [--metrics-out <events.jsonl>]
                    [--engine <cycle|event>]
  pccs serve        [--soc <s>] [--arrivals <poisson|bursty|trace>] [--rate <per-Mcycle>]
                    [--trace-file <arrivals.txt>] [--policy <round-robin|greedy|pccs|oracle>]
                    [--admission <open|strict|p<frac>>] [--duration <cycles>]
                    [--seed <N>] [--batch <N>] [--quick] [--jobs <N>]
                    [--metrics-out <events.jsonl>] [--engine <cycle|event>]
  pccs policies     [--victim <GB/s>]
  pccs lint         [--root <path>] [--json] [--changed <git-ref>]
                    [--rule <name>] [--scope <file|workspace>]
  pccs bench        [--quick] [--out <BENCH.json>]
  pccs audit        [--quick] [--out <ACCURACY.json>] [--check <baseline.json>]
                    [--tolerance <pct-points>] [--validate <ACCURACY.json>]
  pccs trace-check  --file <trace.json> [--min-depth <N>] [--min-counters <N>]

Run `pccs <command> --help` equivalents by reading the crate docs.";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match args.command.as_deref() {
        Some("socs") => commands::socs(),
        Some("calibrate") => commands::calibrate(&args),
        Some("predict") => commands::predict(&args),
        Some("explore-freq") => commands::explore_freq(&args),
        Some("corun") => commands::corun(&args),
        Some("sched") => commands::sched(&args),
        Some("serve") => commands::serve(&args),
        Some("policies") => commands::policies(&args),
        Some("lint") => commands::lint(&args),
        Some("bench") => commands::bench(&args),
        Some("audit") => commands::audit(&args),
        Some("trace-check") => commands::trace_check(&args),
        Some(other) => Err(args::ArgError(format!("unknown command '{other}'"))),
        None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(1)
        }
    }
}
