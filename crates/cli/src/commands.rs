//! Implementations of the `pccs` subcommands.

use crate::args::{ArgError, Args};
use pccs_core::{PccsModel, SlowdownModel};
use pccs_dram::config::DramConfig;
use pccs_dram::engine::EngineKind;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;
use pccs_dse::freq::{ground_truth_frequency, profile_frequencies, select_frequency};
use pccs_gables::GablesModel;
use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::policy::{policy_by_name, PccsPolicy, Policy};
use pccs_sched::{mixes, JobOutcome};
use pccs_serve::{
    boxed_models, calibrated_models, paper_models, run_serve, AdmissionPolicy, ArrivalProcess,
    ServeConfig,
};
use pccs_soc::corun::{CoRunSim, Placement, DEFAULT_HORIZON};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_telemetry::export::{self, SummaryRow};
use pccs_telemetry::{RunManifest, TraceLog};
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use pccs_workloads::rodinia::RodiniaBenchmark;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn soc_by_name(name: &str) -> Result<SocConfig, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "xavier" => Ok(SocConfig::xavier()),
        "snapdragon855" | "snapdragon" => Ok(SocConfig::snapdragon855()),
        other => Err(ArgError(format!(
            "unknown SoC '{other}' (known: xavier, snapdragon855)"
        ))),
    }
}

fn pu_index(soc: &SocConfig, name: &str) -> Result<usize, ArgError> {
    soc.pu_index(&name.to_ascii_uppercase()).ok_or_else(|| {
        ArgError(format!(
            "SoC {} has no PU named '{name}' (has: {})",
            soc.name,
            soc.pus
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

fn pu_kind(soc: &SocConfig, pu: usize) -> PuKind {
    soc.pus[pu].kind
}

/// Parses `--engine {cycle,event}` against a per-command default:
/// `corun`/`sched` keep the cycle-exact reference (their outputs are the
/// conformance ground truth), while `serve` and the repro sweeps default
/// to the event fast path — bit-identical by the parity suite, and the
/// provenance (manifests, audit records) always names which one ran.
fn engine_kind(args: &Args, default: EngineKind) -> Result<EngineKind, ArgError> {
    match args.get("engine") {
        None => Ok(default),
        Some(v) => v.parse().map_err(ArgError),
    }
}

/// The PU that generates external pressure against `pu`: the CPU, unless
/// the target *is* the CPU, in which case the GPU.
fn pressure_pu(soc: &SocConfig, pu: usize) -> Result<usize, ArgError> {
    let cpu = pu_index(soc, "CPU")?;
    if pu == cpu {
        pu_index(soc, "GPU")
    } else {
        Ok(cpu)
    }
}

fn bench_kernel(
    soc: &SocConfig,
    pu: usize,
    name: &str,
) -> Result<pccs_soc::kernel::KernelDesc, ArgError> {
    let bench = RodiniaBenchmark::from_label(name)
        .ok_or_else(|| ArgError(format!("unknown benchmark '{name}'")))?;
    Ok(bench.kernel(pu_kind(soc, pu)))
}

/// `pccs socs` — lists the bundled SoC presets.
pub fn socs() -> Result<(), ArgError> {
    for soc in [SocConfig::xavier(), SocConfig::snapdragon855()] {
        println!("{} — peak {:.1} GB/s", soc.name, soc.peak_bw_gbps());
        for pu in &soc.pus {
            println!(
                "  {:<4} {:>4} cores @ {:>6.0} MHz  window {:>4}  streams {}",
                pu.name, pu.cores, pu.freq_mhz, pu.mlp_window, pu.streams
            );
        }
    }
    Ok(())
}

/// `pccs calibrate` — constructs a PCCS model and optionally stores it.
pub fn calibrate(args: &Args) -> Result<(), ArgError> {
    let soc = soc_by_name(args.require("soc")?)?;
    let pu = pu_index(&soc, args.require("pu")?)?;
    let pressure = pressure_pu(&soc, pu)?;
    let mut cfg = if args.has("quick") {
        CalibrationConfig::quick()
    } else {
        CalibrationConfig::default()
    };
    cfg.threads = args.get_usize("jobs", 0)?;
    eprintln!(
        "calibrating {} / {} (pressure from {}) ...",
        soc.name, soc.pus[pu].name, soc.pus[pressure].name
    );
    let (model, data) = build_model(&soc, pu, pressure, &cfg)
        .map_err(|e| ArgError(format!("construction failed: {e}")))?;
    println!(
        "normalBW {:.1}  intensiveBW {:.1}  MRMC {}  CBP {:.1}  TBWDC {:.1}  rateN {:.3}  rateI {:.3}  peak {:.1}",
        model.normal_bw,
        model.intensive_bw,
        model.mrmc.map_or("NA".into(), |m| format!("{m:.1}%")),
        model.cbp,
        model.tbwdc,
        model.rate_n,
        model.rate_i_representative(),
        model.peak_bw
    );
    println!(
        "built from a {}x{} calibration matrix",
        data.rows(),
        data.cols()
    );
    if let Some(path) = args.get("out") {
        let json = serde_json::to_string_pretty(&model)
            .map_err(|e| ArgError(format!("serialization failed: {e}")))?;
        fs::write(path, json).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("model written to {path}");
    }
    Ok(())
}

fn load_model(path: &str) -> Result<PccsModel, ArgError> {
    let text = fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| ArgError(format!("parsing {path}: {e}")))
}

/// `pccs predict` — evaluates a stored model at a demand/pressure point, or
/// for a named benchmark whose demand is profiled on the simulator.
pub fn predict(args: &Args) -> Result<(), ArgError> {
    let model = load_model(args.require("model")?)?;
    let external = args.get_f64("external", 40.0)?;
    let demand = if let Some(bench) = args.get("bench") {
        let soc = soc_by_name(args.require("soc")?)?;
        let pu = pu_index(&soc, args.require("pu")?)?;
        let kernel = bench_kernel(&soc, pu, bench)?;
        let profile = CoRunSim::standalone_averaged(&soc, pu, &kernel, 30_000, 2);
        println!(
            "{bench} standalone demand on {}/{}: {:.1} GB/s",
            soc.name, soc.pus[pu].name, profile.bw_gbps
        );
        profile.bw_gbps
    } else {
        let d = args.get_f64("demand", f64::NAN)?;
        if !d.is_finite() {
            return Err(ArgError(
                "predict needs either --demand or --soc/--pu/--bench".into(),
            ));
        }
        d
    };
    let rs = model.relative_speed_pct(demand, external);
    println!(
        "region {}  RS {:.1}%  slowdown {:.2}x  (x = {demand:.1} GB/s, y = {external:.1} GB/s)",
        model.region(demand),
        rs,
        model.slowdown(demand, external)
    );
    Ok(())
}

/// `pccs explore-freq` — the Section 4.3 use case from the command line.
pub fn explore_freq(args: &Args) -> Result<(), ArgError> {
    let soc = soc_by_name(args.require("soc")?)?;
    let pu = pu_index(&soc, args.require("pu")?)?;
    let kernel = bench_kernel(&soc, pu, args.require("bench")?)?;
    let external = args.get_f64("external", 40.0)?;
    let budget = args.get_f64("budget", 0.05)?;
    if !(0.0..1.0).contains(&budget) {
        return Err(ArgError("--budget must be a fraction in [0, 1)".into()));
    }
    let horizon = 24_000;
    let freqs: Vec<f64> = vec![400.0, 600.0, 800.0, 1000.0, 1200.0, soc.pus[pu].freq_mhz];

    eprintln!("profiling {} candidate frequencies ...", freqs.len());
    let points = profile_frequencies(&soc, pu, &kernel, &freqs, horizon);

    let model: Box<dyn SlowdownModel> = match args.get("model") {
        Some(path) => Box::new(load_model(path)?),
        None => Box::new(GablesModel::new(soc.peak_bw_gbps())),
    };
    let sel = select_frequency(&points, model.as_ref(), external, budget);
    println!("{} picks {:.0} MHz", model.name(), sel.chosen_mhz);
    for (f, rel) in &sel.perf_rel {
        println!("  {f:>6.0} MHz: predicted co-run perf {rel:.2} of best");
    }
    if args.has("truth") {
        let pressure = pressure_pu(&soc, pu)?;
        let truth = ground_truth_frequency(
            &soc, pu, pressure, &kernel, &freqs, external, budget, horizon,
        );
        println!("simulated ground truth picks {:.0} MHz", truth.chosen_mhz);
    }
    Ok(())
}

/// `pccs corun` — co-runs a benchmark against external pressure, printing
/// the per-source latency/back-pressure summary and optionally writing the
/// epoch time-series as JSONL (plus a CSV sibling) via `--metrics-out`.
pub fn corun(args: &Args) -> Result<(), ArgError> {
    let started = std::time::Instant::now();
    let soc = soc_by_name(args.require("soc")?)?;
    let pu = pu_index(&soc, args.require("pu")?)?;
    let bench = args.require("bench")?;
    let kernel = bench_kernel(&soc, pu, bench)?;
    let external = args.get_f64("external", 40.0)?;
    // `--quick` quarters the horizon for smoke runs (scripts/check.sh);
    // an explicit `--horizon` still wins.
    let default_horizon = if args.has("quick") {
        DEFAULT_HORIZON / 4
    } else {
        DEFAULT_HORIZON
    };
    let horizon = args.get_f64("horizon", default_horizon as f64)? as u64;
    if horizon == 0 {
        return Err(ArgError("--horizon must be positive".into()));
    }
    let epoch = args.get_f64("epoch", 1_000.0)? as u64;
    if epoch == 0 {
        return Err(ArgError("--epoch must be positive".into()));
    }
    let engine = engine_kind(args, EngineKind::Cycle)?;
    let metrics_out = args.get("metrics-out");
    if metrics_out.is_some() {
        TraceLog::enable();
    }

    let mut sim = CoRunSim::new(&soc);
    sim.horizon(horizon);
    sim.engine(engine);
    if args.has("conformance") {
        sim.check_conformance();
    }
    sim.place(Placement::kernel(pu, kernel));
    let pressure = if external > 0.0 {
        let p = pressure_pu(&soc, pu)?;
        sim.external_pressure(p, external);
        Some(p)
    } else {
        None
    };
    // Record epochs whenever they will be exported or explicitly asked for.
    if metrics_out.is_some() || args.get("epoch").is_some() {
        sim.record_epochs(epoch);
    }
    let out = sim.execute();

    for (idx, r) in &out.per_pu {
        let role = if Some(*idx) == pressure {
            format!("pressure {external:.0} GB/s")
        } else {
            bench.to_owned()
        };
        println!(
            "{:<4} {role}: {:.1} GB/s, {} lines ({:.4} lines/cycle)",
            soc.pus[*idx].name, r.bw_gbps, r.lines, r.lines_per_cycle
        );
    }

    let label_of = |s: usize| {
        (0..soc.pus.len())
            .find(|&i| soc.source_range(i).contains(&s))
            .map_or_else(|| format!("src{s}"), |i| format!("{}:{s}", soc.pus[i].name))
    };
    let stats = &out.memory.stats;
    let rows: Vec<SummaryRow> = stats
        .per_source
        .iter()
        .map(|(src, s)| SummaryRow {
            label: label_of(src.0),
            served: s.served,
            bytes: s.bytes,
            bw_gbps: stats.source_bw_gbps(*src, &soc.dram),
            avg_latency: s.avg_latency(),
            p50: s.latency_percentile(50.0),
            p95: s.latency_percentile(95.0),
            p99: s.latency_percentile(99.0),
            max_latency: s.max_latency,
            enqueued: s.enqueued,
            rejected: s.rejected,
        })
        .collect();
    print!("{}", export::render_summary(&rows));

    if let Some(report) = &out.memory.conformance {
        println!("{}", report.summary());
        if !report.is_clean() {
            return Err(ArgError(format!(
                "DDR protocol conformance violations detected ({} total)",
                report.total_violations
            )));
        }
    }

    if let Some(path) = metrics_out {
        let mut config = BTreeMap::new();
        let mut put = |k: &str, v: Value| {
            config.insert(k.to_owned(), v);
        };
        put("soc", Value::String(soc.name.clone()));
        put("pu", Value::String(soc.pus[pu].name.clone()));
        put("bench", Value::String(bench.to_owned()));
        put("external_gbps", Value::Number(Number::F(external)));
        put("horizon", Value::Number(Number::U(horizon)));
        put("epoch_cycles", Value::Number(Number::U(epoch)));
        put("policy", Value::String("atlas".to_owned()));
        put("engine", Value::String(engine.label().to_owned()));
        let mut manifest = RunManifest::new("pccs-cli", env!("CARGO_PKG_VERSION"), "corun")
            .with_config(Value::Object(config));
        manifest.set_wall_secs(started.elapsed().as_secs_f64());
        let spans = TraceLog::drain();
        let report = out.memory.telemetry.as_ref();
        let jsonl = export::jsonl_events(Some(&manifest), report, &spans);
        fs::write(path, jsonl).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        let csv_path = Path::new(path).with_extension("csv");
        if let Some(report) = report {
            let csv = export::csv_timeseries(report);
            fs::write(&csv_path, csv)
                .map_err(|e| ArgError(format!("writing {}: {e}", csv_path.display())))?;
        }
        println!(
            "telemetry written to {path} (events) and {} (time-series)",
            csv_path.display()
        );
    }
    Ok(())
}

/// `pccs sched` — replays a job mix under a placement policy on the co-run
/// simulator and reports per-job outcomes plus schedule metrics. With
/// `--metrics-out`, every placement decision is appended to the JSONL
/// event stream alongside the run manifest and trace spans.
pub fn sched(args: &Args) -> Result<(), ArgError> {
    let started = std::time::Instant::now();
    let quick = args.has("quick");
    let soc = soc_by_name(args.get("soc").unwrap_or("xavier"))?;
    let mix_name = args.get("mix").unwrap_or("contended");
    let mix = mixes::mix(mix_name).ok_or_else(|| {
        ArgError(format!(
            "unknown mix '{mix_name}' (known: {})",
            mixes::names().join(", ")
        ))
    })?;
    let scale = args.get_f64("scale", 1.0)?;
    if scale <= 0.0 {
        return Err(ArgError("--scale must be positive".into()));
    }
    let mix = if (scale - 1.0).abs() > f64::EPSILON {
        mix.scaled(scale)
    } else {
        mix
    };
    let policy_name = args.get("policy").unwrap_or("pccs");
    // The PCCS policy calibrates one model per PU against the simulator
    // before scheduling; `--quick` swaps in the coarse calibration grid.
    let mut policy: Box<dyn Policy> = if policy_name.eq_ignore_ascii_case("pccs") && quick {
        let mut cal = CalibrationConfig::quick();
        cal.threads = args.get_usize("jobs", 0)?;
        Box::new(PccsPolicy::calibrated(&soc, &cal))
    } else {
        policy_by_name(&soc, policy_name).ok_or_else(|| {
            ArgError(format!(
                "unknown policy '{policy_name}' (known: round-robin, greedy, pccs, oracle)"
            ))
        })?
    };
    let mut cfg = if quick {
        SchedConfig::quick()
    } else {
        SchedConfig::default()
    };
    let engine = engine_kind(args, EngineKind::Cycle)?;
    cfg.probe.engine = engine;
    let metrics_out = args.get("metrics-out");
    if metrics_out.is_some() {
        TraceLog::enable();
    }

    eprintln!(
        "scheduling mix '{}' ({} jobs) on {} under policy '{}' ...",
        mix.name,
        mix.jobs.len(),
        soc.name,
        policy.name()
    );
    let report = run_schedule(&soc, &mix.name, &mix.jobs, policy.as_mut(), &cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    println!(
        "{:<12} {:<5} {:>10} {:>10} {:>8} {:>9}",
        "job", "PU", "start", "finish", "RS %", "deadline"
    );
    for j in &report.jobs {
        let deadline = match (j.deadline, j.missed_deadline) {
            (None, _) => "-".to_owned(),
            (Some(_), false) => "met".to_owned(),
            (Some(d), true) => format!("MISSED ({d})"),
        };
        println!(
            "{:<12} {:<5} {:>10.0} {:>10.0} {:>8.1} {:>9}",
            j.name, j.pu, j.start, j.finish, j.achieved_rs_pct, deadline
        );
    }
    println!(
        "makespan {:.0} cycles  mean RS {:.1}%  mean turnaround {:.0}  deadline misses {}/{}",
        report.makespan,
        report.mean_rs_pct(),
        report.mean_turnaround(),
        report.deadline_misses(),
        report.jobs.len()
    );

    if let Some(path) = metrics_out {
        let mut config = BTreeMap::new();
        let mut put = |k: &str, v: Value| {
            config.insert(k.to_owned(), v);
        };
        put("soc", Value::String(soc.name.clone()));
        put("mix", Value::String(mix.name.clone()));
        put("policy", Value::String(report.policy.clone()));
        put("scale", Value::Number(Number::F(scale)));
        put("quick", Value::Bool(quick));
        put("engine", Value::String(engine.label().to_owned()));
        let mut manifest = RunManifest::new("pccs-cli", env!("CARGO_PKG_VERSION"), "sched")
            .with_config(Value::Object(config));
        manifest.set_wall_secs(started.elapsed().as_secs_f64());
        let spans = TraceLog::drain();
        let mut jsonl = export::jsonl_events(Some(&manifest), None, &spans);
        jsonl.push_str(&export::jsonl_records("decision", &report.decisions));
        jsonl.push_str(&export::jsonl_records::<JobOutcome>(
            "job_outcome",
            &report.jobs,
        ));
        fs::write(path, jsonl).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!(
            "telemetry written to {path} ({} decisions, {} job outcomes)",
            report.decisions.len(),
            report.jobs.len()
        );
    }
    Ok(())
}

/// `pccs serve` — the online serving loop: open-loop arrivals, admission
/// control, batching, and SLO accounting on top of the placement policies.
pub fn serve(args: &Args) -> Result<(), ArgError> {
    let started = std::time::Instant::now();
    let quick = args.has("quick");
    let soc = soc_by_name(args.get("soc").unwrap_or("xavier"))?;
    let classes = pccs_serve::request::contended_classes();

    let rate = args.get_f64("rate", 8.0)?;
    if rate <= 0.0 {
        return Err(ArgError("--rate must be positive".into()));
    }
    let arrivals = match args.get("arrivals").unwrap_or("poisson") {
        "poisson" => ArrivalProcess::Poisson {
            rate_per_mcycle: rate,
        },
        "bursty" => ArrivalProcess::bursty(rate),
        "trace" => {
            let path = args.require("trace-file")?;
            let text =
                fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
            pccs_serve::arrivals::parse_trace(&text).map_err(|e| ArgError(e.to_string()))?
        }
        other => {
            return Err(ArgError(format!(
                "unknown arrival process '{other}' (known: poisson, bursty, trace)"
            )))
        }
    };
    let admission = match args.get("admission").unwrap_or("open") {
        "open" => AdmissionPolicy::Open,
        "strict" => AdmissionPolicy::Strict,
        spec => {
            let frac: f64 = spec
                .strip_prefix('p')
                .unwrap_or(spec)
                .parse()
                .map_err(|_| {
                    ArgError(format!(
                        "unknown admission policy '{spec}' (known: open, strict, p<frac> e.g. p0.1)"
                    ))
                })?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(ArgError(
                    "admission miss threshold must be in [0, 1]".into(),
                ));
            }
            AdmissionPolicy::MissProb(frac)
        }
    };

    // The PCCS policy and the admission controller share one calibrated
    // model set; contention-oblivious policies pair with the paper's
    // published models so admission stays contention-aware.
    let policy_name = args.get("policy").unwrap_or("pccs");
    let (models, mut policy): (Vec<PccsModel>, Box<dyn Policy>) =
        if policy_name.eq_ignore_ascii_case("pccs") {
            let mut cal = if quick {
                CalibrationConfig::quick()
            } else {
                pccs_sched::policy::default_calibration()
            };
            cal.threads = args.get_usize("jobs", 0)?;
            let models = calibrated_models(&soc, &cal).map_err(|e| ArgError(e.to_string()))?;
            let policy = Box::new(PccsPolicy::new(boxed_models(&models)));
            (models, policy)
        } else {
            let policy = policy_by_name(&soc, policy_name).ok_or_else(|| {
                ArgError(format!(
                    "unknown policy '{policy_name}' (known: round-robin, greedy, pccs, oracle)"
                ))
            })?;
            (paper_models(&soc), policy)
        };

    let mut cfg = if quick {
        ServeConfig::quick()
    } else {
        ServeConfig::default()
    };
    cfg.arrivals = arrivals;
    cfg.duration = args.get("duration").map_or(Ok(cfg.duration), |raw| {
        raw.parse::<u64>()
            .map_err(|_| ArgError(format!("--duration must be an integer, got '{raw}'")))
    })?;
    cfg.seed = args.get("seed").map_or(Ok(cfg.seed), |raw| {
        raw.parse::<u64>()
            .map_err(|_| ArgError(format!("--seed must be an integer, got '{raw}'")))
    })?;
    cfg.admission = admission;
    cfg.batch.max_batch = args.get_usize("batch", cfg.batch.max_batch)?;
    let engine = engine_kind(args, EngineKind::Event)?;
    cfg.probe.engine = engine;
    let metrics_out = args.get("metrics-out");
    if metrics_out.is_some() {
        TraceLog::enable();
    }

    eprintln!(
        "serving {} on {} under policy '{}', admission {} ...",
        cfg.arrivals.describe(),
        soc.name,
        policy.name(),
        cfg.admission.describe()
    );
    let report = run_serve(&soc, &classes, policy.as_mut(), boxed_models(&models), &cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    println!(
        "{:<12} {:>8} {:>9} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "class", "offered", "admitted", "shed", "p50", "p95", "p99", "miss %"
    );
    for c in &report.classes {
        println!(
            "{:<12} {:>8} {:>9} {:>6} {:>10} {:>10} {:>10} {:>8.1}",
            c.class,
            c.offered,
            c.admitted,
            c.shed,
            c.p50_latency,
            c.p95_latency,
            c.p99_latency,
            c.miss_rate_pct
        );
    }
    println!(
        "served {}/{} requests ({} shed, {} missed)  makespan {:.0} cycles  \
         throughput {:.2}/Mcycle  p99 {} cycles  miss rate {:.1}%  recalibrations {}",
        report.completed,
        report.offered,
        report.shed,
        report.missed,
        report.makespan,
        report.throughput_per_mcycle,
        report.p99_latency,
        report.miss_rate_pct,
        report.recalibrations
    );

    if let Some(path) = metrics_out {
        let mut config = BTreeMap::new();
        let mut put = |k: &str, v: Value| {
            config.insert(k.to_owned(), v);
        };
        put("soc", Value::String(soc.name.clone()));
        put("policy", Value::String(report.policy.clone()));
        put("arrivals", Value::String(report.arrivals.clone()));
        put("admission", Value::String(report.admission.clone()));
        put("seed", Value::Number(Number::U(report.seed)));
        put("quick", Value::Bool(quick));
        put("engine", Value::String(engine.label().to_owned()));
        let mut manifest = RunManifest::new("pccs-cli", env!("CARGO_PKG_VERSION"), "serve")
            .with_config(Value::Object(config));
        manifest.set_wall_secs(started.elapsed().as_secs_f64());
        let spans = TraceLog::drain();
        let mut jsonl = export::jsonl_events(Some(&manifest), None, &spans);
        jsonl.push_str(&export::jsonl_records("request", &report.outcomes));
        jsonl.push_str(&export::jsonl_records("class_slo", &report.classes));
        fs::write(path, jsonl).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!(
            "telemetry written to {path} ({} requests, {} classes)",
            report.outcomes.len(),
            report.classes.len()
        );
    }
    Ok(())
}

/// `pccs policies` — the Section 2.3 policy comparison on the CMP config.
pub fn policies(args: &Args) -> Result<(), ArgError> {
    let victim = args.get_f64("victim", 48.0)?;
    let horizon = 30_000;
    let pressures = [0.0, 24.0, 48.0, 80.0, 120.0];

    let run = |policy: PolicyKind, aggressor: f64| -> f64 {
        let mut sys = DramSystem::new(DramConfig::cmp_study(), policy);
        for s in 0..8 {
            sys.add_generator(
                StreamTraffic::builder(SourceId(s))
                    .demand_gbps(victim / 8.0)
                    .row_locality(0.95)
                    .window(24)
                    .seed(3 + s as u64)
                    .build(),
            );
        }
        if aggressor > 0.0 {
            for s in 8..16 {
                sys.add_generator(
                    StreamTraffic::builder(SourceId(s))
                        .demand_gbps(aggressor / 8.0)
                        .row_locality(0.92)
                        .window(24)
                        .seed(71 + s as u64)
                        .build(),
                );
            }
        }
        let out = sys.run(horizon);
        (0..8).map(|s| out.source_bw_gbps(SourceId(s))).sum()
    };

    println!("victim group {victim:.0} GB/s on the Table 1 CMP config; cells are RS %");
    print!("{:<9}", "policy");
    for p in &pressures[1..] {
        print!("{:>9}", format!("y={p:.0}"));
    }
    println!();
    for policy in PolicyKind::all() {
        let standalone = run(policy, 0.0).max(f64::MIN_POSITIVE);
        print!("{:<9}", policy.label());
        for &p in &pressures[1..] {
            print!("{:>9.1}", 100.0 * run(policy, p) / standalone);
        }
        println!();
    }
    Ok(())
}

/// The `.rs` paths under `crates/` that differ from `git_ref`, straight
/// from `git diff --name-only` (uncommitted edits included). Non-source
/// paths survive here; the analyzer discards them during classification.
fn changed_files(root: &Path, git_ref: &str) -> Result<Vec<String>, ArgError> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref, "--"])
        .output()
        .map_err(|e| ArgError(format!("running git diff: {e}")))?;
    if !out.status.success() {
        return Err(ArgError(format!(
            "git diff --name-only {git_ref} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        )));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect())
}

/// `pccs lint` — runs the repo-invariant linter ([`pccs_analysis`]) over
/// the workspace. Exits non-zero when findings survive waivers; `--json`
/// emits the telemetry JSONL records instead of the text report.
/// `--changed <git-ref>` lints only the files that differ from the ref
/// (a strict subset of the full run), `--rule <name>` and
/// `--scope {file,workspace}` filter the findings.
pub fn lint(args: &Args) -> Result<(), ArgError> {
    use pccs_analysis::report::Scope;
    use pccs_analysis::workspace::{self, LintOptions};

    let root = Path::new(args.get("root").unwrap_or("."));
    let mut opts = LintOptions::default();
    if let Some(rule) = args.get("rule") {
        if !pccs_analysis::rules::RULE_NAMES.contains(&rule) {
            return Err(ArgError(format!(
                "unknown rule '{rule}' (known: {})",
                pccs_analysis::rules::RULE_NAMES.join(", ")
            )));
        }
        opts.rule = Some(rule.to_owned());
    }
    if let Some(scope) = args.get("scope") {
        opts.scope = Some(match scope {
            "file" => Scope::File,
            "workspace" => Scope::Workspace,
            other => {
                return Err(ArgError(format!(
                    "unknown scope '{other}' (file or workspace)"
                )))
            }
        });
    }
    let report = if let Some(git_ref) = args.get("changed") {
        let changed = changed_files(root, git_ref)?;
        workspace::lint_changed(root, &changed, &opts)
    } else {
        workspace::analyze_root(root).map(|index| index.run(&opts))
    }
    .map_err(|e| ArgError(format!("linting {}: {e}", root.display())))?;
    if args.has("json") {
        print!("{}", report.to_jsonl());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(ArgError(format!(
            "{} lint finding(s); fix or waive with `// pccs-lint: allow(<rule>)`",
            report.findings.len()
        )))
    }
}

/// `pccs bench` — runs the fixed benchmark workloads ([`pccs_bench`]) and
/// writes the schema-validated `BENCH_<host>_<date>.json` baseline (plus a
/// CSV companion next to it). `--quick` shrinks horizons for CI smoke use;
/// `--out` overrides the canonical file name.
pub fn bench(args: &Args) -> Result<(), ArgError> {
    let quick = args.has("quick");
    eprintln!(
        "running pccs bench ({} workload sizes) ...",
        if quick { "quick" } else { "full" }
    );
    let report = pccs_bench::run_all(quick);
    let json = report.to_json();
    pccs_bench::validate(&json).map_err(|e| ArgError(format!("bench report invalid: {e}")))?;
    let path = args
        .get("out")
        .map(str::to_owned)
        .unwrap_or_else(|| report.filename());
    let mut text = serde_json::to_string_pretty(&json)
        .map_err(|e| ArgError(format!("serialization failed: {e}")))?;
    text.push('\n');
    fs::write(&path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
    let csv_path = if let Some(stripped) = path.strip_suffix(".json") {
        format!("{stripped}.csv")
    } else {
        format!("{path}.csv")
    };
    fs::write(&csv_path, report.to_csv())
        .map_err(|e| ArgError(format!("writing {csv_path}: {e}")))?;
    for (name, w) in &report.workloads {
        let rate = match (w.cycles_per_sec, w.cells_per_sec) {
            (Some(c), _) => format!("{c:>12.0} cycles/s"),
            (_, Some(c)) => format!("{c:>12.1} cells/s"),
            _ => "            —".to_owned(),
        };
        println!("{name:<18} {:>8.3}s  {rate}", w.wall_secs);
    }
    let overhead = report.workloads["corun_contended"].extra["metrics_overhead_pct"];
    println!("metrics registry overhead: {overhead:.2}% (budget 5%)");
    let speedup = report.workloads["dram_fastpath"].extra["speedup"];
    println!("event-engine speedup over cycle-exact: {speedup:.1}x (target 10x)");
    println!("baseline written to {path} (+ {csv_path})");
    Ok(())
}

/// `pccs audit` — replays the validation figures with the prediction-audit
/// ledger enabled, prints the accuracy scorecard, and writes the
/// schema-validated `ACCURACY_<host>_<date>.json` baseline. `--check
/// <baseline.json>` additionally runs the accuracy gate against a stored
/// baseline (tolerance override via `--tolerance`, percentage points);
/// `--validate <file>` only schema-checks a stored baseline and exits
/// (the check.sh guard on the committed baseline); `--quick` shrinks the
/// sweeps for CI smoke use; `--out` overrides the canonical file name.
pub fn audit(args: &Args) -> Result<(), ArgError> {
    use pccs_bench::accuracy;
    if let Some(path) = args.get("validate") {
        let text =
            fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| ArgError(format!("parsing {path}: {e}")))?;
        accuracy::validate(&value).map_err(|e| ArgError(format!("{path}: {e}")))?;
        println!("{path}: valid {} report", accuracy::SCHEMA);
        return Ok(());
    }
    let quick = args.has("quick");
    eprintln!(
        "auditing model accuracy ({} sweep sizes) ...",
        if quick { "quick" } else { "full" }
    );
    let report = accuracy::run_accuracy(quick);
    let json = report.to_json();
    accuracy::validate(&json).map_err(|e| ArgError(format!("accuracy report invalid: {e}")))?;
    print!("{}", report.format());
    let path = args
        .get("out")
        .map(str::to_owned)
        .unwrap_or_else(|| report.filename());
    let mut text = serde_json::to_string_pretty(&json)
        .map_err(|e| ArgError(format!("serialization failed: {e}")))?;
    text.push('\n');
    fs::write(&path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
    println!("accuracy baseline written to {path}");
    if let Some(baseline_path) = args.get("check") {
        let tolerance = args.get_f64("tolerance", accuracy::DEFAULT_TOLERANCE_PCT_POINTS)?;
        let text = fs::read_to_string(baseline_path)
            .map_err(|e| ArgError(format!("reading {baseline_path}: {e}")))?;
        let baseline: Value = serde_json::from_str(&text)
            .map_err(|e| ArgError(format!("parsing {baseline_path}: {e}")))?;
        accuracy::compare(&baseline, &json, tolerance).map_err(ArgError)?;
        println!("accuracy gate passed against {baseline_path} (tolerance {tolerance} pct points)");
    }
    Ok(())
}

/// `pccs trace-check` — validates a Chrome/Perfetto trace exported by
/// `repro --trace-out`: JSON well-formedness, balanced B/E spans per lane,
/// monotonic timestamps, and optional minimum nesting depth
/// (`--min-depth`) and counter-track count (`--min-counters`).
pub fn trace_check(args: &Args) -> Result<(), ArgError> {
    let path = args.require("file")?;
    let min_depth = args.get_usize("min-depth", 0)?;
    let min_counters = args.get_usize("min-counters", 0)?;
    let text = fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    let check = pccs_telemetry::perfetto::check_trace(&text)
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    println!(
        "{path}: {} events, {} lanes, max depth {}, {} counter tracks",
        check.events, check.lanes, check.max_depth, check.counter_tracks
    );
    if check.max_depth < min_depth {
        return Err(ArgError(format!(
            "{path}: max span depth {} < required {min_depth}",
            check.max_depth
        )));
    }
    if check.counter_tracks < min_counters {
        return Err(ArgError(format!(
            "{path}: {} counter tracks < required {min_counters}",
            check.counter_tracks
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc_lookup_accepts_known_names() {
        assert_eq!(soc_by_name("xavier").unwrap().pus.len(), 3);
        assert_eq!(soc_by_name("SNAPDRAGON855").unwrap().pus.len(), 2);
        assert_eq!(soc_by_name("snapdragon").unwrap().pus.len(), 2);
        assert!(soc_by_name("a15").is_err());
    }

    #[test]
    fn pu_lookup_is_case_insensitive_and_lists_options() {
        let soc = soc_by_name("xavier").unwrap();
        assert!(pu_index(&soc, "gpu").is_ok());
        let err = pu_index(&soc, "NPU").unwrap_err();
        assert!(err.to_string().contains("CPU"));
    }

    #[test]
    fn bench_kernel_resolves_per_pu_kind() {
        let soc = soc_by_name("xavier").unwrap();
        let gpu = pu_index(&soc, "GPU").unwrap();
        let cpu = pu_index(&soc, "CPU").unwrap();
        let on_gpu = bench_kernel(&soc, gpu, "streamcluster").unwrap();
        let on_cpu = bench_kernel(&soc, cpu, "streamcluster").unwrap();
        assert!(on_gpu.ops_per_byte != on_cpu.ops_per_byte);
        assert!(bench_kernel(&soc, gpu, "doom").is_err());
    }

    #[test]
    fn engine_flag_parses_against_per_command_defaults() {
        let parse = |s: &str| Args::parse(s.split_whitespace().map(String::from)).unwrap();
        assert_eq!(
            engine_kind(&parse("corun"), EngineKind::Cycle).unwrap(),
            EngineKind::Cycle,
            "corun/sched default must stay the cycle-exact reference"
        );
        assert_eq!(
            engine_kind(&parse("serve"), EngineKind::Event).unwrap(),
            EngineKind::Event,
            "serve defaults to the event fast path"
        );
        assert_eq!(
            engine_kind(&parse("serve --engine cycle"), EngineKind::Event).unwrap(),
            EngineKind::Cycle,
            "the explicit override beats the per-command default"
        );
        assert_eq!(
            engine_kind(&parse("corun --engine event"), EngineKind::Cycle).unwrap(),
            EngineKind::Event
        );
        let err = engine_kind(&parse("corun --engine warp"), EngineKind::Cycle).unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn model_round_trips_through_json() {
        let model = PccsModel::xavier_gpu_paper();
        let path = std::env::temp_dir().join("pccs_cli_test_model.json");
        std::fs::write(&path, serde_json::to_string(&model).unwrap()).unwrap();
        let loaded = load_model(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, model);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_model_reports_missing_file() {
        let err = load_model("/nonexistent/p.json").unwrap_err();
        assert!(err.to_string().contains("reading"));
    }
}
