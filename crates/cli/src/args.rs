//! Minimal flag parsing for the `pccs` binary — `--key value` pairs plus
//! boolean switches, no external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// A parsing or lookup failure, printable as a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream (excluding the program name).
    ///
    /// Tokens starting with `--` become options when followed by a value
    /// token, or switches when followed by another flag / nothing.
    ///
    /// # Errors
    ///
    /// Returns an error for a second positional token (only one subcommand
    /// is allowed).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                let has_value = tokens
                    .get(i + 1)
                    .is_some_and(|next| !next.starts_with("--"));
                if has_value {
                    args.options.insert(key.to_owned(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_owned());
                    i += 1;
                }
            } else {
                if args.command.is_some() {
                    return Err(ArgError(format!(
                        "unexpected positional argument '{t}' (subcommand already given)"
                    )));
                }
                args.command = Some(t.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// A float option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// An unsigned integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_options_and_switches() {
        let a = parse("calibrate --soc xavier --pu GPU --quick").unwrap();
        assert_eq!(a.command.as_deref(), Some("calibrate"));
        assert_eq!(a.get("soc"), Some("xavier"));
        assert_eq!(a.get("pu"), Some("GPU"));
        assert!(a.has("quick"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn numbers_parse_with_defaults() {
        let a = parse("predict --demand 60.5").unwrap();
        assert_eq!(a.get_f64("demand", 0.0).unwrap(), 60.5);
        assert_eq!(a.get_f64("external", 40.0).unwrap(), 40.0);
        assert!(a.get_f64("demand", 0.0).is_ok());
    }

    #[test]
    fn integers_parse_with_defaults() {
        let a = parse("calibrate --jobs 4").unwrap();
        assert_eq!(a.get_usize("jobs", 0).unwrap(), 4);
        assert_eq!(a.get_usize("threads", 2).unwrap(), 2);
        assert!(parse("calibrate --jobs many")
            .unwrap()
            .get_usize("jobs", 0)
            .is_err());
    }

    #[test]
    fn bad_number_errors() {
        let a = parse("predict --demand lots").unwrap();
        assert!(a.get_f64("demand", 0.0).is_err());
    }

    #[test]
    fn require_reports_missing_flag() {
        let a = parse("predict").unwrap();
        let err = a.require("model").unwrap_err();
        assert!(err.to_string().contains("--model"));
    }

    #[test]
    fn second_positional_is_rejected() {
        assert!(parse("one two").is_err());
    }

    #[test]
    fn trailing_switch_parses() {
        let a = parse("calibrate --quick").unwrap();
        assert!(a.has("quick"));
    }
}
