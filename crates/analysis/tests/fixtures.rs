//! End-to-end acceptance of the linter on the seeded fixture tree and on
//! the real workspace: the fixture must fail with every rule represented,
//! and the workspace itself must lint clean.

use pccs_analysis::lint_workspace;
use serde::Value;
use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixture-tree"))
}

fn workspace_root() -> &'static Path {
    // crates/analysis -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let report = lint_workspace(fixture_root()).expect("fixture tree lints");
    assert!(!report.is_clean(), "seeded fixture must produce findings");
    let per_rule = report.per_rule();
    assert_eq!(
        per_rule["hot-path-panic"], 2,
        "unwrap + panic!: {per_rule:?}"
    );
    assert_eq!(
        per_rule["nondeterminism"], 3,
        "HashMap + Instant::now in dram, HashMap in serve: {per_rule:?}"
    );
    assert_eq!(
        per_rule["deprecated-shim"], 2,
        "allow(deprecated) + run_configured call: {per_rule:?}"
    );
    assert_eq!(per_rule["missing-docs"], 1, "{per_rule:?}");
    assert_eq!(report.waived, 1, "the waived unwrap counts as waived");
    // Findings carry fixture-relative paths for stable reports.
    assert!(report
        .findings
        .iter()
        .all(|f| f.file == "crates/dram/src/seeded.rs" || f.file == "crates/serve/src/planted.rs"));
    // The serve crate is on the deterministic list: its planted HashMap
    // must surface as exactly one nondeterminism finding.
    let serve: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/serve/src/planted.rs")
        .collect();
    assert_eq!(serve.len(), 1, "{serve:?}");
    assert_eq!(serve[0].rule, "nondeterminism");
}

#[test]
fn the_workspace_lints_clean() {
    let report = lint_workspace(workspace_root()).expect("workspace lints");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render_text()
    );
}

#[test]
fn jsonl_export_of_fixture_findings_parses() {
    let report = lint_workspace(fixture_root()).expect("fixture tree lints");
    for line in report.to_jsonl().lines() {
        let v: Value = serde_json::from_str(line).expect("valid JSON line");
        let Value::Object(map) = v else {
            panic!("record is not an object: {line}");
        };
        assert_eq!(map["type"], Value::String("lint.finding".into()));
        assert!(matches!(map["rule"], Value::String(_)));
    }
}
