//! End-to-end acceptance of the linter on the seeded fixture tree and on
//! the real workspace: the fixture must fail with every rule represented
//! — file-scoped and workspace-scoped — and the workspace itself must
//! lint clean.

use pccs_analysis::lint_workspace;
use pccs_analysis::report::Scope;
use pccs_analysis::rules::rule_scope;
use pccs_analysis::workspace::{analyze_root, LintOptions};
use serde::Value;
use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixture-tree"))
}

fn workspace_root() -> &'static Path {
    // crates/analysis -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let report = lint_workspace(fixture_root()).expect("fixture tree lints");
    assert!(!report.is_clean(), "seeded fixture must produce findings");
    let per_rule = report.per_rule();
    assert_eq!(
        per_rule["hot-path-panic"], 2,
        "unwrap + panic!: {per_rule:?}"
    );
    assert_eq!(
        per_rule["nondeterminism"], 3,
        "HashMap + Instant::now in dram, HashMap in serve: {per_rule:?}"
    );
    assert_eq!(
        per_rule["deprecated-shim"], 2,
        "allow(deprecated) + run_configured call: {per_rule:?}"
    );
    assert_eq!(per_rule["missing-docs"], 1, "{per_rule:?}");
    // The workspace-scoped rules, one planted violation each:
    assert_eq!(
        per_rule["dead-pub-item"], 2,
        "orphan_api + legacy_entry: {per_rule:?}"
    );
    assert_eq!(
        per_rule["dependency-cycle"], 2,
        "both edges of the cyc_a <-> cyc_b ring: {per_rule:?}"
    );
    assert_eq!(
        per_rule["deprecated-shim-expiry"], 1,
        "#[deprecated] legacy_entry shim: {per_rule:?}"
    );
    assert_eq!(
        per_rule["metrics-registry-drift"], 2,
        "never-published registry entry + rogue publish: {per_rule:?}"
    );
    assert_eq!(
        per_rule["stale-waiver"], 2,
        "useless waiver + unknown-rule waiver: {per_rule:?}"
    );
    assert_eq!(report.waived, 1, "the waived unwrap counts as waived");
    // Findings carry fixture-relative paths for stable reports, and every
    // finding's scope matches its rule's declared scope.
    for f in &report.findings {
        assert!(f.file.starts_with("crates/"), "{f}");
        assert_eq!(f.scope, rule_scope(&f.rule), "{f}");
    }
    // `fixture.published` is registered *and* published: the drift rule
    // must leave both sides alone.
    assert!(
        !report.render_text().contains("fixture.published"),
        "registered+published metric must not be flagged"
    );
    // The serve crate is on the deterministic list: its planted HashMap
    // must surface as exactly one file-scoped nondeterminism finding.
    let serve: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/serve/src/planted.rs" && f.scope == Scope::File)
        .collect();
    assert_eq!(serve.len(), 1, "{serve:?}");
    assert_eq!(serve[0].rule, "nondeterminism");
}

#[test]
fn drift_rule_is_falsifiable_on_the_fixture_tree() {
    // Removing a *published* name from the registry index must convert
    // its publish sites into fresh drift findings — proving the rule
    // reads the registry rather than pattern-matching the fixture.
    let opts = LintOptions::default();
    let mut index = analyze_root(fixture_root()).expect("fixture tree lints");
    let before = index.run(&opts).per_rule()["metrics-registry-drift"];
    index.remove_required_metric("fixture.published");
    let report = index.run(&opts);
    assert_eq!(report.per_rule()["metrics-registry-drift"], before + 1);
    assert!(
        report.render_text().contains("fixture.published"),
        "the now-unregistered publish site must be flagged:\n{}",
        report.render_text()
    );
}

#[test]
fn the_workspace_lints_clean() {
    let report = lint_workspace(workspace_root()).expect("workspace lints");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render_text()
    );
}

#[test]
fn jsonl_export_of_fixture_findings_parses() {
    let report = lint_workspace(fixture_root()).expect("fixture tree lints");
    for line in report.to_jsonl().lines() {
        let v: Value = serde_json::from_str(line).expect("valid JSON line");
        let Value::Object(map) = v else {
            panic!("record is not an object: {line}");
        };
        assert_eq!(map["type"], Value::String("lint.finding".into()));
        assert!(matches!(map["rule"], Value::String(_)));
    }
}
