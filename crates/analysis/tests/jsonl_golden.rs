//! Golden-file test for the `lint.finding` JSONL reporter.
//!
//! Downstream tooling (the CI gate, log scrapers) keys on the exact
//! byte-level shape of these records: alphabetical field order from the
//! vendored serde's `BTreeMap` objects, the `scope` field introduced
//! with the workspace rules, one record per line, sorted findings. The
//! golden fixture pins all of it. Any intentional format change must
//! regenerate the fixture (`UPDATE_GOLDEN=1 cargo test -p pccs-analysis
//! --test jsonl_golden`) and the diff reviews as part of the change.

use pccs_analysis::report::{Finding, LintReport, Scope};
use std::path::PathBuf;

fn fixed_report() -> LintReport {
    let finding = |rule: &str, scope, file: &str, line, message: &str| Finding {
        rule: rule.to_owned(),
        scope,
        file: file.to_owned(),
        line,
        message: message.to_owned(),
    };
    let mut report = LintReport {
        findings: vec![
            // Deliberately out of order: to_jsonl must emit sorted.
            finding(
                "dead-pub-item",
                Scope::Workspace,
                "crates/soc/src/corun.rs",
                41,
                "pub fn `orphan` is referenced nowhere else in the workspace",
            ),
            finding(
                "hot-path-panic",
                Scope::File,
                "crates/dram/src/bank.rs",
                7,
                ".unwrap() in simulator hot-path code",
            ),
            finding(
                "metrics-registry-drift",
                Scope::Workspace,
                "crates/serve/src/slo.rs",
                109,
                "metric `serve.rogue` is published here but absent from \
                 pccs_bench::REQUIRED_METRICS",
            ),
        ],
        files_scanned: 3,
        lines_scanned: 420,
        waived: 1,
    };
    report.sort();
    report
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("lint_findings.jsonl")
}

#[test]
fn jsonl_output_matches_golden_fixture() {
    let text = fixed_report().to_jsonl();

    // Structural invariants the fixture must embody, independent of its
    // exact bytes: one record per finding, every record carries the
    // type tag and a lowercase scope, and keys are alphabetical.
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in &lines {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        let obj = match v {
            serde::Value::Object(m) => m,
            other => panic!("record is not an object: {other:?}"),
        };
        let keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec!["file", "line", "message", "rule", "scope", "type"],
            "field order must stay alphabetical and complete"
        );
        assert!(matches!(
            &obj["scope"],
            serde::Value::String(s) if s == "file" || s == "workspace"
        ));
        assert_eq!(obj["type"], serde::Value::String("lint.finding".into()));
    }

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        text,
        golden,
        "JSONL output diverged from {}; regenerate with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}
