//! Contract of the diff-aware mode (`pccs lint --changed <git-ref>`):
//! its findings are a strict subset of the full run's, and on a
//! single-file diff it is decisively cheaper than the full analysis —
//! that cheapness is the whole reason the CI gate can run per-PR.

use pccs_analysis::workspace::{analyze_root, lint_changed, LintOptions};
use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixture-tree"))
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn changed_findings_are_a_strict_subset_of_the_full_run() {
    let opts = LintOptions::default();
    let full = analyze_root(fixture_root())
        .expect("fixture lints")
        .run(&opts);
    // Every single-file diff must report a subset of the full run — no
    // finding may appear only under --changed (that would make the gate
    // flag code a full run blesses).
    let changed_paths = [
        "crates/serve/src/planted.rs",
        "crates/dram/src/lib.rs",
        "crates/dram/src/cyc_a.rs",
        "crates/bench/src/lib.rs",
    ];
    for path in changed_paths {
        let changed =
            lint_changed(fixture_root(), &[path.to_owned()], &opts).expect("changed-mode lints");
        for f in &changed.findings {
            assert!(
                full.findings.contains(f),
                "--changed {path} surfaced a finding the full run lacks: {f}"
            );
        }
        // Findings in the diffed file itself are never dropped.
        let full_here = full.findings.iter().filter(|f| f.file == path).count();
        let changed_here = changed.findings.iter().filter(|f| f.file == path).count();
        assert_eq!(
            changed_here, full_here,
            "--changed {path} must keep that file's own findings"
        );
    }
}

#[test]
fn changed_mode_accepts_non_source_and_unknown_paths() {
    let opts = LintOptions::default();
    // git diff output routinely includes docs, scripts, and deleted
    // files; none of these may panic or produce findings.
    let changed = lint_changed(
        fixture_root(),
        &[
            "README.md".to_owned(),
            "scripts/check.sh".to_owned(),
            "crates/dram/src/deleted_long_ago.rs".to_owned(),
        ],
        &opts,
    )
    .expect("non-source diffs lint");
    assert!(changed.is_clean(), "{}", changed.render_text());
}

#[test]
fn changed_mode_is_decisively_cheaper_on_a_single_file_diff() {
    let root = workspace_root();
    let opts = LintOptions::default();
    let diff = ["crates/soc/src/corun.rs".to_owned()];
    // Warm the page cache so both measurements see the same I/O cost.
    let _ = analyze_root(root).expect("workspace lints").run(&opts);
    let full_wall = pccs_bench::best_of(3, || {
        let _ = analyze_root(root).expect("workspace lints").run(&opts);
    });
    let changed_wall = pccs_bench::best_of(3, || {
        let _ = lint_changed(root, &diff, &opts).expect("changed-mode lints");
    });
    assert!(
        changed_wall < 0.25 * full_wall,
        "--changed on a one-file diff took {changed_wall:.4}s vs {full_wall:.4}s full \
         ({:.0}% — the diff-aware gate must stay under 25%)",
        100.0 * changed_wall / full_wall
    );
}
