//! Fixture metrics registry for the drift rule. Never compiled —
//! consumed by the `fixtures` integration test.

/// Names a valid fixture report must carry. `fixture.never_published`
/// is planted: no crate publishes it, so the drift rule must flag the
/// registry entry itself.
pub const REQUIRED_METRICS: &[&str] = &[
    "fixture.published",
    "fixture.never_published",
];
