//! Seeded violation for the serving crate: `serve` is on the
//! deterministic-crates list, so an unordered map in non-test code must
//! trip the nondeterminism rule (iteration order would leak into the
//! serving loop's event order).

/// A queue keyed by request class with unstable iteration order.
pub fn planted_queue() -> std::collections::HashMap<String, u64> {
    Default::default()
}
