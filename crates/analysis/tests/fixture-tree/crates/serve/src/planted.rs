//! Seeded violation for the serving crate: `serve` is on the
//! deterministic-crates list, so an unordered map in non-test code must
//! trip the nondeterminism rule (iteration order would leak into the
//! serving loop's event order).

/// A queue keyed by request class with unstable iteration order.
pub fn planted_queue() -> std::collections::HashMap<String, u64> {
    Default::default()
}

/// Publishes the registered fixture counter plus a rogue one the
/// registry has never heard of — the drift rule must flag the rogue
/// publish site and leave the registered one alone.
pub fn publish() {
    metrics::add("fixture.published", 1);
    metrics::add("fixture.rogue", 1);
}

/// Nothing to suppress here: both waivers below are stale. The first
/// names a real rule that produces no finding on these lines; the
/// second names a rule that does not exist at all.
pub fn tidy() -> u32 {
    // pccs-lint: allow(hot-path-panic)
    // pccs-lint: allow(no-such-rule)
    42
}
