//! Seeded-violation fixture: every rule must fire on this file.
//! Never compiled — consumed by the `fixtures` integration test.

use std::collections::HashMap;

pub fn undocumented_helper(x: Option<u32>) -> u32 {
    // hot-path-panic: unwrap in a dram src file.
    x.unwrap()
}

/// Documented, but panics.
pub fn boom() {
    panic!("seeded violation");
}

/// Wall-clock in sim code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Waived unwrap — must count as waived, not as a finding.
pub fn waived(x: Option<u32>) -> u32 {
    x.unwrap() // pccs-lint: allow(hot-path-panic)
}

/// Calls the deprecated shim.
pub fn old_api(sim: &mut CoRunSim) {
    #[allow(deprecated)]
    let _ = sim.run_configured(1_000);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        assert!(m.is_empty() || m.len().checked_add(1).unwrap() > 0);
    }
}
