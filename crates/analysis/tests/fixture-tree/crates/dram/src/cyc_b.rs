//! Other half of the planted dependency cycle: `cyc_b` uses `cyc_a`.

use crate::cyc_a::Shared;

/// Holds the shared type from the sibling module.
pub fn helper() -> Option<Shared> {
    None
}
