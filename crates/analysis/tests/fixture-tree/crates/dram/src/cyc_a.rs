//! One half of the planted dependency cycle: `cyc_a` uses `cyc_b`.

use crate::cyc_b::helper;

/// A type `cyc_b` imports right back, closing the cycle.
pub struct Shared;

/// Calls across the cycle.
pub fn entry() {
    helper();
}
