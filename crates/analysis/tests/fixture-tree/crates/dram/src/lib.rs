//! Fixture crate root: declaring the seeded modules makes the dram
//! fixture a *library* crate, which is what arms the dead-pub-item and
//! deprecated-shim-expiry rules. Never compiled — consumed by the
//! `fixtures` integration test.

/// Seeded per-file violations.
pub mod seeded;
/// One half of the planted module cycle.
pub mod cyc_a;
/// Other half of the planted module cycle.
pub mod cyc_b;

/// Dead pub item: nothing in the fixture workspace references this.
pub fn orphan_api() -> u32 {
    41
}

/// An expired shim: deprecated *and* unreferenced, so both the
/// shim-expiry and dead-pub rules must flag it.
#[deprecated(since = "0.1.0", note = "kept one release; delete me")]
pub fn legacy_entry() {}
