//! Reference anchor: test files count as references for the dead-pub
//! rule, so everything imported here stays off its radar — keeping the
//! planted `orphan_api`/`legacy_entry` findings the only two.

use pccs_bench::REQUIRED_METRICS;
use pccs_dram::cyc_a::entry;
use pccs_dram::seeded::{boom, old_api, stamp, undocumented_helper, waived};
use pccs_serve::planted::{planted_queue, publish, tidy};
