//! Phase 1 of the workspace analysis: the per-file symbol index.
//!
//! [`index_file`] distils one lexed file into the facts the workspace
//! rules ([`crate::workspace`]) need: item definitions with visibility,
//! identifier occurrence counts (for `dead-pub-item` reference counting),
//! metric-name string literals at `metrics::` publish call sites and the
//! `REQUIRED_METRICS` registry entries (for `metrics-registry-drift`),
//! `use` paths (for the module graph in [`crate::graph`]), and
//! `#[deprecated]` attribute sites (for `deprecated-shim-expiry`).
//!
//! The index is name-based, not a resolver: two items sharing a name
//! alias each other's references. For linting that errs in the safe
//! direction — a shared name can only *suppress* a dead-pub finding,
//! never invent one — which is the right bias for a CI gate.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::METRICS_PUBLISH_FNS;
use std::collections::BTreeMap;

/// What kind of item a definition introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function, method, or trait method).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `mod` (inline or file-backed declaration).
    Mod,
    /// `type` alias (free or associated).
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `union`.
    Union,
}

impl ItemKind {
    /// Maps an item keyword to its kind; `None` for non-item keywords.
    fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "fn" => ItemKind::Fn,
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "trait" => ItemKind::Trait,
            "mod" => ItemKind::Mod,
            "type" => ItemKind::TypeAlias,
            "const" => ItemKind::Const,
            "static" => ItemKind::Static,
            "union" => ItemKind::Union,
            _ => return None,
        })
    }

    /// The keyword, for messages (`fn`, `struct`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Mod => "mod",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Union => "union",
        }
    }
}

/// Item visibility, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub` — workspace-visible public API.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One item definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemDef {
    /// The item's name.
    pub name: String,
    /// What the item is.
    pub kind: ItemKind,
    /// Its visibility.
    pub vis: Visibility,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `metrics::add/observe_max/counter/gauge("name", …)` call site with
/// a literal metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricPublish {
    /// The metric name literal.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Whether the call sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One entry of a `REQUIRED_METRICS` array literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredMetric {
    /// The metric name.
    pub name: String,
    /// 1-based line of the entry (drift findings anchor here).
    pub line: u32,
}

/// Where a `use` path starts, which decides how the module graph
/// resolves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// `use crate::…` — absolute within the defining crate.
    Crate,
    /// `use super::…` with the given number of `super` segments.
    Super(usize),
    /// `use self::…` — relative to the current module.
    SelfMod,
    /// Any other leading segment (external crate, std, 2018 uniform
    /// path) — never a module-graph edge.
    External,
}

/// One `use` declaration, reduced to what the module graph needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// How the path starts.
    pub kind: UseKind,
    /// The first path segment(s) after the prefix — one for
    /// `use crate::foo::…`, several for a group `use crate::{a, b::c}`.
    pub firsts: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// Whether the declaration sits inside a `#[cfg(test)]` region —
    /// test imports must not create module-graph edges, or two modules'
    /// tests importing each other would fake a dependency cycle.
    pub in_test: bool,
}

/// The symbol-index view of one file (phase-1 output).
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Every item definition, in source order.
    pub defs: Vec<ItemDef>,
    /// Occurrences of each identifier token, including keywords and
    /// test regions (dead-pub counts references *anywhere*, tests
    /// included).
    pub ident_counts: BTreeMap<String, usize>,
    /// Metric publish call sites with literal names.
    pub publishes: Vec<MetricPublish>,
    /// Entries of a `REQUIRED_METRICS` array defined in this file.
    pub required_metrics: Vec<RequiredMetric>,
    /// `use` declarations.
    pub uses: Vec<UsePath>,
    /// Lines of `#[deprecated]` attributes outside test regions.
    pub deprecated_attrs: Vec<u32>,
}

/// Modifier keywords that may sit between a visibility and the item
/// keyword (`pub const unsafe extern "C" fn …`). String ABI literals are
/// handled separately by token kind.
const ITEM_MODIFIERS: &[&str] = &["unsafe", "async", "extern", "default", "const"];

/// Builds the symbol index for one lexed file. `in_test` is the
/// `#[cfg(test)]` token mask from the rule engine (same length as
/// `lexed.tokens`).
pub fn index_file(lexed: &LexedFile, in_test: &[bool]) -> FileSymbols {
    let mut out = FileSymbols::default();
    let tokens = &lexed.tokens;
    for tok in tokens {
        if tok.kind == TokenKind::Ident {
            *out.ident_counts.entry(tok.text.clone()).or_insert(0) += 1;
        }
    }
    scan_defs(tokens, in_test, &mut out);
    scan_uses(tokens, in_test, &mut out);
    scan_publishes(lexed, in_test, &mut out);
    scan_required_metrics(lexed, &mut out);
    scan_deprecated_attrs(tokens, in_test, &mut out);
    out
}

fn ident_at(tokens: &[Token], k: usize) -> Option<&str> {
    tokens
        .get(k)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

fn text_at(tokens: &[Token], k: usize) -> Option<&str> {
    tokens.get(k).map(|t| t.text.as_str())
}

fn scan_defs(tokens: &[Token], in_test: &[bool], out: &mut FileSymbols) {
    for k in 0..tokens.len() {
        let Some(kind) = ident_at(tokens, k).and_then(ItemKind::from_keyword) else {
            continue;
        };
        let Some(name) = ident_at(tokens, k + 1) else {
            continue;
        };
        let prev = if k == 0 { None } else { text_at(tokens, k - 1) };
        match kind {
            // `const fn f`, `*const T`, and `<const N: usize>` generics
            // are not const items; same for `*mut`/`*const` raw pointers.
            ItemKind::Const if name == "fn" => continue,
            ItemKind::Const | ItemKind::Static
                if matches!(prev, Some("*") | Some("<") | Some(",")) =>
            {
                continue
            }
            _ => {}
        }
        // Walk back over modifiers (and an ABI string) to the token in
        // visibility position.
        let mut j = k;
        while j > 0 {
            let t = &tokens[j - 1];
            if t.kind == TokenKind::Literal || ITEM_MODIFIERS.contains(&t.text.as_str()) {
                j -= 1;
            } else {
                break;
            }
        }
        let vis = match if j == 0 { None } else { text_at(tokens, j - 1) } {
            Some("pub") => Visibility::Pub,
            Some(")") => {
                // `pub(crate)` / `pub(super)` / `pub(in path)`.
                let mut m = j - 1;
                while m > 0 && text_at(tokens, m) != Some("(") {
                    m -= 1;
                }
                if m >= 1 && text_at(tokens, m - 1) == Some("pub") {
                    Visibility::Restricted
                } else {
                    Visibility::Private
                }
            }
            _ => Visibility::Private,
        };
        out.defs.push(ItemDef {
            name: name.to_owned(),
            kind,
            vis,
            line: tokens[k].line,
            in_test: in_test[k],
        });
    }
}

fn scan_uses(tokens: &[Token], in_test: &[bool], out: &mut FileSymbols) {
    let mut k = 0;
    while k < tokens.len() {
        if ident_at(tokens, k) != Some("use") {
            k += 1;
            continue;
        }
        let line = tokens[k].line;
        let use_in_test = in_test[k];
        let mut j = k + 1;
        let double_colon =
            |j: usize| text_at(tokens, j) == Some(":") && text_at(tokens, j + 1) == Some(":");
        let kind = if ident_at(tokens, j) == Some("crate") && double_colon(j + 1) {
            j += 3;
            UseKind::Crate
        } else if ident_at(tokens, j) == Some("self") && double_colon(j + 1) {
            j += 3;
            UseKind::SelfMod
        } else {
            let mut supers = 0usize;
            while ident_at(tokens, j) == Some("super") && double_colon(j + 1) {
                supers += 1;
                j += 3;
            }
            if supers > 0 {
                UseKind::Super(supers)
            } else {
                UseKind::External
            }
        };
        let mut firsts = Vec::new();
        if text_at(tokens, j) == Some("{") {
            // A group: the first identifier of each top-level element.
            let mut depth = 0usize;
            let mut expect = false;
            while j < tokens.len() && text_at(tokens, j) != Some(";") {
                match text_at(tokens, j).unwrap_or_default() {
                    "{" => {
                        depth += 1;
                        expect = depth == 1;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        expect = false;
                    }
                    "," => expect = depth == 1,
                    _ => {
                        if expect {
                            if let Some(id) = ident_at(tokens, j) {
                                firsts.push(id.to_owned());
                            }
                        }
                        expect = false;
                    }
                }
                j += 1;
            }
        } else if let Some(id) = ident_at(tokens, j) {
            firsts.push(id.to_owned());
        }
        out.uses.push(UsePath {
            kind,
            firsts,
            line,
            in_test: use_in_test,
        });
        // Skip to the end of the statement.
        while j < tokens.len() && text_at(tokens, j) != Some(";") {
            j += 1;
        }
        k = j + 1;
    }
}

fn scan_publishes(lexed: &LexedFile, in_test: &[bool], out: &mut FileSymbols) {
    let tokens = &lexed.tokens;
    for k in 0..tokens.len() {
        if ident_at(tokens, k) != Some("metrics")
            || text_at(tokens, k + 1) != Some(":")
            || text_at(tokens, k + 2) != Some(":")
        {
            continue;
        }
        let Some(func) = ident_at(tokens, k + 3) else {
            continue;
        };
        if !METRICS_PUBLISH_FNS.contains(&func) || text_at(tokens, k + 4) != Some("(") {
            continue;
        }
        let mut a = k + 5;
        if text_at(tokens, a) == Some("&") {
            a += 1;
        }
        if let Some(name) = lexed.strings.get(&a) {
            out.publishes.push(MetricPublish {
                name: name.clone(),
                line: tokens[k].line,
                in_test: in_test[k],
            });
        }
    }
}

fn scan_required_metrics(lexed: &LexedFile, out: &mut FileSymbols) {
    let tokens = &lexed.tokens;
    for k in 0..tokens.len() {
        if ident_at(tokens, k) != Some("REQUIRED_METRICS") {
            continue;
        }
        // Only the defining site has `… = &[ "…", … ]` shortly after the
        // name; reference sites (loops, `contains` calls) do not.
        let mut j = k + 1;
        let mut eq = None;
        while j < tokens.len() && j < k + 14 {
            match text_at(tokens, j) {
                Some("=") => {
                    eq = Some(j);
                    break;
                }
                Some(";") | Some("{") | Some(")") => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { continue };
        let mut j = eq + 1;
        if text_at(tokens, j) == Some("&") {
            j += 1;
        }
        if text_at(tokens, j) != Some("[") {
            continue;
        }
        j += 1;
        while j < tokens.len() && text_at(tokens, j) != Some("]") {
            if let Some(name) = lexed.strings.get(&j) {
                out.required_metrics.push(RequiredMetric {
                    name: name.clone(),
                    line: tokens[j].line,
                });
            }
            j += 1;
        }
    }
}

fn scan_deprecated_attrs(tokens: &[Token], in_test: &[bool], out: &mut FileSymbols) {
    for k in 2..tokens.len() {
        // `# [ deprecated` — but not `#[allow(deprecated)]`, where the
        // token before `deprecated` is `(`.
        if ident_at(tokens, k) == Some("deprecated")
            && text_at(tokens, k - 1) == Some("[")
            && text_at(tokens, k - 2) == Some("#")
            && !in_test[k]
        {
            out.deprecated_attrs.push(tokens[k].line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn index(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        index_file(&lexed, &mask)
    }

    #[test]
    fn defs_record_kind_visibility_and_line() {
        let src = "/// D.\npub fn api() {}\npub(crate) struct Internal;\nenum Private { A }\npub const LIMIT: u32 = 4;\n";
        let defs = index(src).defs;
        assert_eq!(defs.len(), 4);
        assert_eq!(
            (
                defs[0].name.as_str(),
                defs[0].kind,
                defs[0].vis,
                defs[0].line
            ),
            ("api", ItemKind::Fn, Visibility::Pub, 2)
        );
        assert_eq!(defs[1].vis, Visibility::Restricted);
        assert_eq!(defs[2].vis, Visibility::Private);
        assert_eq!(
            (defs[3].name.as_str(), defs[3].kind),
            ("LIMIT", ItemKind::Const)
        );
    }

    #[test]
    fn const_fn_pointers_and_generics_are_not_const_items() {
        let src = "pub const fn fast() -> u32 { 1 }\nfn raw(p: *const u8) {}\nfn arr<const N: usize>() {}\nstruct M<T, const K: usize>(T);\n";
        let defs = index(src).defs;
        let consts: Vec<_> = defs.iter().filter(|d| d.kind == ItemKind::Const).collect();
        assert!(consts.is_empty(), "{consts:?}");
        // `pub const fn fast` is a Pub fn (walk-back crosses `const`).
        let fast = defs.iter().find(|d| d.name == "fast").unwrap();
        assert_eq!((fast.kind, fast.vis), (ItemKind::Fn, Visibility::Pub));
    }

    #[test]
    fn abi_strings_do_not_hide_visibility() {
        let src = "pub unsafe extern \"C\" fn hook() {}\n";
        let defs = index(src).defs;
        assert_eq!(defs[0].vis, Visibility::Pub);
        assert_eq!(defs[0].name, "hook");
    }

    #[test]
    fn test_region_defs_are_marked() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let defs = index(src).defs;
        assert!(!defs.iter().find(|d| d.name == "real").unwrap().in_test);
        assert!(defs.iter().find(|d| d.name == "helper").unwrap().in_test);
        assert!(defs.iter().find(|d| d.name == "tests").unwrap().in_test);
    }

    #[test]
    fn ident_counts_include_every_occurrence() {
        let src = "pub fn thing() {}\nfn call() { thing(); thing(); }\n";
        let counts = index(src).ident_counts;
        assert_eq!(counts["thing"], 3);
        assert_eq!(counts["call"], 1);
    }

    #[test]
    fn use_paths_resolve_prefix_and_first_segments() {
        let src = "use crate::engine::MemoryEngine;\nuse super::super::util;\nuse self::local::Item;\nuse std::collections::BTreeMap;\nuse crate::{alpha, beta::Thing, gamma::{X, Y}};\n";
        let uses = index(src).uses;
        assert_eq!(uses.len(), 5);
        assert_eq!(uses[0].kind, UseKind::Crate);
        assert_eq!(uses[0].firsts, vec!["engine"]);
        assert_eq!(uses[1].kind, UseKind::Super(2));
        assert_eq!(uses[1].firsts, vec!["util"]);
        assert_eq!(uses[2].kind, UseKind::SelfMod);
        assert_eq!(uses[3].kind, UseKind::External);
        assert_eq!(uses[4].firsts, vec!["alpha", "beta", "gamma"]);
        assert!(uses.iter().all(|u| !u.in_test));
    }

    #[test]
    fn test_region_uses_are_marked() {
        let src = "use crate::real;\n#[cfg(test)]\nmod tests {\n    use crate::other;\n}\n";
        let uses = index(src).uses;
        assert_eq!(uses.len(), 2);
        assert!(!uses[0].in_test);
        assert!(uses[1].in_test);
    }

    #[test]
    fn metric_publishes_capture_literal_names() {
        let src = "fn f() {\n    metrics::add(\"dram.cycles\", n);\n    metrics::counter(\"dram.bytes\").get();\n    metrics::add(&name, 1);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { metrics::add(\"test.only\", 1); }\n}\n";
        let pubs = index(src).publishes;
        let names: Vec<_> = pubs.iter().map(|p| p.name.as_str()).collect();
        // `&name` has no literal; the test-region publish is marked.
        assert_eq!(names, vec!["dram.cycles", "dram.bytes", "test.only"]);
        assert!(pubs[2].in_test);
        assert!(!pubs[0].in_test);
    }

    #[test]
    fn required_metrics_entries_come_from_the_definition_only() {
        let src = "pub const REQUIRED_METRICS: &[&str] = &[\n    \"dram.cycles\",\n    \"sim.runs\",\n];\nfn check() { for m in REQUIRED_METRICS { look(m); } }\n";
        let req = index(src).required_metrics;
        assert_eq!(req.len(), 2);
        assert_eq!((req[0].name.as_str(), req[0].line), ("dram.cycles", 2));
        assert_eq!((req[1].name.as_str(), req[1].line), ("sim.runs", 3));
    }

    #[test]
    fn deprecated_attributes_are_sited_but_allows_are_not() {
        let src = "#[deprecated(note = \"gone next release\")]\npub fn shim() {}\n#[allow(deprecated)]\nfn caller() {}\n#[cfg(test)]\nmod tests {\n    #[deprecated]\n    fn old() {}\n}\n";
        let attrs = index(src).deprecated_attrs;
        assert_eq!(attrs, vec![1]);
    }
}
