//! Repo-specific static analysis for the PCCS workspace: `pccs-lint`.
//!
//! The simulators promise two properties no general-purpose tool checks:
//! hot paths never panic (a co-run sweep must not die mid-batch on a
//! malformed config) and results are bit-identical across runs and
//! `--jobs` settings (nondeterministic iteration order or wall-clock reads
//! silently break profile caching and regression baselines). This crate
//! enforces those invariants — plus rustdoc coverage and a ban on new
//! calls to deprecated shims — with a hand-rolled lexer ([`lexer`]) and a
//! small rule engine ([`rules`]), because the build environment has no
//! registry access for `syn`-based tooling.
//!
//! Run it via `cargo run -p pccs-analysis --bin pccs-lint`, the `pccs lint`
//! CLI subcommand, or `scripts/check.sh`. See [`rules`] for the rule table
//! and the `// pccs-lint: allow(<rule>)` waiver syntax.
//!
//! # Example
//!
//! ```
//! use pccs_analysis::rules::lint_source;
//!
//! let report = lint_source(
//!     "crates/dram/src/example.rs",
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//! );
//! assert_eq!(report.findings[0].rule, "hot-path-panic");
//! ```

/// Per-crate module graph and cycle detection.
pub mod graph;
/// A hand-rolled Rust lexer, just deep enough for linting.
pub mod lexer;
/// Lint findings and machine-readable reports.
pub mod report;
/// The file-scoped lint rules and the engine that applies them.
pub mod rules;
/// The per-file symbol index (phase 1 of the workspace analysis).
pub mod symbols;
/// The cross-file workspace rules (phase 2) and diff-aware linting.
pub mod workspace;

pub use report::{Finding, LintReport};
pub use rules::lint_source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
/// Hidden directories and `target/` are skipped.
pub(crate) fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/crates` with the file-scoped
/// *and* workspace-scoped rules, returning the merged report. Paths in
/// findings are relative to `root`. Equivalent to
/// [`workspace::analyze_root`] followed by [`workspace::WorkspaceIndex::run`]
/// with default options.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree; a missing
/// `crates/` directory is reported as [`io::ErrorKind::NotFound`].
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    Ok(workspace::analyze_root(root)?.run(&workspace::LintOptions::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_finds_this_crate() {
        // The analysis crate lives two levels below the repo root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let report = lint_workspace(root).expect("workspace lints");
        assert!(
            report.files_scanned > 50,
            "expected a real workspace walk, scanned {}",
            report.files_scanned
        );
    }

    #[test]
    fn missing_root_is_a_not_found_error() {
        let err = lint_workspace(Path::new("/nonexistent-pccs-root")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
