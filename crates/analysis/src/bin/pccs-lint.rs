//! `pccs-lint`: lint the workspace against the PCCS repo invariants.
//!
//! ```text
//! pccs-lint [--root <path>] [--json] [--list-rules]
//! ```
//!
//! Exits 0 when clean, 1 when findings survive waivers, 2 on usage or I/O
//! errors. `--json` emits one `lint.finding` JSON record per line (the
//! telemetry JSONL format) instead of the text report.

use pccs_analysis::{lint_workspace, rules::RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: pccs-lint [--root <path>] [--json] [--list-rules]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--json" => json = true,
            "--list-rules" => {
                for rule in RULE_NAMES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: pccs-lint [--root <path>] [--json] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("pccs-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.to_jsonl());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
