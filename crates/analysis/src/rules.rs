//! The lint rules and the engine that applies them to one file.
//!
//! # Rules
//!
//! | rule | scope | what it flags |
//! |------|-------|---------------|
//! | `hot-path-panic` | `dram`/`soc`/`core` non-test code | `.unwrap()`, `.expect(...)`, `panic!` — simulator hot paths must return errors. `assert!`/`debug_assert!`/`unreachable!` are deliberately *not* flagged: contract checks are welcome. |
//! | `nondeterminism` | sim/experiment crates non-test code | `Instant::now`, `SystemTime`, `HashMap`, `HashSet`, `thread_rng` — results must be byte-identical across runs and `--jobs` settings. |
//! | `deprecated-shim` | all crates, non-test code | calls to the deprecated `CoRunSim::run_configured` shim and `#[allow(deprecated)]` escapes (the only way a call to the deprecated `run` shim survives `-D warnings`). |
//! | `missing-docs` | library crates, non-test code | `pub` items without a rustdoc comment directly above. |
//! | `raw-stderr` | `dram`/`soc`/`core`/`sched`/`experiments` library code | `println!`/`eprintln!`/`print!`/`eprint!` — library crates must route output through telemetry or return it to the CLI layer, not write to the process streams. |
//! | `hot-loop-metrics` | `dram`/`soc` library code | `metrics::add`/`observe_max`/`counter`/`gauge` lexically inside a `for`/`while`/`loop` body — each call takes the registry lock, so per-cycle loops must accumulate locally and publish once after the loop (the §9 overhead budget depends on it). |
//!
//! Findings are suppressed with a `// pccs-lint: allow(<rule>)` comment on
//! the finding's line or the line directly above — waivers are visible in
//! review and greppable, unlike a config file.
//!
//! # Test code
//!
//! All rules exempt test code: files under `tests/`, `benches/`,
//! `examples/`, and `#[cfg(test)]`-gated regions inside library files
//! (found by brace-matching over the token stream).

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::report::{Finding, LintReport, Scope};

/// Stable names of every rule, in report order: the file-scoped phase-1
/// rules first, then the workspace-scoped phase-2 rules implemented in
/// [`crate::workspace`].
pub const RULE_NAMES: &[&str] = &[
    "hot-path-panic",
    "nondeterminism",
    "deprecated-shim",
    "missing-docs",
    "raw-stderr",
    "hot-loop-metrics",
    "dead-pub-item",
    "metrics-registry-drift",
    "stale-waiver",
    "dependency-cycle",
    "deprecated-shim-expiry",
];

/// The [`Scope`] of a rule by name. Unknown names are file-scoped (the
/// conservative default for forward compatibility in report consumers).
pub fn rule_scope(rule: &str) -> Scope {
    match rule {
        "dead-pub-item"
        | "metrics-registry-drift"
        | "stale-waiver"
        | "dependency-cycle"
        | "deprecated-shim-expiry" => Scope::Workspace,
        _ => Scope::File,
    }
}

/// Crates whose non-test code is a simulator hot path.
const HOT_PATH_CRATES: &[&str] = &["dram", "soc", "core"];

/// Crates whose non-test code must be deterministic.
const DETERMINISTIC_CRATES: &[&str] = &[
    "dram",
    "soc",
    "core",
    "workloads",
    "experiments",
    "sched",
    "serve",
];

/// Identifiers that introduce nondeterminism on sight.
const NONDETERMINISTIC_IDENTS: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Crates whose library code must not write to stdout/stderr directly;
/// output routes through telemetry reports or returns to the CLI layer.
const QUIET_CRATES: &[&str] = &["dram", "soc", "core", "sched", "serve", "experiments"];

/// Print-family macros the `raw-stderr` rule flags.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// Crates whose loops are per-cycle simulator inner loops.
const HOT_LOOP_CRATES: &[&str] = &["dram", "soc"];

/// Metrics-registry entry points that take the registry lock; one call
/// per loop iteration is the overhead the `pccs bench` budget guards
/// against. Accumulate locally, publish once after the loop. Shared with
/// the symbol index, which records the metric-name literal at these call
/// sites for the `metrics-registry-drift` rule.
pub(crate) const METRICS_PUBLISH_FNS: &[&str] = &["add", "observe_max", "counter", "gauge"];

/// How a file is situated relative to the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/` (`dram`, `soc`, …).
    pub crate_name: String,
    /// Whether the path alone marks it as test/bench/example code.
    pub is_test_path: bool,
    /// Whether it is a binary target (`src/bin/**` or `src/main.rs`).
    pub is_bin: bool,
}

/// Classifies a repo-relative path. Returns `None` for files the linter
/// ignores entirely (non-Rust, outside `crates/`, generated output).
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let norm = rel_path.replace('\\', "/");
    if !norm.ends_with(".rs") {
        return None;
    }
    let rest = norm.strip_prefix("crates/")?;
    let (crate_name, inner) = rest.split_once('/')?;
    if inner.starts_with("target/") {
        return None;
    }
    let is_test_path = inner.starts_with("tests/")
        || inner.starts_with("benches/")
        || inner.starts_with("examples/")
        || inner == "build.rs";
    let is_bin = inner.starts_with("src/bin/") || inner == "src/main.rs";
    Some(FileClass {
        crate_name: crate_name.to_owned(),
        is_test_path,
        is_bin,
    })
}

/// Marks every token inside a `#[cfg(test)]`-gated item.
///
/// Finds each `# [ cfg ( test ) ]` attribute sequence, then extends the
/// region over the following item: to the matching `}` if the item is
/// brace-delimited, or to the terminating `;` otherwise. Comments and
/// string contents are already stripped, so brace counting is exact.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while text(j) == Some("#") && text(j + 1) == Some("[") {
            let mut depth = 0usize;
            j += 1;
            loop {
                match text(j) {
                    Some("[") => depth += 1,
                    Some("]") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    None => break,
                    _ => {}
                }
                j += 1;
            }
        }
        // Extend over the item body.
        let mut depth = 0usize;
        let end = loop {
            match text(j) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                Some(";") if depth == 0 => break j,
                None => break j.min(tokens.len()),
                _ => {}
            }
            j += 1;
        };
        for m in mask
            .iter_mut()
            .take((end + 1).min(tokens.len()))
            .skip(start)
        {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

struct RuleCtx<'a> {
    class: &'a FileClass,
    rel_path: &'a str,
    lexed: &'a LexedFile,
    in_test: &'a [bool],
}

impl RuleCtx<'_> {
    fn ident(&self, k: usize) -> Option<&str> {
        self.lexed
            .tokens
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
    }

    fn text(&self, k: usize) -> Option<&str> {
        self.lexed.tokens.get(k).map(|t| t.text.as_str())
    }

    fn finding(&self, rule: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_owned(),
            scope: Scope::File,
            file: self.rel_path.to_owned(),
            line,
            message,
        }
    }
}

fn hot_path_panic(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !HOT_PATH_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.is_test_path
        || ctx.class.is_bin
    {
        return;
    }
    for (k, tok) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test[k] || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" | "expect"
                if k > 0 && ctx.text(k - 1) == Some(".") && ctx.text(k + 1) == Some("(") =>
            {
                out.push(ctx.finding(
                    "hot-path-panic",
                    tok.line,
                    format!(
                        ".{}() in simulator hot-path code; return a typed error \
                         or document a waiver",
                        tok.text
                    ),
                ));
            }
            "panic" if ctx.text(k + 1) == Some("!") => {
                out.push(
                    ctx.finding(
                        "hot-path-panic",
                        tok.line,
                        "panic! in simulator hot-path code; return a typed error \
                     or document a waiver"
                            .to_owned(),
                    ),
                );
            }
            _ => {}
        }
    }
}

fn nondeterminism(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.class.crate_name.as_str()) || ctx.class.is_test_path {
        return;
    }
    for (k, tok) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test[k] || tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if NONDETERMINISTIC_IDENTS.contains(&name) {
            let hint = match name {
                "HashMap" | "HashSet" => "iteration order varies; use BTreeMap/BTreeSet",
                "SystemTime" => "wall-clock state; thread a timestamp in instead",
                "thread_rng" => "unseeded RNG; use a seeded SmallRng",
                _ => "nondeterministic",
            };
            out.push(ctx.finding(
                "nondeterminism",
                tok.line,
                format!("{name} in deterministic sim/experiment code ({hint})"),
            ));
        } else if name == "Instant"
            && ctx.text(k + 1) == Some(":")
            && ctx.text(k + 2) == Some(":")
            && ctx.ident(k + 3) == Some("now")
        {
            out.push(
                ctx.finding(
                    "nondeterminism",
                    tok.line,
                    "Instant::now in deterministic sim/experiment code; simulated \
                 time must come from the cycle counter"
                        .to_owned(),
                ),
            );
        }
    }
}

fn deprecated_shim(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_test_path {
        return;
    }
    for (k, tok) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test[k] || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "run_configured" if k > 0 && matches!(ctx.text(k - 1), Some(".") | Some(":")) => {
                out.push(
                    ctx.finding(
                        "deprecated-shim",
                        tok.line,
                        "call to deprecated CoRunSim::run_configured; use the \
                     builder API (place/check_conformance/run_at)"
                            .to_owned(),
                    ),
                );
            }
            "tick" if ctx.text(k.wrapping_sub(1)) == Some(".") && ctx.text(k + 1) == Some("(") => {
                out.push(
                    ctx.finding(
                        "deprecated-shim",
                        tok.line,
                        "call to deprecated MemoryController::tick; use \
                     tick_into with a reused completion buffer, or drive the \
                     controller through the MemoryEngine trait"
                            .to_owned(),
                    ),
                );
            }
            // `#[allow(deprecated)]` is the only way a call to the
            // deprecated `run` shim survives `-D warnings`.
            "deprecated"
                if ctx.text(k.wrapping_sub(1)) == Some("(")
                    && ctx.ident(k.wrapping_sub(2)) == Some("allow")
                    && ctx.text(k.wrapping_sub(3)) == Some("[") =>
            {
                out.push(
                    ctx.finding(
                        "deprecated-shim",
                        tok.line,
                        "#[allow(deprecated)] in non-test code; migrate off the \
                     deprecated API instead of silencing the warning"
                            .to_owned(),
                    ),
                );
            }
            _ => {}
        }
    }
}

fn raw_stderr(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !QUIET_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.is_test_path
        || ctx.class.is_bin
    {
        return;
    }
    for (k, tok) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test[k] || tok.kind != TokenKind::Ident {
            continue;
        }
        if PRINT_MACROS.contains(&tok.text.as_str()) && ctx.text(k + 1) == Some("!") {
            out.push(ctx.finding(
                "raw-stderr",
                tok.line,
                format!(
                    "{}! in library code; route output through telemetry or \
                     return it to the CLI layer",
                    tok.text
                ),
            ));
        }
    }
}

/// Marks every token inside the body of a lexical `for`/`while`/`loop`.
///
/// Loop headers are found by keyword; the body is the first `{` at
/// paren/bracket depth zero after the header (struct literals are not
/// legal in loop-header expression position, so that brace is always the
/// body), then brace-matched to its close. A `for` with no `in` before
/// the brace is `impl Trait for Type` or a `for<'a>` bound, not a loop —
/// scanning resumes inside its braces so real loops nested there are
/// still found. Comments and strings are already stripped by the lexer,
/// so brace counting is exact.
fn loop_body_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    let mut i = 0;
    while i < tokens.len() {
        let keyword = text(i);
        if !matches!(keyword, Some("for" | "while" | "loop")) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut saw_in = false;
        let body_open = loop {
            match text(j) {
                Some("(" | "[") => depth += 1,
                Some(")" | "]") => depth = depth.saturating_sub(1),
                Some("in") if depth == 0 => saw_in = true,
                Some("{") if depth == 0 => break Some(j),
                // A terminator before any body brace: not a loop header
                // (e.g. `for` inside a use path or a macro fragment).
                Some(";" | "}") if depth == 0 => break None,
                None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j.max(i + 1);
            continue;
        };
        if keyword == Some("for") && !saw_in {
            i = open;
            continue;
        }
        let mut braces = 0usize;
        let mut end = open;
        for (k, tok) in tokens.iter().enumerate().skip(open) {
            match tok.text.as_str() {
                "{" => braces += 1,
                "}" => {
                    braces -= 1;
                    if braces == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
            end = k;
        }
        for m in mask.iter_mut().take(end + 1).skip(open) {
            *m = true;
        }
        // Resume inside the body so nested loops are processed too (the
        // re-marking is idempotent).
        i = open + 1;
    }
    mask
}

fn hot_loop_metrics(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !HOT_LOOP_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.is_test_path
        || ctx.class.is_bin
    {
        return;
    }
    let in_loop = loop_body_mask(&ctx.lexed.tokens);
    for (k, tok) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.in_test[k] || !in_loop[k] || tok.kind != TokenKind::Ident || tok.text != "metrics" {
            continue;
        }
        if ctx.text(k + 1) != Some(":") || ctx.text(k + 2) != Some(":") {
            continue;
        }
        let Some(func) = ctx.ident(k + 3) else {
            continue;
        };
        if METRICS_PUBLISH_FNS.contains(&func) && ctx.text(k + 4) == Some("(") {
            out.push(ctx.finding(
                "hot-loop-metrics",
                tok.line,
                format!(
                    "metrics::{func} inside a per-cycle loop takes the registry \
                     lock every iteration; accumulate locally and publish once \
                     after the loop"
                ),
            ));
        }
    }
}

/// Item keywords that may directly follow `pub` and need rustdoc.
const PUB_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union", "unsafe", "async",
];

fn missing_docs(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_test_path || ctx.class.is_bin {
        return;
    }
    let tokens = &ctx.lexed.tokens;
    for (k, tok) in tokens.iter().enumerate() {
        if ctx.in_test[k] || tok.kind != TokenKind::Ident || tok.text != "pub" {
            continue;
        }
        // `pub(crate)`/`pub(super)` visibility is not public API; `pub use`
        // re-exports inherit the target's docs.
        if ctx.text(k + 1) == Some("(") || ctx.ident(k + 1) == Some("use") {
            continue;
        }
        let next = match ctx.ident(k + 1) {
            Some(n) => n,
            None => continue,
        };
        let is_item = PUB_ITEM_KEYWORDS.contains(&next);
        // A plain identifier followed by `:` is a pub struct field.
        let is_field = !is_item && ctx.text(k + 2) == Some(":");
        if !is_item && !is_field {
            continue;
        }
        // Walk back over any attribute groups to the item's first line.
        let mut j = k;
        while j >= 2 && tokens[j - 1].text == "]" {
            let mut depth = 0usize;
            let mut m = j - 1;
            loop {
                match tokens[m].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            if m >= 1 && tokens[m - 1].text == "#" {
                j = m - 1;
            } else {
                break;
            }
        }
        let item_line = tokens[j].line;
        let documented = ctx.lexed.doc_lines.contains(&(item_line.saturating_sub(1)))
            || ctx.lexed.doc_lines.contains(&item_line);
        if !documented {
            let what = if is_field { "field" } else { next };
            out.push(ctx.finding(
                "missing-docs",
                tok.line,
                format!("public {what} without a rustdoc comment"),
            ));
        }
    }
}

/// Marks every token inside a `#[cfg(test)]`-gated item (public within
/// the crate so the workspace pass shares the same notion of test code).
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    test_region_mask(tokens)
}

/// Raw phase-1 findings for one lexed file, before waivers are applied.
///
/// The single-file entry point [`lint_source`] and the workspace pass in
/// [`crate::workspace`] both run the same rule set through here; only the
/// waiver application differs (the workspace pass applies waivers
/// centrally so it can afterwards detect stale ones).
pub(crate) fn file_findings(
    class: &FileClass,
    rel_path: &str,
    lexed: &LexedFile,
    in_test: &[bool],
) -> Vec<Finding> {
    let ctx = RuleCtx {
        class,
        rel_path,
        lexed,
        in_test,
    };
    let mut raw = Vec::new();
    hot_path_panic(&ctx, &mut raw);
    nondeterminism(&ctx, &mut raw);
    deprecated_shim(&ctx, &mut raw);
    missing_docs(&ctx, &mut raw);
    raw_stderr(&ctx, &mut raw);
    hot_loop_metrics(&ctx, &mut raw);
    raw
}

/// Lints one file's source text under its repo-relative path.
///
/// Returns an empty report (zero files scanned) when [`classify`] ignores
/// the path. Runs only the file-scoped rules; the workspace rules need
/// the full tree and live in [`crate::workspace`].
pub fn lint_source(rel_path: &str, src: &str) -> LintReport {
    let Some(class) = classify(rel_path) else {
        return LintReport::default();
    };
    let lexed = lex(src);
    let in_test = test_region_mask(&lexed.tokens);
    let raw = file_findings(&class, rel_path, &lexed, &in_test);

    let mut report = LintReport {
        findings: Vec::new(),
        files_scanned: 1,
        lines_scanned: lexed.lines as usize,
        waived: 0,
    };
    for f in raw {
        if lexed.is_waived(&f.rule, f.line) {
            report.waived += 1;
        } else {
            report.findings.push(f);
        }
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn classify_sorts_paths() {
        assert_eq!(
            classify("crates/dram/src/bank.rs").unwrap().crate_name,
            "dram"
        );
        assert!(
            classify("crates/dram/tests/conformance.rs")
                .unwrap()
                .is_test_path
        );
        assert!(
            classify("crates/experiments/src/bin/repro.rs")
                .unwrap()
                .is_bin
        );
        assert!(classify("README.md").is_none());
        assert!(classify("tests/model_vs_gables.rs").is_none());
        assert!(classify("vendor/rand/src/lib.rs").is_none());
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-path-panic"]
        );
        // Same code outside a hot-path crate passes.
        assert!(rules_of("crates/experiments/src/a.rs", src).is_empty());
    }

    #[test]
    fn asserts_are_not_panics() {
        let src = "fn f(x: u32) { assert!(x > 0); debug_assert_eq!(x, x); }\n";
        assert!(rules_of("crates/dram/src/a.rs", src).is_empty());
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-path-panic"]
        );
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(rules_of("crates/soc/src/a.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_region_is_not_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of("crates/soc/src/a.rs", src), vec!["hot-path-panic"]);
    }

    #[test]
    fn engine_module_is_covered_by_hot_path_rules() {
        // The event-driven memory engine lives in a hot-path,
        // deterministic crate: both rules must apply to it.
        let src = "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let rules = rules_of("crates/dram/src/engine.rs", src);
        assert_eq!(rules, vec!["nondeterminism", "hot-path-panic"]);
    }

    #[test]
    fn tick_shim_calls_are_flagged() {
        let src = "fn f(mc: &mut MemoryController) { let _ = mc.tick(0); }\n";
        assert_eq!(
            rules_of("crates/soc/src/a.rs", src),
            vec!["deprecated-shim"]
        );
        // The definition site (`fn tick`) and the replacement are fine.
        let src = "/// Docs.\npub fn tick(&mut self) {}\nfn g(mc: &mut M, out: &mut Vec<C>) { mc.tick_into(0, out); }\n";
        assert!(rules_of("crates/dram/src/a.rs", src).is_empty());
    }

    #[test]
    fn nondeterminism_sources_are_flagged() {
        let src = "use std::collections::HashMap;\nfn t() { let _ = std::time::Instant::now(); }\n";
        let rules = rules_of("crates/sched/src/a.rs", src);
        assert_eq!(rules, vec!["nondeterminism", "nondeterminism"]);
        // `Instant` alone (e.g. stored as a field type) is not flagged.
        assert!(rules_of("crates/sched/src/a.rs", "use std::time::Instant;\n").is_empty());
    }

    #[test]
    fn deprecated_shim_calls_and_escapes_are_flagged() {
        let src = "fn f(s: &mut S) { s.run_configured(1); }\n";
        assert_eq!(
            rules_of("crates/experiments/src/a.rs", src),
            vec!["deprecated-shim"]
        );
        let src = "#[allow(deprecated)]\nfn f() {}\n";
        assert_eq!(
            rules_of("crates/experiments/src/a.rs", src),
            vec!["deprecated-shim"]
        );
        // The definition site (`fn run_configured`) is not a call.
        let src = "/// Docs.\npub fn run_configured(&mut self) {}\n";
        assert!(rules_of("crates/soc/src/a.rs", src).is_empty());
        // `#[deprecated(...)]` markers are fine — they are the fix.
        let src = "#[deprecated(note = \"x\")]\nfn f() {}\n";
        assert!(rules_of("crates/soc/src/a.rs", src).is_empty());
    }

    #[test]
    fn missing_docs_flags_bare_pub_items() {
        let src = "pub fn naked() {}\n";
        assert_eq!(
            rules_of("crates/gables/src/a.rs", src),
            vec!["missing-docs"]
        );
        let src = "/// Documented.\npub fn fine() {}\n";
        assert!(rules_of("crates/gables/src/a.rs", src).is_empty());
        // Attributes between docs and item are fine.
        let src = "/// Documented.\n#[derive(Debug, Clone)]\n#[serde(rename_all = \"kebab-case\")]\npub struct S;\n";
        assert!(rules_of("crates/gables/src/a.rs", src).is_empty());
        // pub(crate) and pub use are not public API.
        let src = "pub(crate) fn internal() {}\npub use crate::other::Thing;\n";
        assert!(rules_of("crates/gables/src/a.rs", src).is_empty());
        // Bare pub fields are flagged; documented ones pass.
        let src =
            "/// S.\npub struct S {\n    pub x: u32,\n    /// Documented.\n    pub y: u32,\n}\n";
        let report = lint_source("crates/gables/src/a.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 3);
    }

    #[test]
    fn raw_stderr_flags_print_macros_in_library_code() {
        let src = "fn f() { println!(\"hi\"); eprintln!(\"oops\"); }\n";
        assert_eq!(
            rules_of("crates/sched/src/a.rs", src),
            vec!["raw-stderr", "raw-stderr"]
        );
        assert_eq!(
            rules_of("crates/experiments/src/a.rs", src),
            vec!["raw-stderr", "raw-stderr"]
        );
        // Binaries, tests, and non-quiet crates may print.
        assert!(rules_of("crates/experiments/src/bin/repro.rs", src).is_empty());
        assert!(rules_of("crates/sched/tests/a.rs", src).is_empty());
        assert!(rules_of("crates/cli/src/a.rs", src).is_empty());
        // A `println` identifier without `!` (e.g. a local fn) passes, as
        // does a print-macro name inside a string or comment.
        assert!(rules_of("crates/sched/src/a.rs", "fn println_like() {}\n").is_empty());
        assert!(rules_of(
            "crates/sched/src/a.rs",
            "// println! in a comment\nfn f() -> &'static str { \"print!\" }\n"
        )
        .is_empty());
        // Waivers suppress like every other rule.
        let src = "fn f() {\n    // pccs-lint: allow(raw-stderr)\n    eprintln!(\"x\");\n}\n";
        let report = lint_source("crates/soc/src/a.rs", src);
        assert!(report.is_clean());
        assert_eq!(report.waived, 1);
    }

    #[test]
    fn metrics_publishes_in_loops_are_flagged() {
        // The planted anti-pattern: a per-cycle loop publishing to the
        // registry every iteration.
        let src = "fn run(h: u64) {\n    for cycle in 0..h {\n        metrics::add(\"dram.cycles\", 1);\n        let _ = cycle;\n    }\n}\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-loop-metrics"]
        );
        assert_eq!(
            rules_of("crates/soc/src/a.rs", src),
            vec!["hot-loop-metrics"]
        );
        // Outside the hot-loop crates the pattern is someone else's call.
        assert!(rules_of("crates/experiments/src/a.rs", src).is_empty());
        // `while` and bare `loop` bodies are covered, reads-by-handle too.
        let src = "fn f() { while busy() { metrics::observe_max(\"q\", 1); } }\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-loop-metrics"]
        );
        let src = "fn f() { loop { let c = metrics::counter(\"x\"); c.get(); break; } }\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-loop-metrics"]
        );
        // The fix — accumulate locally, publish after the loop — passes.
        let src = "fn run(h: u64) {\n    let mut n = 0;\n    for _ in 0..h { n += 1; }\n    metrics::add(\"dram.cycles\", n);\n}\n";
        assert!(rules_of("crates/dram/src/a.rs", src).is_empty());
        // `impl Trait for Type` braces are not loop bodies, but a real
        // loop nested inside the impl still trips.
        let src = "impl Engine for Fast {\n    fn publish(&self) { metrics::add(\"x\", 1); }\n}\n";
        assert!(rules_of("crates/dram/src/a.rs", src).is_empty());
        let src = "impl Engine for Fast {\n    fn run(&self, h: u64) {\n        for _ in 0..h { metrics::add(\"x\", 1); }\n    }\n}\n";
        assert_eq!(
            rules_of("crates/dram/src/a.rs", src),
            vec!["hot-loop-metrics"]
        );
        // Waivers suppress like every other rule.
        let src = "fn f() {\n    for _ in 0..2 {\n        // pccs-lint: allow(hot-loop-metrics)\n        metrics::add(\"x\", 1);\n    }\n}\n";
        let report = lint_source("crates/dram/src/a.rs", src);
        assert!(report.is_clean());
        assert_eq!(report.waived, 1);
    }

    #[test]
    fn waivers_suppress_and_count() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pccs-lint: allow(hot-path-panic)\n    x.unwrap()\n}\n";
        let report = lint_source("crates/dram/src/a.rs", src);
        assert!(report.is_clean());
        assert_eq!(report.waived, 1);
        // A waiver for a different rule does not suppress.
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pccs-lint: allow(missing-docs)\n    x.unwrap()\n}\n";
        assert!(!lint_source("crates/dram/src/a.rs", src).is_clean());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src =
            "fn f() -> &'static str { \"call .unwrap() and panic!\" }\n// HashMap in a comment\n";
        assert!(rules_of("crates/dram/src/a.rs", src).is_empty());
    }
}
