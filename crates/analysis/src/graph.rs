//! Per-crate module graph and cycle detection (phase-2 support).
//!
//! Nodes are a crate's *top-level* modules: `src/foo.rs`, `src/foo/mod.rs`,
//! and everything under `src/foo/` collapse into node `foo`; `src/lib.rs`
//! is the crate root and not a node; binary targets are excluded by the
//! caller. Edges come from `use crate::X::…` paths and `use super::…`
//! chains that climb back to the crate root, as recorded by the symbol
//! index ([`crate::symbols`]).
//!
//! A strongly-connected component with two or more modules is a
//! dependency cycle. Every edge inside the component is reported as a
//! separate finding site, so each can be fixed or waived independently —
//! and so diff-aware runs (which filter findings to changed files)
//! remain a strict subset of full runs.

use crate::symbols::{FileSymbols, UseKind};
use std::collections::{BTreeMap, BTreeSet};

/// One module-graph edge, with the `use` site that created it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Repo-relative path of the file containing the `use`.
    pub file: String,
    /// 1-based line of the `use`.
    pub line: u32,
    /// Top-level module the file belongs to.
    pub from: String,
    /// Top-level module the path reaches into.
    pub to: String,
}

/// One dependency cycle: a strongly-connected component of the module
/// graph and every edge inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The participating top-level modules, sorted.
    pub modules: Vec<String>,
    /// All edges between participating modules, sorted by (file, line, to).
    pub edges: Vec<Edge>,
}

/// The top-level module and module-path depth of a crate-relative source
/// path: `src/foo.rs` and `src/foo/mod.rs` → `("foo", 1)`,
/// `src/foo/bar.rs` → `("foo", 2)`. `None` for the crate root
/// (`src/lib.rs`), binary targets, and paths outside `src/`.
pub fn module_of(inner: &str) -> Option<(String, usize)> {
    let rest = inner.strip_prefix("src/")?;
    if rest == "lib.rs" || rest == "main.rs" {
        return None;
    }
    let rest = rest.strip_suffix(".rs")?;
    let segs: Vec<&str> = rest.split('/').collect();
    if segs.first() == Some(&"bin") {
        return None;
    }
    let mut depth = segs.len();
    if segs.last() == Some(&"mod") {
        depth -= 1;
    }
    if depth == 0 {
        return None;
    }
    Some((segs[0].to_owned(), depth))
}

/// Builds the module-graph edges for one crate.
///
/// `files` holds `(repo-relative path, crate-relative path, symbols)` for
/// the crate's library sources (callers filter out test paths and bins).
/// Only paths that resolve to a *known* top-level module produce edges;
/// self-edges (a module using its own submodules) never do.
pub fn crate_edges(files: &[(&str, &str, &FileSymbols)]) -> Vec<Edge> {
    let modules: BTreeSet<String> = files
        .iter()
        .filter_map(|(_, inner, _)| module_of(inner).map(|(m, _)| m))
        .collect();
    let mut edges = Vec::new();
    for (rel_path, inner, syms) in files {
        let Some((me, depth)) = module_of(inner) else {
            continue;
        };
        for u in &syms.uses {
            if u.in_test {
                continue;
            }
            let reaches_root = match u.kind {
                UseKind::Crate => true,
                // `super::…` climbing exactly back to the crate root makes
                // the first segment a top-level module; climbing less stays
                // inside `me` (self-edge), climbing more leaves the crate.
                UseKind::Super(n) => n == depth,
                UseKind::SelfMod | UseKind::External => false,
            };
            if !reaches_root {
                continue;
            }
            for first in &u.firsts {
                if modules.contains(first) && first != &me {
                    edges.push(Edge {
                        file: (*rel_path).to_owned(),
                        line: u.line,
                        from: me.clone(),
                        to: first.clone(),
                    });
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Finds dependency cycles: each strongly-connected component with at
/// least two modules, with all of its internal edges. Deterministic
/// (nodes and output are sorted).
pub fn cycles(edges: &[Edge]) -> Vec<Cycle> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    let mut t = Tarjan {
        adj: &adj,
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for v in nodes {
        if !t.index.contains_key(v) {
            t.visit(v);
        }
    }
    let mut out = Vec::new();
    for scc in t.sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        let mut modules: Vec<String> = members.iter().map(|m| (*m).to_owned()).collect();
        modules.sort();
        let mut cycle_edges: Vec<Edge> = edges
            .iter()
            .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
            .cloned()
            .collect();
        cycle_edges.sort();
        out.push(Cycle {
            modules,
            edges: cycle_edges,
        });
    }
    out.sort_by(|a, b| a.modules.cmp(&b.modules));
    out
}

/// Tarjan's strongly-connected-components algorithm over the module
/// graph. Module graphs are tiny (tens of nodes), so recursion depth is
/// never a concern.
struct Tarjan<'a> {
    adj: &'a BTreeMap<&'a str, BTreeSet<&'a str>>,
    index: BTreeMap<&'a str, usize>,
    low: BTreeMap<&'a str, usize>,
    on_stack: BTreeSet<&'a str>,
    stack: Vec<&'a str>,
    next: usize,
    sccs: Vec<Vec<&'a str>>,
}

impl<'a> Tarjan<'a> {
    fn visit(&mut self, v: &'a str) {
        self.index.insert(v, self.next);
        self.low.insert(v, self.next);
        self.next += 1;
        self.stack.push(v);
        self.on_stack.insert(v);
        if let Some(succs) = self.adj.get(v) {
            for &w in succs {
                if !self.index.contains_key(w) {
                    self.visit(w);
                    let lw = self.low[w];
                    let lv = self.low.get_mut(v).unwrap();
                    *lv = (*lv).min(lw);
                } else if self.on_stack.contains(w) {
                    let iw = self.index[w];
                    let lv = self.low.get_mut(v).unwrap();
                    *lv = (*lv).min(iw);
                }
            }
        }
        if self.low[v] == self.index[v] {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack.remove(w);
                scc.push(w);
                if w == v {
                    break;
                }
            }
            self.sccs.push(scc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::symbols::index_file;

    fn syms(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        index_file(&lexed, &mask)
    }

    #[test]
    fn module_of_maps_paths() {
        assert_eq!(module_of("src/foo.rs"), Some(("foo".into(), 1)));
        assert_eq!(module_of("src/foo/mod.rs"), Some(("foo".into(), 1)));
        assert_eq!(module_of("src/foo/bar.rs"), Some(("foo".into(), 2)));
        assert_eq!(module_of("src/lib.rs"), None);
        assert_eq!(module_of("src/main.rs"), None);
        assert_eq!(module_of("src/bin/tool.rs"), None);
        assert_eq!(module_of("tests/a.rs"), None);
    }

    #[test]
    fn two_module_cycle_is_found_with_both_edge_sites() {
        let a = syms("use crate::b::Thing;\npub fn fa() {}\n");
        let b = syms("use crate::a::fa;\npub struct Thing;\n");
        let edges = crate_edges(&[
            ("crates/x/src/a.rs", "src/a.rs", &a),
            ("crates/x/src/b.rs", "src/b.rs", &b),
        ]);
        assert_eq!(edges.len(), 2);
        let found = cycles(&edges);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].modules, vec!["a", "b"]);
        assert_eq!(found[0].edges.len(), 2);
        assert_eq!(found[0].edges[0].file, "crates/x/src/a.rs");
    }

    #[test]
    fn acyclic_and_self_uses_are_clean() {
        // a -> b -> c is acyclic; a file using its own submodule via
        // `super` (staying inside the module) adds no edge.
        let a = syms("use crate::b::X;\n");
        let b = syms("use crate::c::Y;\n");
        let c = syms("pub struct Y;\n");
        let sub = syms("use super::util;\n");
        let edges = crate_edges(&[
            ("crates/x/src/a.rs", "src/a.rs", &a),
            ("crates/x/src/b.rs", "src/b.rs", &b),
            ("crates/x/src/c.rs", "src/c.rs", &c),
            ("crates/x/src/a/deep.rs", "src/a/deep.rs", &sub),
        ]);
        assert_eq!(edges.len(), 2);
        assert!(cycles(&edges).is_empty());
    }

    #[test]
    fn super_chains_that_reach_the_root_make_edges() {
        // src/a/deep.rs (depth 2): `super::super::b` climbs to the root,
        // so it references top-level module b — completing a cycle with
        // b's use of a.
        let deep = syms("use super::super::b::Helper;\n");
        let b = syms("use crate::a::Entry;\n");
        let a = syms("pub struct Entry;\npub mod deep;\n");
        let edges = crate_edges(&[
            ("crates/x/src/a.rs", "src/a.rs", &a),
            ("crates/x/src/a/deep.rs", "src/a/deep.rs", &deep),
            ("crates/x/src/b.rs", "src/b.rs", &b),
        ]);
        let found = cycles(&edges);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].modules, vec!["a", "b"]);
    }

    #[test]
    fn external_and_unknown_targets_are_ignored() {
        let a = syms(
            "use std::collections::BTreeMap;\nuse crate::engine::E;\nuse crate::nonexistent::Z;\n",
        );
        let engine = syms("pub struct E;\n");
        let edges = crate_edges(&[
            ("crates/x/src/a.rs", "src/a.rs", &a),
            ("crates/x/src/engine.rs", "src/engine.rs", &engine),
        ]);
        assert_eq!(edges.len(), 1);
        assert_eq!(
            (edges[0].from.as_str(), edges[0].to.as_str()),
            ("a", "engine")
        );
    }

    #[test]
    fn three_module_ring_reports_every_edge() {
        let a = syms("use crate::b::X;\n");
        let b = syms("use crate::c::Y;\n");
        let c = syms("use crate::a::Z;\n");
        let edges = crate_edges(&[
            ("crates/x/src/a.rs", "src/a.rs", &a),
            ("crates/x/src/b.rs", "src/b.rs", &b),
            ("crates/x/src/c.rs", "src/c.rs", &c),
        ]);
        let found = cycles(&edges);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].modules, vec!["a", "b", "c"]);
        assert_eq!(found[0].edges.len(), 3);
    }
}
