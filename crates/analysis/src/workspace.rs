//! Phase 2 of the workspace analysis: cross-file lint rules.
//!
//! The per-file rules in [`crate::rules`] prove their findings from one
//! token stream. The rules here need the whole tree, so linting runs in
//! two phases: phase 1 ([`WorkspaceIndex::analyze`]) lexes every file
//! and distils it into a [`crate::symbols::FileSymbols`] record plus the
//! raw (pre-waiver) file-scoped findings; phase 2 ([`WorkspaceIndex::run`])
//! executes the cross-file rules over the index, applies waivers
//! centrally, and then checks the waivers themselves for staleness.
//!
//! # Workspace rules
//!
//! | rule | what it flags |
//! |------|---------------|
//! | `dead-pub-item` | a `pub` item in a library crate whose name is referenced nowhere else in the workspace (tests, bins, and examples included). Reference counting is name-based: a shared name can only suppress a finding, never invent one. |
//! | `metrics-registry-drift` | a metric name published in `telemetry`/`dram`/`sched`/`serve`/`soc` that is absent from `pccs_bench::REQUIRED_METRICS` — and the reverse, a `REQUIRED_METRICS` entry no workspace code publishes. Names assembled at runtime are declared with a `pccs-lint: publishes(name, …)` comment directive. Skipped when the tree has no `REQUIRED_METRICS` definition. |
//! | `stale-waiver` | an `allow(rule)` waiver directive that suppresses zero findings, or names an unknown rule. Waivable itself (one level — no second-order staleness check). |
//! | `dependency-cycle` | a strongly-connected component among a crate's top-level modules; every `use` edge inside the cycle is its own finding site. |
//! | `deprecated-shim-expiry` | any `#[deprecated]` attribute in library non-test code — the workspace policy keeps shims one release, so a marker that survives into the next PR is expired. |
//!
//! # Diff-aware mode
//!
//! [`lint_changed`] lexes only the changed files' crates (plus the bench
//! registry) and filters findings to changed files. Reference counting
//! against unlexed files falls back to a conservative word-boundary text
//! search, which can only over-count references — so the diff-aware
//! report is always a strict subset of the full run.

use crate::graph;
use crate::lexer::lex;
use crate::report::{Finding, LintReport, Scope};
use crate::rules::{self, classify, rule_scope, FileClass, RULE_NAMES};
use crate::symbols::{index_file, FileSymbols, Visibility};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose metric publishes must reconcile with `REQUIRED_METRICS`.
const METRICS_CRATES: &[&str] = &["telemetry", "dram", "sched", "serve", "soc"];

/// Filters applied to a lint run (the CLI's `--rule` / `--scope`).
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Keep only findings of this rule.
    pub rule: Option<String>,
    /// Keep only findings of this scope.
    pub scope: Option<Scope>,
}

/// One analyzed file: classification, symbols, raw findings, waivers.
#[derive(Debug, Clone)]
struct AnalyzedFile {
    rel_path: String,
    class: FileClass,
    symbols: FileSymbols,
    /// Raw (pre-waiver) file-scoped findings.
    raw_findings: Vec<Finding>,
    /// `line -> waived rules` from `allow(...)` directives.
    waivers: BTreeMap<u32, BTreeSet<String>>,
    /// `line -> declared metric names` from `publishes(...)` directives.
    declared_publishes: BTreeMap<u32, BTreeSet<String>>,
    /// Line spans covered by `#[cfg(test)]` regions.
    test_spans: Vec<(u32, u32)>,
    lines: u32,
}

impl AnalyzedFile {
    fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// The phase-1 output: every analyzed file, sorted by path.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    files: Vec<AnalyzedFile>,
}

/// If `rule` is waived for a finding on `line`, returns the directive
/// line that waives it (same line or the line above).
fn waived_at(waivers: &BTreeMap<u32, BTreeSet<String>>, rule: &str, line: u32) -> Option<u32> {
    [line, line.saturating_sub(1)]
        .into_iter()
        .find(|l| waivers.get(l).is_some_and(|set| set.contains(rule)))
}

/// Word-boundary substring search: `needle` appears in `haystack` with
/// non-identifier characters (or edges) on both sides. Used for
/// conservative reference counting against unlexed files in diff-aware
/// mode — every tokenized identifier occurrence is also a word-boundary
/// text occurrence, so this never under-counts.
fn appears_as_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let end = at + needle.len();
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

impl WorkspaceIndex {
    /// Phase 1: lexes and indexes `(repo-relative path, source)` pairs.
    /// Paths that [`classify`] ignores are skipped.
    pub fn analyze(sources: &[(String, String)]) -> Self {
        let mut files = Vec::new();
        for (rel, src) in sources {
            let Some(class) = classify(rel) else {
                continue;
            };
            let lexed = lex(src);
            let mask = rules::test_mask(&lexed.tokens);
            let symbols = index_file(&lexed, &mask);
            let raw_findings = rules::file_findings(&class, rel, &lexed, &mask);
            let mut test_spans: Vec<(u32, u32)> = Vec::new();
            let mut open: Option<(u32, u32)> = None;
            for (k, tok) in lexed.tokens.iter().enumerate() {
                if mask[k] {
                    open = Some(match open {
                        None => (tok.line, tok.line),
                        Some((s, _)) => (s, tok.line),
                    });
                } else if let Some(span) = open.take() {
                    test_spans.push(span);
                }
            }
            if let Some(span) = open {
                test_spans.push(span);
            }
            files.push(AnalyzedFile {
                rel_path: rel.clone(),
                class,
                symbols,
                raw_findings,
                waivers: lexed.waivers,
                declared_publishes: lexed.publishes,
                test_spans,
                lines: lexed.lines,
            });
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        WorkspaceIndex { files }
    }

    /// Phase 2 over the full index: file rules + workspace rules,
    /// central waiver application, stale-waiver detection, filtering.
    pub fn run(&self, opts: &LintOptions) -> LintReport {
        self.run_filtered(opts, None, &|_| false)
    }

    /// Test support: removes `name` from every indexed `REQUIRED_METRICS`
    /// definition, proving `metrics-registry-drift` falsifiable without
    /// mutating the tree on disk.
    pub fn remove_required_metric(&mut self, name: &str) {
        for f in &mut self.files {
            f.symbols.required_metrics.retain(|rm| rm.name != name);
        }
    }

    /// The shared phase-2 engine. `changed` restricts the report to the
    /// given files (diff-aware mode); `external_ref` answers "does this
    /// name occur in a file outside the index" for conservative
    /// reference counting in that mode.
    fn run_filtered(
        &self,
        opts: &LintOptions,
        changed: Option<&BTreeSet<String>>,
        external_ref: &dyn Fn(&str) -> bool,
    ) -> LintReport {
        let changed_mode = changed.is_some();
        let mut raw: Vec<Finding> = Vec::new();
        for f in &self.files {
            raw.extend(f.raw_findings.iter().cloned());
        }
        raw.extend(self.dead_pub_findings(changed, external_ref));
        raw.extend(self.drift_findings(changed, external_ref));
        raw.extend(self.cycle_findings());
        raw.extend(self.shim_expiry_findings());

        let path_idx: BTreeMap<&str, usize> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel_path.as_str(), i))
            .collect();

        // Central waiver application, tracking which directive each
        // suppression used so staleness is decidable afterwards.
        let mut used: BTreeSet<(usize, u32, &str)> = BTreeSet::new();
        let mut findings = Vec::new();
        let mut waived = 0usize;
        for f in raw {
            let idx = path_idx[f.file.as_str()];
            if let Some(dline) = waived_at(&self.files[idx].waivers, &f.rule, f.line) {
                waived += 1;
                let rule: &str = RULE_NAMES
                    .iter()
                    .copied()
                    .find(|r| *r == f.rule)
                    .unwrap_or("");
                used.insert((idx, dline, rule));
                continue;
            }
            findings.push(f);
        }

        // Stale-waiver pass. Directives in test paths/regions are exempt
        // (test code is outside every rule's jurisdiction). In diff-aware
        // mode only file-scoped rules are decidable — a workspace-rule
        // waiver may be "used" by a finding the partial index cannot see.
        for (idx, af) in self.files.iter().enumerate() {
            if af.class.is_test_path {
                continue;
            }
            for (&dline, dir_rules) in &af.waivers {
                if af.in_test_span(dline) || af.in_test_span(dline + 1) {
                    continue;
                }
                for rule in dir_rules {
                    if rule == "stale-waiver" {
                        // Applied below; staleness is checked one level only.
                        continue;
                    }
                    let known = RULE_NAMES.contains(&rule.as_str());
                    if known && changed_mode && rule_scope(rule) == Scope::Workspace {
                        continue;
                    }
                    if known && used.contains(&(idx, dline, rule.as_str())) {
                        continue;
                    }
                    let message = if known {
                        format!("waiver `allow({rule})` suppresses no findings; delete it")
                    } else {
                        format!("waiver names unknown rule `{rule}`")
                    };
                    let stale = Finding {
                        rule: "stale-waiver".to_owned(),
                        scope: Scope::Workspace,
                        file: af.rel_path.clone(),
                        line: dline,
                        message,
                    };
                    if waived_at(&af.waivers, "stale-waiver", dline).is_some() {
                        waived += 1;
                    } else {
                        findings.push(stale);
                    }
                }
            }
        }

        if let Some(rule) = &opts.rule {
            findings.retain(|f| &f.rule == rule);
        }
        if let Some(scope) = opts.scope {
            findings.retain(|f| f.scope == scope);
        }
        if let Some(changed) = changed {
            findings.retain(|f| changed.contains(&f.file));
        }

        let mut report = LintReport {
            findings,
            files_scanned: self.files.len(),
            lines_scanned: self.files.iter().map(|f| f.lines as usize).sum(),
            waived,
        };
        report.sort();
        report
    }

    /// `dead-pub-item`: `pub` items in library crates whose names occur
    /// nowhere beyond their own definition sites. In diff-aware mode
    /// (`changed` is `Some`) candidates outside the changed set are
    /// skipped up front: their findings would be filtered out anyway, and
    /// skipping them avoids the workspace-wide reference search — the
    /// bulk of a small diff's cost.
    fn dead_pub_findings(
        &self,
        changed: Option<&BTreeSet<String>>,
        external_ref: &dyn Fn(&str) -> bool,
    ) -> Vec<Finding> {
        let lib_crates: BTreeSet<&str> = self
            .files
            .iter()
            .filter(|f| f.rel_path == format!("crates/{}/src/lib.rs", f.class.crate_name))
            .map(|f| f.class.crate_name.as_str())
            .collect();
        let mut def_counts: BTreeMap<&str, usize> = BTreeMap::new();
        let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.files {
            for d in &f.symbols.defs {
                *def_counts.entry(d.name.as_str()).or_insert(0) += 1;
            }
            for (name, count) in &f.symbols.ident_counts {
                *totals.entry(name.as_str()).or_insert(0) += count;
            }
        }
        let mut out = Vec::new();
        for f in &self.files {
            if f.class.is_test_path
                || f.class.is_bin
                || !lib_crates.contains(f.class.crate_name.as_str())
                || changed.is_some_and(|c| !c.contains(&f.rel_path))
            {
                continue;
            }
            for d in &f.symbols.defs {
                if d.vis != Visibility::Pub || d.in_test {
                    continue;
                }
                let refs = totals[d.name.as_str()] - def_counts[d.name.as_str()];
                if refs > 0 || external_ref(&d.name) {
                    continue;
                }
                out.push(Finding {
                    rule: "dead-pub-item".to_owned(),
                    scope: Scope::Workspace,
                    file: f.rel_path.clone(),
                    line: d.line,
                    message: format!(
                        "pub {} `{}` is referenced nowhere else in the workspace \
                         (tests and bins included); delete it or narrow it to pub(crate)",
                        d.kind.as_str(),
                        d.name
                    ),
                });
            }
        }
        out
    }

    /// `metrics-registry-drift`, both directions. Skipped entirely when
    /// the tree defines no `REQUIRED_METRICS`. In diff-aware mode the
    /// registry-side direction is only evaluated when the registry file
    /// itself changed — its findings anchor there, so they would be
    /// filtered out otherwise and the per-entry reference searches are
    /// pure waste.
    fn drift_findings(
        &self,
        changed: Option<&BTreeSet<String>>,
        external_ref: &dyn Fn(&str) -> bool,
    ) -> Vec<Finding> {
        let mut required: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
        for f in &self.files {
            if f.class.is_test_path {
                continue;
            }
            for rm in &f.symbols.required_metrics {
                required
                    .entry(rm.name.as_str())
                    .or_insert((f.rel_path.as_str(), rm.line));
            }
        }
        if required.is_empty() {
            return Vec::new();
        }
        // Published names: literal call sites plus declared directives,
        // non-test code only. `published_anywhere` spans all crates (an
        // entry published by `experiments` is not drift); the per-site
        // list is restricted to the five metrics-owning crates.
        let mut published_anywhere: BTreeSet<&str> = BTreeSet::new();
        let mut sites: Vec<(&str, &str, u32)> = Vec::new();
        for f in &self.files {
            if f.class.is_test_path {
                continue;
            }
            let owned = METRICS_CRATES.contains(&f.class.crate_name.as_str());
            for p in &f.symbols.publishes {
                if p.in_test {
                    continue;
                }
                published_anywhere.insert(p.name.as_str());
                if owned {
                    sites.push((p.name.as_str(), f.rel_path.as_str(), p.line));
                }
            }
            for (&line, names) in &f.declared_publishes {
                if f.in_test_span(line) {
                    continue;
                }
                for name in names {
                    published_anywhere.insert(name.as_str());
                    if owned {
                        sites.push((name.as_str(), f.rel_path.as_str(), line));
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (name, file, line) in sites {
            if !required.contains_key(name) {
                out.push(Finding {
                    rule: "metrics-registry-drift".to_owned(),
                    scope: Scope::Workspace,
                    file: file.to_owned(),
                    line,
                    message: format!(
                        "metric `{name}` is published here but absent from \
                         pccs_bench::REQUIRED_METRICS; register it or rename"
                    ),
                });
            }
        }
        for (name, (file, line)) in required {
            if changed.is_some_and(|c| !c.contains(file)) {
                continue;
            }
            if published_anywhere.contains(name) || external_ref(name) {
                continue;
            }
            out.push(Finding {
                rule: "metrics-registry-drift".to_owned(),
                scope: Scope::Workspace,
                file: file.to_owned(),
                line,
                message: format!(
                    "REQUIRED_METRICS entry `{name}` is published nowhere in the \
                     workspace; drop the entry or restore the publish"
                ),
            });
        }
        out
    }

    /// `dependency-cycle`: per-crate module-graph SCCs, one finding per
    /// participating `use` edge.
    fn cycle_findings(&self) -> Vec<Finding> {
        let mut by_crate: BTreeMap<&str, Vec<(&str, &str, &FileSymbols)>> = BTreeMap::new();
        for f in &self.files {
            if f.class.is_test_path || f.class.is_bin {
                continue;
            }
            let prefix_len = "crates/".len() + f.class.crate_name.len() + 1;
            let Some(inner) = f.rel_path.get(prefix_len..) else {
                continue;
            };
            by_crate
                .entry(f.class.crate_name.as_str())
                .or_default()
                .push((f.rel_path.as_str(), inner, &f.symbols));
        }
        let mut out = Vec::new();
        for (crate_name, files) in by_crate {
            let edges = graph::crate_edges(&files);
            for cycle in graph::cycles(&edges) {
                let ring = cycle.modules.join(" <-> ");
                for e in &cycle.edges {
                    out.push(Finding {
                        rule: "dependency-cycle".to_owned(),
                        scope: Scope::Workspace,
                        file: e.file.clone(),
                        line: e.line,
                        message: format!(
                            "module cycle in crate `{crate_name}` ({ring}): this \
                             use edge `{}` -> `{}` closes the loop; invert it or \
                             extract the shared part into a new module",
                            e.from, e.to
                        ),
                    });
                }
            }
        }
        out
    }

    /// `deprecated-shim-expiry`: any surviving `#[deprecated]` marker in
    /// library non-test code.
    fn shim_expiry_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &self.files {
            if f.class.is_test_path || f.class.is_bin {
                continue;
            }
            for &line in &f.symbols.deprecated_attrs {
                out.push(Finding {
                    rule: "deprecated-shim-expiry".to_owned(),
                    scope: Scope::Workspace,
                    file: f.rel_path.clone(),
                    line,
                    message: "#[deprecated] shim has outlived its one-release grace \
                              period; delete the shim and migrate remaining callers"
                        .to_owned(),
                });
            }
        }
        out
    }
}

/// Collects `(repo-relative path, absolute path)` for every `.rs` file
/// under `<root>/crates`, sorted. A missing `crates/` directory is
/// [`io::ErrorKind::NotFound`].
fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no crates/ directory under {}", root.display()),
        ));
    }
    let mut paths = Vec::new();
    crate::collect_rust_files(&crates, &mut paths)?;
    paths
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            Ok((rel, p))
        })
        .collect()
}

/// Full-tree analysis: phase 1 over every file under `<root>/crates`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn analyze_root(root: &Path) -> io::Result<WorkspaceIndex> {
    let mut sources = Vec::new();
    for (rel, path) in workspace_files(root)? {
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(WorkspaceIndex::analyze(&sources))
}

/// Diff-aware lint: analyzes only the crates containing `changed` files
/// (plus the bench registry, which anchors `metrics-registry-drift`),
/// and reports only findings in changed files — a strict subset of the
/// full run, at a fraction of its cost.
///
/// `changed` holds repo-relative paths (as from `git diff --name-only`);
/// entries outside `crates/**/*.rs` are ignored. Files outside the
/// lexed set are consulted lazily, via word-boundary text search, only
/// when a candidate finding needs workspace-wide reference evidence.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_changed(root: &Path, changed: &[String], opts: &LintOptions) -> io::Result<LintReport> {
    let changed_set: BTreeSet<String> = changed
        .iter()
        .map(|p| p.replace('\\', "/"))
        .filter(|p| classify(p).is_some())
        .collect();
    if changed_set.is_empty() {
        return Ok(LintReport::default());
    }
    let changed_crates: BTreeSet<String> = changed_set
        .iter()
        .filter_map(|p| classify(p))
        .map(|c| c.crate_name)
        .collect();
    let mut lexed_sources = Vec::new();
    let mut unlexed_paths = Vec::new();
    for (rel, path) in workspace_files(root)? {
        let Some(class) = classify(&rel) else {
            continue;
        };
        let in_scope =
            changed_crates.contains(&class.crate_name) || rel == "crates/bench/src/lib.rs";
        if in_scope {
            lexed_sources.push((rel, fs::read_to_string(&path)?));
        } else {
            unlexed_paths.push(path);
        }
    }
    let index = WorkspaceIndex::analyze(&lexed_sources);
    // Unlexed contents load lazily: most diffs produce no candidate that
    // needs workspace-wide reference evidence, and skipping the reads is
    // most of lint-changed's speed advantage.
    let cache: RefCell<Option<Vec<String>>> = RefCell::new(None);
    let external_ref = |needle: &str| -> bool {
        let mut slot = cache.borrow_mut();
        let contents = slot.get_or_insert_with(|| {
            unlexed_paths
                .iter()
                .filter_map(|p| fs::read_to_string(p).ok())
                .collect()
        });
        contents.iter().any(|src| appears_as_word(src, needle))
    };
    Ok(index.run_filtered(opts, Some(&changed_set), &external_ref))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(files: &[(&str, &str)]) -> WorkspaceIndex {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        WorkspaceIndex::analyze(&sources)
    }

    fn rule_findings(report: &LintReport, rule: &str) -> Vec<(String, u32)> {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| (f.file.clone(), f.line))
            .collect()
    }

    #[test]
    fn dead_pub_item_fires_only_on_unreferenced_pub_items() {
        let index = index_of(&[
            (
                "crates/leaf/src/lib.rs",
                "/// D.\npub fn used() {}\n/// D.\npub fn orphan() {}\npub(crate) fn internal() {}\n",
            ),
            ("crates/app/src/lib.rs", "/// D.\npub fn app() { used(); }\napp_entry!(app);\n"),
        ]);
        let report = index.run(&LintOptions::default());
        let dead = rule_findings(&report, "dead-pub-item");
        // `orphan` is dead; `used` is referenced from app; `internal` is
        // pub(crate); `app` is referenced by the macro invocation.
        assert_eq!(dead, vec![("crates/leaf/src/lib.rs".to_owned(), 4)]);
    }

    #[test]
    fn dead_pub_references_from_tests_count() {
        let index = index_of(&[
            (
                "crates/leaf/src/lib.rs",
                "/// D.\npub fn tested_only() {}\n",
            ),
            (
                "crates/leaf/tests/api.rs",
                "#[test]\nfn t() { pccs_leaf::tested_only(); }\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "dead-pub-item").is_empty());
    }

    #[test]
    fn dead_pub_skips_bin_only_crates_and_test_regions() {
        let index = index_of(&[
            // No src/lib.rs: a binary-only crate has no library API.
            (
                "crates/tool/src/main.rs",
                "pub fn helper() {}\nfn main() {}\n",
            ),
            (
                "crates/leaf/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    pub fn fixture() {}\n}\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "dead-pub-item").is_empty());
    }

    const BENCH_SRC: &str = "/// R.\npub const REQUIRED_METRICS: &[&str] = &[\n    \"dram.cycles\",\n    \"ghost.metric\",\n];\n";

    #[test]
    fn drift_flags_both_directions() {
        let index = index_of(&[
            ("crates/bench/src/lib.rs", BENCH_SRC),
            (
                "crates/dram/src/stats.rs",
                "fn publish() {\n    metrics::add(\"dram.cycles\", 1);\n    metrics::add(\"dram.rogue\", 1);\n}\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        let drift = rule_findings(&report, "metrics-registry-drift");
        // `dram.rogue` published-but-unregistered (at the publish site);
        // `ghost.metric` registered-but-unpublished (at the entry line).
        assert_eq!(
            drift,
            vec![
                ("crates/bench/src/lib.rs".to_owned(), 4),
                ("crates/dram/src/stats.rs".to_owned(), 3),
            ]
        );
    }

    #[test]
    fn drift_accepts_declared_publishes_and_skips_foreign_crates() {
        let index = index_of(&[
            (
                "crates/bench/src/lib.rs",
                "/// R.\npub const REQUIRED_METRICS: &[&str] = &[\"serve.dyn\", \"sweep.cells\"];\n",
            ),
            (
                "crates/serve/src/slo.rs",
                "fn publish(prefix: &str) {\n    // pccs-lint: publishes(serve.dyn)\n    emit(prefix);\n}\n",
            ),
            // experiments is outside the five metrics crates: its publish
            // satisfies direction A without being drift-checked itself.
            (
                "crates/experiments/src/runner.rs",
                "fn f() { metrics::add(\"sweep.cells\", 1); metrics::add(\"sweep.extra\", 1); }\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "metrics-registry-drift").is_empty());
    }

    #[test]
    fn drift_is_skipped_without_a_registry() {
        let index = index_of(&[(
            "crates/dram/src/stats.rs",
            "fn publish() { metrics::add(\"dram.unlisted\", 1); }\n",
        )]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "metrics-registry-drift").is_empty());
    }

    #[test]
    fn drift_is_falsifiable_by_removing_a_registry_entry() {
        let mut index = index_of(&[
            (
                "crates/bench/src/lib.rs",
                "/// R.\npub const REQUIRED_METRICS: &[&str] = &[\"dram.bytes\", \"dram.cycles\"];\n",
            ),
            (
                "crates/dram/src/stats.rs",
                "fn publish() { metrics::add(\"dram.cycles\", 1); metrics::add(\"dram.bytes\", 1); }\n",
            ),
        ]);
        assert!(rule_findings(
            &index.run(&LintOptions::default()),
            "metrics-registry-drift"
        )
        .is_empty());
        index.remove_required_metric("dram.cycles");
        let drift = rule_findings(
            &index.run(&LintOptions::default()),
            "metrics-registry-drift",
        );
        assert_eq!(drift, vec![("crates/dram/src/stats.rs".to_owned(), 1)]);
    }

    #[test]
    fn dependency_cycle_reports_every_edge_site() {
        let index = index_of(&[
            ("crates/x/src/lib.rs", "pub mod a;\npub mod b;\n"),
            (
                "crates/x/src/a.rs",
                "use crate::b::B;\n/// D.\npub struct A;\n",
            ),
            (
                "crates/x/src/b.rs",
                "use crate::a::A;\n/// D.\npub struct B;\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        let cycle = rule_findings(&report, "dependency-cycle");
        assert_eq!(
            cycle,
            vec![
                ("crates/x/src/a.rs".to_owned(), 1),
                ("crates/x/src/b.rs".to_owned(), 1),
            ]
        );
    }

    #[test]
    fn shim_expiry_flags_surviving_deprecated_markers() {
        let index = index_of(&[(
            "crates/dram/src/controller.rs",
            "/// D.\n#[deprecated(note = \"kept one release\")]\npub fn old_api() {}\nfn live() { old_api(); }\n",
        )]);
        let report = index.run(&LintOptions::default());
        assert_eq!(
            rule_findings(&report, "deprecated-shim-expiry"),
            vec![("crates/dram/src/controller.rs".to_owned(), 2)]
        );
    }

    #[test]
    fn workspace_findings_are_waivable_at_their_anchor() {
        let index = index_of(&[(
            "crates/dram/src/controller.rs",
            "/// D.\n// pccs-lint: allow(deprecated-shim-expiry)\n#[deprecated]\npub fn old_api() {}\nfn live() { old_api(); }\n",
        )]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "deprecated-shim-expiry").is_empty());
        assert_eq!(report.waived, 1);
        // The waiver is used, so it is not stale.
        assert!(rule_findings(&report, "stale-waiver").is_empty());
    }

    #[test]
    fn stale_and_unknown_waivers_are_findings() {
        let index = index_of(&[(
            "crates/dram/src/quiet.rs",
            "// pccs-lint: allow(hot-path-panic)\nfn fine() {}\n// pccs-lint: allow(no-such-rule)\nfn also_fine() {}\n",
        )]);
        let report = index.run(&LintOptions::default());
        let stale = rule_findings(&report, "stale-waiver");
        assert_eq!(
            stale,
            vec![
                ("crates/dram/src/quiet.rs".to_owned(), 1),
                ("crates/dram/src/quiet.rs".to_owned(), 3),
            ]
        );
        let messages: Vec<&str> = report
            .findings
            .iter()
            .filter(|f| f.rule == "stale-waiver")
            .map(|f| f.message.as_str())
            .collect();
        assert!(messages[0].contains("suppresses no findings"));
        assert!(messages[1].contains("unknown rule"));
    }

    #[test]
    fn stale_waiver_is_itself_waivable_one_level() {
        let index = index_of(&[(
            "crates/dram/src/quiet.rs",
            "// pccs-lint: allow(hot-path-panic, stale-waiver)\nfn fine() {}\n",
        )]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "stale-waiver").is_empty());
        assert_eq!(report.waived, 1);
    }

    #[test]
    fn waivers_in_test_code_are_never_stale() {
        let index = index_of(&[
            (
                "crates/dram/tests/probe.rs",
                "// pccs-lint: allow(hot-path-panic)\nfn t() {}\n",
            ),
            (
                "crates/dram/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    // pccs-lint: allow(nondeterminism)\n    fn t() {}\n}\n",
            ),
        ]);
        let report = index.run(&LintOptions::default());
        assert!(rule_findings(&report, "stale-waiver").is_empty());
    }

    #[test]
    fn rule_and_scope_filters_apply() {
        let index = index_of(&[(
            "crates/dram/src/bad.rs",
            "/// D.\n#[deprecated]\npub fn shim() {}\nfn f(x: Option<u32>) -> u32 { shim(); x.unwrap() }\n",
        )]);
        let all = index.run(&LintOptions::default());
        assert_eq!(all.per_rule()["hot-path-panic"], 1);
        assert_eq!(all.per_rule()["deprecated-shim-expiry"], 1);
        let only_expiry = index.run(&LintOptions {
            rule: Some("deprecated-shim-expiry".to_owned()),
            scope: None,
        });
        assert_eq!(only_expiry.findings.len(), 1);
        let file_only = index.run(&LintOptions {
            rule: None,
            scope: Some(Scope::File),
        });
        assert!(file_only.findings.iter().all(|f| f.scope == Scope::File));
        assert!(file_only.per_rule().contains_key("hot-path-panic"));
    }

    #[test]
    fn word_boundary_search_is_conservative_but_bounded() {
        assert!(appears_as_word("let x = orphan();", "orphan"));
        assert!(appears_as_word("\"orphan\"", "orphan"));
        assert!(!appears_as_word("let x = orphanage();", "orphan"));
        assert!(!appears_as_word("let x = my_orphan;", "orphan"));
        assert!(appears_as_word("dram.cycles", "dram.cycles"));
        assert!(!appears_as_word("", "orphan"));
    }
}
