//! Lint findings and machine-readable reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable rule name (`hot-path-panic`, `nondeterminism`, …).
    pub rule: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a file set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by `pccs-lint: allow(...)` waivers.
    pub waived: usize,
}

impl LintReport {
    /// Whether no findings survived waivers.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per rule, for summaries and tests.
    pub fn per_rule(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule.clone()).or_insert(0) += 1;
        }
        map
    }

    /// Merges findings and counters from `other` into `self`.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.files_scanned += other.files_scanned;
        self.waived += other.waived;
        self.sort();
    }

    /// Restores the canonical (file, line, rule) ordering.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let per_rule = self.per_rule();
        if !per_rule.is_empty() {
            out.push('\n');
            for (rule, n) in &per_rule {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
        out.push_str(&format!(
            "pccs-lint: {} finding(s) in {} file(s) scanned ({} waived)\n",
            self.findings.len(),
            self.files_scanned,
            self.waived
        ));
        out
    }

    /// Renders findings as JSON lines via the telemetry exporter, one
    /// `{"type": "lint.finding", ...}` record per line.
    pub fn to_jsonl(&self) -> String {
        pccs_telemetry::export::jsonl_records("lint.finding", &self.findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let mut r = LintReport {
            findings: vec![
                finding("b.rs", 2, "nondeterminism"),
                finding("a.rs", 9, "hot-path-panic"),
                finding("a.rs", 1, "hot-path-panic"),
            ],
            files_scanned: 2,
            waived: 1,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.per_rule()["hot-path-panic"], 2);
        assert!(!r.is_clean());
        let text = r.render_text();
        assert!(text.contains("a.rs:1: [hot-path-panic]"));
        assert!(text.contains("3 finding(s) in 2 file(s) scanned (1 waived)"));
    }

    #[test]
    fn jsonl_roundtrips_through_serde() {
        let r = LintReport {
            findings: vec![finding("x.rs", 3, "missing-docs")],
            files_scanned: 1,
            waived: 0,
        };
        let jsonl = r.to_jsonl();
        assert!(jsonl.contains("\"lint.finding\""));
        assert!(jsonl.contains("\"x.rs\""));
        let line = jsonl.lines().next().unwrap();
        let v: serde::Value = serde_json::from_str(line).unwrap();
        let serde::Value::Object(map) = v else {
            panic!("record is not an object: {line}");
        };
        assert!(matches!(map["line"], serde::Value::Number(_)));
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = LintReport {
            findings: vec![finding("z.rs", 1, "r")],
            files_scanned: 3,
            waived: 2,
        };
        a.merge(LintReport {
            findings: vec![finding("a.rs", 1, "r")],
            files_scanned: 1,
            waived: 1,
        });
        assert_eq!(a.files_scanned, 4);
        assert_eq!(a.waived, 3);
        assert_eq!(a.findings[0].file, "a.rs");
    }
}
