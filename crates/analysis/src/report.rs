//! Lint findings and machine-readable reports.
//!
//! Every [`Finding`] carries a [`Scope`]: `file` findings are provable
//! from one file's tokens alone (the phase-1 rules), `workspace` findings
//! need the cross-file symbol index (the phase-2 rules — dead public
//! items, metrics-registry drift, stale waivers, module cycles, expired
//! shims). The scope is part of the JSONL record so downstream tooling
//! can split a CI gate into a cheap per-file pass and a full workspace
//! pass without re-deriving rule tables.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether a finding is provable from one file or needs the workspace
/// symbol index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Scope {
    /// Provable from a single file's token stream (phase-1 rules).
    #[default]
    File,
    /// Needs the cross-file symbol index (phase-2 rules).
    Workspace,
}

impl Scope {
    /// The stable lowercase name used in reports (`file` / `workspace`).
    pub fn as_str(self) -> &'static str {
        match self {
            Scope::File => "file",
            Scope::Workspace => "workspace",
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Manual impls: the report format wants lowercase scope names, and the
// vendored serde derive has no rename attribute.
impl Serialize for Scope {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for Scope {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.as_str() {
            Some("file") => Ok(Scope::File),
            Some("workspace") => Ok(Scope::Workspace),
            _ => Err(serde::DeError::expected("scope 'file'|'workspace'", v)),
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable rule name (`hot-path-panic`, `dead-pub-item`, …).
    pub rule: String,
    /// Whether the rule is file- or workspace-scoped ([`Scope`]).
    pub scope: Scope,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.rule, self.scope, self.message
        )
    }
}

/// The outcome of linting a file set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total source lines across the scanned files (the `pccs bench`
    /// `lint_workspace` workload reports lines/sec from this).
    pub lines_scanned: usize,
    /// Findings suppressed by `pccs-lint: allow(...)` waivers.
    pub waived: usize,
}

impl LintReport {
    /// Whether no findings survived waivers.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per rule, for summaries and tests.
    pub fn per_rule(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule.clone()).or_insert(0) += 1;
        }
        map
    }

    /// Merges findings and counters from `other` into `self`.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.files_scanned += other.files_scanned;
        self.lines_scanned += other.lines_scanned;
        self.waived += other.waived;
        self.sort();
    }

    /// Restores the canonical (file, line, rule) ordering.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let per_rule = self.per_rule();
        if !per_rule.is_empty() {
            out.push('\n');
            for (rule, n) in &per_rule {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
        out.push_str(&format!(
            "pccs-lint: {} finding(s) in {} file(s) scanned ({} waived)\n",
            self.findings.len(),
            self.files_scanned,
            self.waived
        ));
        out
    }

    /// Renders findings as JSON lines via the telemetry exporter, one
    /// `{"type": "lint.finding", ...}` record per line. Keys inside a
    /// record are sorted (the exporter's `Value` model is a BTreeMap), so
    /// the byte-level field order is deterministic:
    /// `file, line, message, rule, scope, type`.
    pub fn to_jsonl(&self) -> String {
        pccs_telemetry::export::jsonl_records("lint.finding", &self.findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str) -> Finding {
        Finding {
            rule: rule.into(),
            scope: Scope::File,
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let mut r = LintReport {
            findings: vec![
                finding("b.rs", 2, "nondeterminism"),
                finding("a.rs", 9, "hot-path-panic"),
                finding("a.rs", 1, "hot-path-panic"),
            ],
            files_scanned: 2,
            lines_scanned: 40,
            waived: 1,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.per_rule()["hot-path-panic"], 2);
        assert!(!r.is_clean());
        let text = r.render_text();
        assert!(text.contains("a.rs:1: [hot-path-panic/file]"));
        assert!(text.contains("3 finding(s) in 2 file(s) scanned (1 waived)"));
    }

    #[test]
    fn scope_serializes_lowercase_and_round_trips() {
        assert_eq!(Scope::File.to_value(), serde::Value::String("file".into()));
        assert_eq!(
            Scope::Workspace.to_value(),
            serde::Value::String("workspace".into())
        );
        for scope in [Scope::File, Scope::Workspace] {
            assert_eq!(Scope::from_value(&scope.to_value()).unwrap(), scope);
        }
        assert!(Scope::from_value(&serde::Value::String("global".into())).is_err());
    }

    #[test]
    fn jsonl_roundtrips_through_serde() {
        let mut f = finding("x.rs", 3, "missing-docs");
        f.scope = Scope::Workspace;
        let r = LintReport {
            findings: vec![f],
            files_scanned: 1,
            lines_scanned: 10,
            waived: 0,
        };
        let jsonl = r.to_jsonl();
        assert!(jsonl.contains("\"lint.finding\""));
        assert!(jsonl.contains("\"x.rs\""));
        assert!(jsonl.contains("\"scope\":\"workspace\""));
        let line = jsonl.lines().next().unwrap();
        let v: serde::Value = serde_json::from_str(line).unwrap();
        let serde::Value::Object(map) = v else {
            panic!("record is not an object: {line}");
        };
        assert!(matches!(map["line"], serde::Value::Number(_)));
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = LintReport {
            findings: vec![finding("z.rs", 1, "r")],
            files_scanned: 3,
            lines_scanned: 30,
            waived: 2,
        };
        a.merge(LintReport {
            findings: vec![finding("a.rs", 1, "r")],
            files_scanned: 1,
            lines_scanned: 12,
            waived: 1,
        });
        assert_eq!(a.files_scanned, 4);
        assert_eq!(a.lines_scanned, 42);
        assert_eq!(a.waived, 3);
        assert_eq!(a.findings[0].file, "a.rs");
    }
}
