//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The engine needs exactly three things from a source file: the identifier
//! and punctuation stream with line numbers (comments and literal *contents*
//! stripped, so `"panic!"` inside a string never trips a rule), the set of
//! lines carrying rustdoc comments (for the `missing-docs` rule), and any
//! `// pccs-lint: allow(<rule>)` waiver directives. A full parser — or a
//! `syn` dependency — would be overkill and is unavailable offline; this
//! scanner handles the token-level subtleties that actually matter: nested
//! block comments, raw strings (`r#"…"#`), byte strings, raw identifiers,
//! and the lifetime-vs-char-literal ambiguity at `'`.

use std::collections::{BTreeMap, BTreeSet};

/// What a [`Token`] is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `pub`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …). Multi-char
    /// operators arrive as consecutive tokens; rules match the sequence.
    Punct,
    /// A string/char/number literal. The text is a placeholder, never the
    /// literal's contents.
    Literal,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token text — the identifier itself, the punctuation character,
    /// or `"<lit>"` for literals.
    pub text: String,
    /// Coarse classification.
    pub kind: TokenKind,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Comment- and literal-stripped token stream.
    pub tokens: Vec<Token>,
    /// `line -> rules waived on that line` from `pccs-lint: allow(...)`
    /// comment directives.
    pub waivers: BTreeMap<u32, BTreeSet<String>>,
    /// Lines that carry a rustdoc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc_lines: BTreeSet<u32>,
}

impl LexedFile {
    /// Whether `rule` is waived for a finding on `line` — a directive on the
    /// finding's own line or the line directly above counts.
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.waivers.get(l).is_some_and(|set| set.contains(rule)))
    }
}

/// Scans waiver directives of the form `pccs-lint: allow(rule-a, rule-b)`
/// out of a comment body.
fn scan_waiver(comment: &str, line: u32, waivers: &mut BTreeMap<u32, BTreeSet<String>>) {
    let Some(at) = comment.find("pccs-lint:") else {
        return;
    };
    let rest = &comment[at + "pccs-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let body = &rest[open + "allow(".len()..];
    let Some(close) = body.find(')') else {
        return;
    };
    let entry = waivers.entry(line).or_default();
    for rule in body[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.insert(rule.to_owned());
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens, waivers, and doc-comment lines.
///
/// The lexer never fails: malformed input (an unterminated string, say)
/// degrades to consuming the rest of the file as a literal, which is the
/// right behaviour for a linter — rustc will reject the file anyway.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| chars.get(i).copied();

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.starts_with("///") || text.starts_with("//!") {
                    out.doc_lines.insert(line);
                }
                scan_waiver(&text, line, &mut out.waivers);
            }
            '/' if at(i + 1) == Some('*') => {
                let start_line = line;
                let is_doc = matches!(at(i + 2), Some('!'))
                    || (at(i + 2) == Some('*') && at(i + 3) != Some('/'));
                let mut depth = 1;
                let start = i;
                i += 2;
                while i < chars.len() && depth > 0 {
                    match (chars[i], at(i + 1)) {
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                if is_doc {
                    for l in start_line..=line {
                        out.doc_lines.insert(l);
                    }
                }
                let text: String = chars[start..i.min(chars.len())].iter().collect();
                scan_waiver(&text, start_line, &mut out.waivers);
            }
            '"' => {
                let tok_line = line;
                i = consume_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    line: tok_line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            'r' | 'b' if starts_string_prefix(&chars, i) => {
                let tok_line = line;
                i = consume_prefixed_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    line: tok_line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                let next = at(i + 1);
                let is_char = match next {
                    Some('\\') => true,
                    Some(n) if is_ident_start(n) => at(i + 2) == Some('\''),
                    Some(_) => true,
                    None => false,
                };
                if is_char {
                    let tok_line = line;
                    i += 1;
                    if at(i) == Some('\\') {
                        i += 2; // escape + escaped char
                    } else {
                        i += 1;
                    }
                    // Consume to the closing quote (handles `'\u{1F600}'`).
                    while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        line: tok_line,
                        text: "<lit>".into(),
                        kind: TokenKind::Literal,
                    });
                } else {
                    // Lifetime: skip the quote and its identifier.
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: chars[start..i].iter().collect(),
                    kind: TokenKind::Ident,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < chars.len()
                    && (is_ident_continue(chars[i])
                        || (chars[i] == '.' && at(i + 1).is_some_and(|n| n.is_ascii_digit())))
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    text: c.to_string(),
                    kind: TokenKind::Punct,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char rather than an identifier.
fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    let at = |k: usize| chars.get(k).copied();
    match chars[i] {
        'r' => match at(i + 1) {
            Some('"') => true,
            Some('#') => {
                // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
                let mut k = i + 1;
                while at(k) == Some('#') {
                    k += 1;
                }
                at(k) == Some('"')
            }
            _ => false,
        },
        'b' => matches!(
            (at(i + 1), at(i + 2)),
            (Some('"'), _) | (Some('\''), _) | (Some('r'), Some('"')) | (Some('r'), Some('#'))
        ),
        _ => false,
    }
}

/// Consumes a plain `"…"` string starting at `i`; returns the index past it.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes an `r`/`b`-prefixed string (raw, byte, raw-byte) or byte char.
fn consume_prefixed_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let at = |k: usize| chars.get(k).copied();
    // Skip the prefix letters.
    while matches!(at(i), Some('r') | Some('b')) {
        i += 1;
    }
    if at(i) == Some('\'') {
        // Byte char literal `b'x'`.
        i += 1;
        if at(i) == Some('\\') {
            i += 1;
        }
        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
            i += 1;
        }
        return i + 1;
    }
    let mut hashes = 0usize;
    while at(i) == Some('#') {
        hashes += 1;
        i += 1;
    }
    if at(i) != Some('"') {
        return i; // not actually a string; nothing consumed beyond prefix
    }
    if hashes == 0 {
        return consume_string(chars, i, line);
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0;
            while k < hashes && at(i + 1 + k) == Some('#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // unwrap() in a comment
            let x = "panic!(\"no\")"; /* expect( */
            let y = r#"unwrap()"#;
            call(x);
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()));
        assert!(!ids.contains(&"panic".to_owned()));
        assert!(!ids.contains(&"expect".to_owned()));
        assert!(ids.contains(&"call".to_owned()));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn doc_lines_are_recorded() {
        let src = "/// docs\npub fn f() {}\n//! inner\n/** block */\nstruct S;\n";
        let lexed = lex(src);
        assert!(lexed.doc_lines.contains(&1));
        assert!(lexed.doc_lines.contains(&3));
        assert!(lexed.doc_lines.contains(&4));
        assert!(!lexed.doc_lines.contains(&2));
    }

    #[test]
    fn waivers_parse_rule_lists() {
        let src = "x(); // pccs-lint: allow(hot-path-panic, nondeterminism)\n";
        let lexed = lex(src);
        assert!(lexed.is_waived("hot-path-panic", 1));
        assert!(lexed.is_waived("nondeterminism", 1));
        assert!(lexed.is_waived("hot-path-panic", 2)); // line above counts
        assert!(!lexed.is_waived("missing-docs", 1));
        assert!(!lexed.is_waived("hot-path-panic", 3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet nl = '\\n';\n";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // The lifetime identifier `a` is consumed with the quote, and char
        // literal contents never surface as identifiers.
        assert!(!ids.contains(&"a"));
        assert!(!ids.contains(&"x") || ids.iter().filter(|&&t| t == "x").count() == 2);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2, "two char literals");
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let ids = idents("let r#match = 1; let s = r#\"str\"#;");
        assert!(ids.contains(&"match".to_owned()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let ids = idents("/* outer /* inner */ still comment */ real();");
        assert_eq!(ids, vec!["real".to_owned()]);
    }
}
