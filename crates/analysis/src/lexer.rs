//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The engine needs four things from a source file: the identifier and
//! punctuation stream with line numbers (comments and literal *contents*
//! stripped from the token stream, so `"panic!"` inside a string never
//! trips a rule), the set of lines carrying rustdoc comments (for the
//! `missing-docs` rule), the `// pccs-lint:` directives (`allow(<rule>)`
//! waivers and `publishes(<metric>)` declarations), and — for the
//! workspace symbol index — the *contents* of string literals, kept in a
//! side table ([`LexedFile::strings`]) so brace matching over tokens stays
//! exact while `counter("dram.cycles")`-style call sites remain
//! inspectable. A full parser — or a `syn` dependency — would be overkill
//! and is unavailable offline; this scanner handles the token-level
//! subtleties that actually matter: shebang lines, nested block comments,
//! raw strings (`r#"…"#`, `r##"…"##`), byte and raw-byte strings, raw
//! identifiers, and the lifetime-vs-char-literal ambiguity at `'`.
//!
//! Directives inside doc comments (`///`, `//!`, `/** */`, `/*! */`) are
//! deliberately ignored: rustdoc text is prose about the code, not the
//! code — quoting the waiver syntax in documentation must never waive.

use std::collections::{BTreeMap, BTreeSet};

/// What a [`Token`] is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `pub`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …). Multi-char
    /// operators arrive as consecutive tokens; rules match the sequence.
    Punct,
    /// A string/char/number literal. The text is a placeholder, never the
    /// literal's contents.
    Literal,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token text — the identifier itself, the punctuation character,
    /// or `"<lit>"` for literals.
    pub text: String,
    /// Coarse classification.
    pub kind: TokenKind,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Comment- and literal-stripped token stream.
    pub tokens: Vec<Token>,
    /// `line -> rules waived on that line` from `pccs-lint: allow(...)`
    /// comment directives.
    pub waivers: BTreeMap<u32, BTreeSet<String>>,
    /// `line -> metric names declared published on that line` from
    /// `pccs-lint: publishes(...)` comment directives — the escape hatch
    /// for metric names assembled at runtime (e.g. `format!("{prefix}.x")`)
    /// that the symbol index cannot see as literals.
    pub publishes: BTreeMap<u32, BTreeSet<String>>,
    /// Lines that carry a rustdoc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc_lines: BTreeSet<u32>,
    /// String-literal contents, keyed by index into [`LexedFile::tokens`].
    /// Covers plain, raw, byte, and raw-byte strings (char and numeric
    /// literals are not recorded). The token itself stays a `"<lit>"`
    /// placeholder so rules and brace matching never see literal text.
    pub strings: BTreeMap<usize, String>,
    /// Total source lines (1-based line number of the last character).
    pub lines: u32,
}

impl LexedFile {
    /// Whether `rule` is waived for a finding on `line` — a directive on the
    /// finding's own line or the line directly above counts.
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.waivers.get(l).is_some_and(|set| set.contains(rule)))
    }
}

/// Scans `pccs-lint:` directives (`allow(rule-a, rule-b)` waivers and
/// `publishes(metric.a, metric.b)` declarations) out of a comment body.
fn scan_directives(comment: &str, line: u32, out: &mut LexedFile) {
    let Some(at) = comment.find("pccs-lint:") else {
        return;
    };
    let rest = &comment[at + "pccs-lint:".len()..];
    for (keyword, map) in [
        ("allow(", &mut out.waivers),
        ("publishes(", &mut out.publishes),
    ] {
        let Some(open) = rest.find(keyword) else {
            continue;
        };
        let body = &rest[open + keyword.len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let entry = map.entry(line).or_default();
        for name in body[..close].split(',') {
            let name = name.trim();
            if !name.is_empty() {
                entry.insert(name.to_owned());
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens, waivers, and doc-comment lines.
///
/// The lexer never fails: malformed input (an unterminated string, say)
/// degrades to consuming the rest of the file as a literal, which is the
/// right behaviour for a linter — rustc will reject the file anyway.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| chars.get(i).copied();

    // A shebang (`#!/usr/bin/env …`) is legal on the first line of a Rust
    // source file and is not tokens; an inner attribute (`#![…]`) is.
    if chars.first() == Some(&'#') && at(1) == Some('!') && at(2) != Some('[') {
        while i < chars.len() && chars[i] != '\n' {
            i += 1;
        }
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.starts_with("///") || text.starts_with("//!") {
                    out.doc_lines.insert(line);
                } else {
                    // Directives in rustdoc text are prose, not directives.
                    scan_directives(&text, line, &mut out);
                }
            }
            '/' if at(i + 1) == Some('*') => {
                let start_line = line;
                let is_doc = matches!(at(i + 2), Some('!'))
                    || (at(i + 2) == Some('*') && at(i + 3) != Some('/'));
                let mut depth = 1;
                let start = i;
                i += 2;
                while i < chars.len() && depth > 0 {
                    match (chars[i], at(i + 1)) {
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                if is_doc {
                    for l in start_line..=line {
                        out.doc_lines.insert(l);
                    }
                } else {
                    let text: String = chars[start..i.min(chars.len())].iter().collect();
                    scan_directives(&text, start_line, &mut out);
                }
            }
            '"' => {
                let tok_line = line;
                let start = i;
                i = consume_string(&chars, i, &mut line);
                let content_end = if at(i.saturating_sub(1)) == Some('"') {
                    i - 1
                } else {
                    i
                };
                out.strings.insert(
                    out.tokens.len(),
                    chars[start + 1..content_end.max(start + 1)]
                        .iter()
                        .collect(),
                );
                out.tokens.push(Token {
                    line: tok_line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            'r' | 'b' if starts_string_prefix(&chars, i) => {
                let tok_line = line;
                let (end, content) = consume_prefixed_string(&chars, i, &mut line);
                i = end;
                if let Some((from, to)) = content {
                    out.strings
                        .insert(out.tokens.len(), chars[from..to].iter().collect());
                }
                out.tokens.push(Token {
                    line: tok_line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                let next = at(i + 1);
                let is_char = match next {
                    Some('\\') => true,
                    Some(n) if is_ident_start(n) => at(i + 2) == Some('\''),
                    Some(_) => true,
                    None => false,
                };
                if is_char {
                    let tok_line = line;
                    i += 1;
                    if at(i) == Some('\\') {
                        i += 2; // escape + escaped char
                    } else {
                        i += 1;
                    }
                    // Consume to the closing quote (handles `'\u{1F600}'`).
                    while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        line: tok_line,
                        text: "<lit>".into(),
                        kind: TokenKind::Literal,
                    });
                } else {
                    // Lifetime: skip the quote and its identifier.
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: chars[start..i].iter().collect(),
                    kind: TokenKind::Ident,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < chars.len()
                    && (is_ident_continue(chars[i])
                        || (chars[i] == '.' && at(i + 1).is_some_and(|n| n.is_ascii_digit())))
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    text: "<lit>".into(),
                    kind: TokenKind::Literal,
                });
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    text: c.to_string(),
                    kind: TokenKind::Punct,
                });
                i += 1;
            }
        }
    }
    out.lines = line;
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char rather than an identifier.
fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    let at = |k: usize| chars.get(k).copied();
    match chars[i] {
        'r' => match at(i + 1) {
            Some('"') => true,
            Some('#') => {
                // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
                let mut k = i + 1;
                while at(k) == Some('#') {
                    k += 1;
                }
                at(k) == Some('"')
            }
            _ => false,
        },
        'b' => matches!(
            (at(i + 1), at(i + 2)),
            (Some('"'), _) | (Some('\''), _) | (Some('r'), Some('"')) | (Some('r'), Some('#'))
        ),
        _ => false,
    }
}

/// Consumes a plain `"…"` string starting at `i`; returns the index past it.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes an `r`/`b`-prefixed string (raw, byte, raw-byte) or byte char.
/// Returns the index past the literal plus the content span (start, end)
/// for string forms (`None` for byte chars and non-strings).
fn consume_prefixed_string(
    chars: &[char],
    mut i: usize,
    line: &mut u32,
) -> (usize, Option<(usize, usize)>) {
    let at = |k: usize| chars.get(k).copied();
    // Skip the prefix letters.
    while matches!(at(i), Some('r') | Some('b')) {
        i += 1;
    }
    if at(i) == Some('\'') {
        // Byte char literal `b'x'`.
        i += 1;
        if at(i) == Some('\\') {
            i += 1;
        }
        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
            i += 1;
        }
        return (i + 1, None);
    }
    let mut hashes = 0usize;
    while at(i) == Some('#') {
        hashes += 1;
        i += 1;
    }
    if at(i) != Some('"') {
        // Not actually a string; nothing consumed beyond prefix.
        return (i, None);
    }
    if hashes == 0 {
        let end = consume_string(chars, i, line);
        let content_end = if at(end.saturating_sub(1)) == Some('"') {
            end - 1
        } else {
            end
        };
        return (end, Some((i + 1, content_end.max(i + 1))));
    }
    i += 1;
    let content_start = i;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0;
            while k < hashes && at(i + 1 + k) == Some('#') {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, Some((content_start, i)));
            }
        }
        i += 1;
    }
    (i, Some((content_start, i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // unwrap() in a comment
            let x = "panic!(\"no\")"; /* expect( */
            let y = r#"unwrap()"#;
            call(x);
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()));
        assert!(!ids.contains(&"panic".to_owned()));
        assert!(!ids.contains(&"expect".to_owned()));
        assert!(ids.contains(&"call".to_owned()));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn doc_lines_are_recorded() {
        let src = "/// docs\npub fn f() {}\n//! inner\n/** block */\nstruct S;\n";
        let lexed = lex(src);
        assert!(lexed.doc_lines.contains(&1));
        assert!(lexed.doc_lines.contains(&3));
        assert!(lexed.doc_lines.contains(&4));
        assert!(!lexed.doc_lines.contains(&2));
    }

    #[test]
    fn waivers_parse_rule_lists() {
        let src = "x(); // pccs-lint: allow(hot-path-panic, nondeterminism)\n";
        let lexed = lex(src);
        assert!(lexed.is_waived("hot-path-panic", 1));
        assert!(lexed.is_waived("nondeterminism", 1));
        assert!(lexed.is_waived("hot-path-panic", 2)); // line above counts
        assert!(!lexed.is_waived("missing-docs", 1));
        assert!(!lexed.is_waived("hot-path-panic", 3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet nl = '\\n';\n";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // The lifetime identifier `a` is consumed with the quote, and char
        // literal contents never surface as identifiers.
        assert!(!ids.contains(&"a"));
        assert!(!ids.contains(&"x") || ids.iter().filter(|&&t| t == "x").count() == 2);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2, "two char literals");
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let ids = idents("let r#match = 1; let s = r#\"str\"#;");
        assert!(ids.contains(&"match".to_owned()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let ids = idents("/* outer /* inner */ still comment */ real();");
        assert_eq!(ids, vec!["real".to_owned()]);
    }

    #[test]
    fn shebang_line_is_skipped() {
        let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].text, "fn");
        assert_eq!(lexed.tokens[0].line, 2);
        // An inner attribute is NOT a shebang: `#![deny(warnings)]`.
        let lexed = lex("#![deny(warnings)]\nfn f() {}\n");
        assert_eq!(lexed.tokens[0].text, "#");
        assert!(lexed.tokens.iter().any(|t| t.text == "deny"));
    }

    #[test]
    fn nested_raw_strings_capture_contents() {
        let src = "let x = r##\"inner \"#\" quote\"##; after();\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.strings.values().collect::<Vec<_>>(),
            vec![&"inner \"#\" quote".to_owned()]
        );
        // The token stream never sees the contents.
        assert!(lexed.tokens.iter().all(|t| t.text != "inner"));
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_single_literals() {
        let src = "let a = b\"bytes\"; let b = br#\"raw bytes\"#; let c = b'x'; end();\n";
        let lexed = lex(src);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3, "two byte strings + one byte char");
        let contents: Vec<&String> = lexed.strings.values().collect();
        assert_eq!(contents, vec![&"bytes".to_owned(), &"raw bytes".to_owned()]);
        assert!(lexed.tokens.iter().any(|t| t.text == "end"));
    }

    #[test]
    fn plain_string_contents_are_recorded_with_token_index() {
        let src = "counter(\"dram.cycles\");\n";
        let lexed = lex(src);
        // Tokens: counter ( <lit> ) ;  — the literal is index 2.
        assert_eq!(lexed.strings.get(&2), Some(&"dram.cycles".to_owned()));
    }

    #[test]
    fn waiver_inside_a_doc_comment_does_not_waive() {
        let src = "/// Suppress with `// pccs-lint: allow(hot-path-panic)`.\n\
                   pub fn documented() {}\n\
                   //! pccs-lint: allow(nondeterminism)\n\
                   /** pccs-lint: allow(missing-docs) */\n\
                   fn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.waivers.is_empty(), "{:?}", lexed.waivers);
        // The same text in a plain comment still waives.
        let lexed = lex("// pccs-lint: allow(hot-path-panic)\nfn f() {}\n");
        assert!(lexed.is_waived("hot-path-panic", 1));
    }

    #[test]
    fn publishes_directives_are_collected() {
        let src = "fn f() {\n    // pccs-lint: publishes(serve.offered, serve.completed)\n    publish();\n}\n";
        let lexed = lex(src);
        let declared = lexed.publishes.get(&2).expect("directive on line 2");
        assert!(declared.contains("serve.offered"));
        assert!(declared.contains("serve.completed"));
        // Doc comments never declare.
        let lexed = lex("/// pccs-lint: publishes(x.y)\npub fn g() {}\n");
        assert!(lexed.publishes.is_empty());
    }

    #[test]
    fn line_total_is_tracked() {
        assert_eq!(lex("a\nb\nc\n").lines, 4);
        assert_eq!(lex("one line").lines, 1);
    }
}
