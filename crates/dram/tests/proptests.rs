//! Property-based tests of the DRAM substrate invariants.

use pccs_dram::bank::Bank;
use pccs_dram::config::DramConfig;
use pccs_dram::mapping::AddressMapping;
use pccs_dram::request::ReqKind;
use pccs_dram::timing::{DramTiming, RowOutcome};
use pccs_dram::traffic::AddressWalker;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_config() -> impl Strategy<Value = DramConfig> {
    (
        1usize..=8,
        2usize..=16,
        prop::sample::select(vec![4u32, 8u32]),
    )
        .prop_map(|(channels, banks, width)| {
            let mut c = DramConfig::cmp_study();
            c.channels = channels;
            c.banks_per_channel = banks;
            c.channel_width_bytes = width;
            c
        })
}

proptest! {
    #[test]
    fn decode_is_always_in_range(config in arb_config(), addr in 0u64..(1 << 40)) {
        for mapping in [
            AddressMapping::ChannelInterleaveXorBank,
            AddressMapping::ChannelInterleavePlain,
        ] {
            let d = mapping.decode(addr, &config);
            prop_assert!(d.channel < config.channels);
            prop_assert!(d.bank < config.banks_per_channel);
            prop_assert!(d.column < config.columns_per_row());
        }
    }

    #[test]
    fn decode_is_deterministic(config in arb_config(), addr in 0u64..(1 << 40)) {
        let m = AddressMapping::ChannelInterleaveXorBank;
        prop_assert_eq!(m.decode(addr, &config), m.decode(addr, &config));
    }

    #[test]
    fn same_line_addresses_decode_identically(
        config in arb_config(),
        line in 0u64..(1 << 30),
        offset in 0u64..64,
    ) {
        let m = AddressMapping::ChannelInterleaveXorBank;
        let base = line * u64::from(config.line_bytes);
        prop_assert_eq!(m.decode(base, &config), m.decode(base + offset, &config));
    }

    #[test]
    fn walker_stays_in_region(
        base_mb in 0u64..64,
        region_mb in 1u64..64,
        locality in 0.0f64..1.0,
        seed in 0u64..500,
        steps in 1usize..300,
    ) {
        let base = base_mb << 20;
        let region = region_mb << 20;
        let mut w = AddressWalker::new(base, region, 64, locality);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let a = w.next_addr(&mut rng);
            prop_assert!(a >= base && a < base + region, "addr {a:#x} outside region");
            prop_assert_eq!(a % 64, 0, "addresses are line-aligned");
        }
    }

    #[test]
    fn walker_high_locality_is_mostly_sequential(seed in 0u64..200) {
        let mut w = AddressWalker::new(0, 64 << 20, 64, 0.99);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prev = w.next_addr(&mut rng);
        let mut sequential = 0;
        let n = 500;
        for _ in 0..n {
            let a = w.next_addr(&mut rng);
            if a == prev + 64 {
                sequential += 1;
            }
            prev = a;
        }
        prop_assert!(sequential as f64 / n as f64 > 0.9);
    }

    #[test]
    fn bank_latency_ordering_holds_for_any_state(
        rows in prop::collection::vec(0u64..50, 1..20),
        probe_row in 0u64..50,
    ) {
        // Replay an arbitrary access history, then check that a probe's
        // outcome is consistent with the open row.
        let t = DramTiming::ddr4_3200();
        let mut bank = Bank::new();
        let mut cycle = 0u64;
        for &r in &rows {
            while !bank.is_ready(cycle) {
                cycle += 1;
            }
            bank.issue(r, ReqKind::Read, cycle, &t, 4);
            cycle += 1;
        }
        let outcome = bank.probe(probe_row);
        match bank.open_row() {
            Some(open) if open == probe_row => prop_assert_eq!(outcome, RowOutcome::Hit),
            Some(_) => prop_assert_eq!(outcome, RowOutcome::Conflict),
            None => prop_assert_eq!(outcome, RowOutcome::Miss),
        }
    }

    #[test]
    fn bank_data_ready_never_precedes_issue(
        rows in prop::collection::vec(0u64..10, 1..30),
    ) {
        let t = DramTiming::lpddr4x_4266();
        let mut bank = Bank::new();
        let mut cycle = 0u64;
        for &r in &rows {
            while !bank.is_ready(cycle) {
                cycle += 1;
            }
            let issue = bank.issue(r, ReqKind::Read, cycle, &t, 8);
            prop_assert!(issue.data_ready >= cycle + t.t_cl);
            cycle += 1;
        }
    }
}
