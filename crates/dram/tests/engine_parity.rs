//! Differential verification of the two memory engines.
//!
//! The event-driven fast path ([`pccs_dram::engine::EventEngine`]) must be
//! **bit-identical** to the cycle-exact reference: same `MemoryStats`
//! (served/row-hit/miss/conflict counts, per-source latency histograms,
//! stall breakdown), same completion streams, same per-source progress —
//! for every scheduling policy and both timing bins (DDR4-3200 `cmp_study`
//! and LPDDR4X-4266 `xavier`). These properties drive randomized traffic
//! through both engines and assert full equality.

use pccs_dram::config::DramConfig;
use pccs_dram::engine::EngineKind;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::{ReqKind, SourceId};
use pccs_dram::sim::{DramSystem, SimOutcome};
use pccs_dram::trace::{ReplayMode, TraceRecord, TraceSource};
use pccs_dram::traffic::StreamTraffic;
use proptest::prelude::*;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Fcfs,
    PolicyKind::FrFcfs,
    PolicyKind::Atlas,
    PolicyKind::Tcm,
    PolicyKind::Sms,
];

/// Both timing bins the paper studies: DDR4 (cmp study) and LPDDR4X
/// (Xavier).
fn bins() -> [DramConfig; 2] {
    [DramConfig::cmp_study(), DramConfig::xavier()]
}

#[derive(Debug, Clone)]
struct StreamSpec {
    demand_gbps: f64,
    locality: f64,
    window: usize,
    write_fraction: f64,
    seed: u64,
}

fn arb_spec() -> impl Strategy<Value = StreamSpec> {
    (
        0.4f64..60.0,
        0.5f64..0.99,
        2usize..48,
        0.0f64..0.5,
        0u64..1_000_000,
    )
        .prop_map(
            |(demand_gbps, locality, window, write_fraction, seed)| StreamSpec {
                demand_gbps,
                locality,
                window,
                write_fraction,
                seed,
            },
        )
}

fn run_streams(
    bin: &DramConfig,
    policy: PolicyKind,
    engine: EngineKind,
    specs: &[StreamSpec],
    warmup: u64,
    horizon: u64,
) -> SimOutcome {
    let mut sys = DramSystem::with_engine(bin.clone(), policy, engine);
    for (i, s) in specs.iter().enumerate() {
        sys.add_generator(
            StreamTraffic::builder(SourceId(i))
                .demand_gbps(s.demand_gbps)
                .row_locality(s.locality)
                .window(s.window)
                .write_fraction(s.write_fraction)
                .seed(s.seed)
                .build(),
        );
    }
    sys.run_with_warmup(warmup, horizon)
}

/// Asserts the full externally observable outcome matches.
fn assert_outcomes_match(
    cycle: &SimOutcome,
    event: &SimOutcome,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &cycle.stats,
        &event.stats,
        "MemoryStats diverged ({})",
        context
    );
    prop_assert_eq!(
        &cycle.completed,
        &event.completed,
        "completions diverged ({})",
        context
    );
    prop_assert_eq!(
        &cycle.progress,
        &event.progress,
        "progress diverged ({})",
        context
    );
    prop_assert_eq!(
        &cycle.measured.progress,
        &event.measured.progress,
        "measured-window progress diverged ({})",
        context
    );
    prop_assert_eq!(
        &cycle.measured.bytes,
        &event.measured.bytes,
        "measured-window bytes diverged ({})",
        context
    );
    Ok(())
}

proptest! {
    /// Random synthetic traffic, every policy, both bins: the engines must
    /// produce identical statistics, histograms, and progress.
    #[test]
    fn engines_agree_on_random_stream_traffic(
        specs in prop::collection::vec(arb_spec(), 1..4),
        horizon in 4_000u64..12_000,
    ) {
        let warmup = horizon / 4;
        for bin in bins() {
            for policy in POLICIES {
                let cycle = run_streams(&bin, policy, EngineKind::Cycle, &specs, warmup, horizon);
                let event = run_streams(&bin, policy, EngineKind::Event, &specs, warmup, horizon);
                assert_outcomes_match(
                    &cycle,
                    &event,
                    &format!("{policy:?} on {} channels", bin.channels),
                )?;
            }
        }
    }

    /// Trace replay (both pacing modes) through both engines.
    #[test]
    fn engines_agree_on_trace_replay(
        stride_lines in 1u64..200,
        gap in 1u64..40,
        count in 8u64..120,
        write_every in 2u64..9,
        window in 2usize..32,
    ) {
        let records: Vec<TraceRecord> = (0..count)
            .map(|i| TraceRecord {
                cycle: i * gap,
                addr: i * stride_lines * 64,
                kind: if i % write_every == 0 { ReqKind::Write } else { ReqKind::Read },
            })
            .collect();
        let horizon = count * gap + 4_000;
        for bin in bins() {
            for mode in [ReplayMode::Timed, ReplayMode::AsFast { window }] {
                let run = |engine: EngineKind| {
                    let mut sys = DramSystem::with_engine(bin.clone(), PolicyKind::FrFcfs, engine);
                    sys.add_generator(TraceSource::new(SourceId(0), records.clone(), mode));
                    sys.run(horizon)
                };
                let cycle = run(EngineKind::Cycle);
                let event = run(EngineKind::Event);
                assert_outcomes_match(&cycle, &event, &format!("{mode:?}"))?;
                prop_assert_eq!(cycle.completed[&SourceId(0)], count, "trace must drain");
            }
        }
    }

    /// The conformance sanitizer must see the identical command stream from
    /// both engines (same commands at the same cycles) and stay clean.
    #[test]
    fn engines_emit_identical_command_streams(
        spec in arb_spec(),
        horizon in 4_000u64..10_000,
    ) {
        for bin in bins() {
            let run = |engine: EngineKind| {
                let mut sys = DramSystem::with_engine(bin.clone(), PolicyKind::Atlas, engine);
                sys.enable_conformance();
                sys.add_generator(
                    StreamTraffic::builder(SourceId(0))
                        .demand_gbps(spec.demand_gbps)
                        .row_locality(spec.locality)
                        .window(spec.window)
                        .write_fraction(spec.write_fraction)
                        .seed(spec.seed)
                        .build(),
                );
                sys.run(horizon)
            };
            let cycle = run(EngineKind::Cycle);
            let event = run(EngineKind::Event);
            let c = cycle.conformance.as_ref().expect("sanitizer enabled");
            let e = event.conformance.as_ref().expect("sanitizer enabled");
            prop_assert_eq!(c.commands, e.commands, "command counts diverged");
            prop_assert!(c.is_clean(), "cycle engine violations: {}", c.summary());
            prop_assert!(e.is_clean(), "event engine violations: {}", e.summary());
            prop_assert_eq!(&cycle.stats, &event.stats);
        }
    }
}
